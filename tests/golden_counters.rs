//! Golden-counters regression test: exact per-kernel metered event totals.
//!
//! The GPU simulator prices runs purely from the counters each kernel
//! accumulates (coalesced bytes, gather accesses, atomics, CAS retries,
//! launches). Performance work on the simulator — buffer arenas, upload
//! caches, zero-allocation kernel bodies — must never change *what is
//! metered*, only how fast the host executes it. This test pins the exact
//! totals for every simulated-GPU code on two fixed-seed inputs; any
//! drift in the cost model or in kernel metering shows up as a diff here.
//!
//! Determinism basis: the vendored `rayon` stub executes launches
//! sequentially in task order (see `vendor/rayon`), so atomic outcomes and
//! CAS retry counts are reproducible across runs and hosts.
//!
//! To regenerate after an *intentional* metering change:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test --test golden_counters -- --nocapture
//! ```
//!
//! and paste the printed block over `EXPECTED`.

use ecl_baselines::{cugraph_gpu, gunrock_gpu, jucele_gpu, uminho_gpu};
use ecl_cc::connected_components_gpu;
use ecl_gpu_sim::{GpuProfile, KernelRecord, TaskCtx};
use ecl_graph::generators::{grid2d, rmat};
use ecl_graph::CsrGraph;
use ecl_mst::{deopt_ladder, ecl_mst_gpu_with, OptConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregates a kernel log into per-kernel-name totals and formats one
/// line per kernel plus one line for the simulated clocks.
fn summarize(
    out: &mut String,
    code: &str,
    graph: &str,
    records: &[KernelRecord],
    kernel_seconds: f64,
    memcpy_seconds: f64,
) {
    let mut per: BTreeMap<&str, (u64, TaskCtx)> = BTreeMap::new();
    for r in records {
        let e = per.entry(r.name.as_str()).or_default();
        e.0 += 1;
        e.1.merge(&r.stats.totals);
    }
    for (name, (launches, t)) in &per {
        writeln!(
            out,
            "{code}/{graph} {name} launches={launches} coal={} gather={} atomics={} cas={}",
            t.coalesced_bytes, t.gather_accesses, t.atomics, t.cas_retries
        )
        .unwrap();
    }
    writeln!(
        out,
        "{code}/{graph} clocks kernel={kernel_seconds:.17e} memcpy={memcpy_seconds:.17e}"
    )
    .unwrap();
}

fn topology_cfg() -> OptConfig {
    let ladder = deopt_ladder();
    ladder
        .iter()
        .find(|(name, _)| *name == "Topology-Driven")
        .expect("ladder rung")
        .1
}

fn collect(g: &CsrGraph, graph: &str, connected: bool, out: &mut String) {
    let p = GpuProfile::TITAN_V;

    let run = ecl_mst_gpu_with(g, &OptConfig::full(), p);
    summarize(
        out,
        "ecl_full",
        graph,
        &run.records,
        run.kernel_seconds,
        run.memcpy_seconds,
    );

    let run = ecl_mst_gpu_with(g, &topology_cfg(), p);
    summarize(
        out,
        "ecl_topo",
        graph,
        &run.records,
        run.kernel_seconds,
        run.memcpy_seconds,
    );

    if connected {
        let run = jucele_gpu(g, p).expect("connected");
        summarize(
            out,
            "jucele",
            graph,
            &run.records,
            run.kernel_seconds,
            run.memcpy_seconds,
        );
        let run = gunrock_gpu(g, p).expect("connected");
        summarize(
            out,
            "gunrock",
            graph,
            &run.records,
            run.kernel_seconds,
            run.memcpy_seconds,
        );
    }

    let run = uminho_gpu(g, p);
    summarize(
        out,
        "uminho",
        graph,
        &run.records,
        run.kernel_seconds,
        run.memcpy_seconds,
    );

    let run = cugraph_gpu(g, p);
    summarize(
        out,
        "cugraph",
        graph,
        &run.records,
        run.kernel_seconds,
        run.memcpy_seconds,
    );

    let run = connected_components_gpu(g, p);
    summarize(out, "cc", graph, &run.records, run.kernel_seconds, 0.0);
}

fn actual() -> String {
    let mut out = String::new();
    // Fixed-seed inputs: a connected 2-D grid and a disconnected RMAT.
    collect(&grid2d(32, 7), "grid32", true, &mut out);
    collect(&rmat(10, 8, 42), "rmat10", false, &mut out);
    out
}

#[test]
fn metered_event_totals_are_bit_identical() {
    let got = actual();
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!("----- golden counters -----");
        print!("{got}");
        println!("----- end golden counters -----");
    }
    let want = EXPECTED.trim_start_matches('\n');
    if got != want {
        // Line-by-line diff for a readable failure.
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(g, w, "first divergence at line {}", i + 1);
        }
        assert_eq!(
            got.lines().count(),
            want.lines().count(),
            "line count mismatch"
        );
    }
}

/// Satellite of the golden test: the same full sweep under the sanitizer
/// must (a) report zero racecheck/initcheck/memcheck/synccheck violations
/// for every registered code — the paper's "the races are benign" claim,
/// machine-checked — and (b) meter bit-identically to the unsanitized
/// sweep, pinning that instrumentation never perturbs the cost model.
#[test]
fn sanitizer_pass_is_clean_and_does_not_perturb_metering() {
    let base = actual();
    let (sanitized, report) = ecl_gpu_sim::with_sanitizer(actual);
    assert_eq!(base, sanitized, "sanitizer perturbed metered counters");
    assert!(
        report.is_clean(),
        "sanitizer violations in registered codes — {report}\n{}",
        report
            .violations()
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.checked_launches > 0);
    assert!(report.checked_accesses > 0);
    // The registered codes really do exercise the downgraded benign-race
    // classes (idempotent flag stores, DSU path compression); if these hit
    // zero, the racecheck hook has come unwired.
    assert!(
        report.benign_idempotent_races > 0,
        "expected idempotent benign races"
    );
    assert!(
        report.benign_racy_updates > 0,
        "expected racy-update benign races"
    );
}

/// ecl-trace satellite of the golden test: the same full sweep under a
/// trace session must meter bit-identically — tracing observes the
/// counters, it never perturbs them (the zero-cost-when-disabled contract's
/// enabled-side half).
#[test]
fn tracing_does_not_perturb_metering() {
    let base = actual();
    let (traced, session) = ecl_trace::with_trace(actual);
    assert_eq!(base, traced, "trace session perturbed metered counters");
    assert!(!session.is_empty(), "sweep produced no trace events");
}

const EXPECTED: &str = r"
ecl_full/grid32 init launches=1 coal=83872 gather=126 atomics=900 cas=0
ecl_full/grid32 kernel1 launches=7 coal=262676 gather=24614 atomics=3358 cas=0
ecl_full/grid32 kernel2 launches=6 coal=71056 gather=11396 atomics=1023 cas=0
ecl_full/grid32 kernel3 launches=6 coal=71056 gather=8882 atomics=0 cas=0
ecl_full/grid32 setup launches=1 coal=20224 gather=0 atomics=0 cas=0
ecl_full/grid32 clocks kernel=3.21904259740259723e-5 memcpy=1.25217142857142867e-5
ecl_topo/grid32 build_arc_src launches=1 coal=24064 gather=0 atomics=0 cas=0
ecl_topo/grid32 kernel1 launches=7 coal=332968 gather=147385 atomics=18460 cas=0
ecl_topo/grid32 kernel2 launches=6 coal=248976 gather=147798 atomics=1023 cas=0
ecl_topo/grid32 kernel3 launches=6 coal=49152 gather=0 atomics=0 cas=0
ecl_topo/grid32 setup launches=1 coal=20224 gather=0 atomics=0 cas=0
ecl_topo/grid32 clocks kernel=5.13972509090909041e-5 memcpy=1.25217142857142867e-5
jucele/grid32 contract launches=6 coal=208648 gather=17764 atomics=0 cas=0
jucele/grid32 find_light launches=6 coal=142112 gather=0 atomics=17764 cas=0
jucele/grid32 mark launches=6 coal=150296 gather=22676 atomics=0 cas=0
jucele/grid32 mirror_break launches=6 coal=11464 gather=1433 atomics=0 cas=0
jucele/grid32 relabel launches=15 coal=20832 gather=4290 atomics=0 cas=0
jucele/grid32 renumber launches=6 coal=17196 gather=0 atomics=0 cas=0
jucele/grid32 clocks kernel=7.07833745454545366e-5 memcpy=9.66857142857142893e-6
gunrock/grid32 find_light launches=7 coal=71784 gather=108701 atomics=3610 cas=0
gunrock/grid32 merge launches=6 coal=60616 gather=9373 atomics=1023 cas=0
gunrock/grid32 clocks kernel=3.15494799999999919e-5 memcpy=1.47891428571428567e-5
uminho/grid32 count_degrees launches=6 coal=71056 gather=17764 atomics=4914 cas=0
uminho/grid32 find_min launches=6 coal=28660 gather=5307 atomics=0 cas=0
uminho/grid32 pick launches=6 coal=22928 gather=3686 atomics=0 cas=0
uminho/grid32 pointer_jump launches=15 coal=20832 gather=4290 atomics=0 cas=0
uminho/grid32 renumber launches=6 coal=17196 gather=0 atomics=0 cas=0
uminho/grid32 scan_offsets launches=6 coal=3280 gather=0 atomics=0 cas=0
uminho/grid32 scatter_arcs launches=6 coal=110368 gather=32506 atomics=4914 cas=0
uminho/grid32 sort_pass_0 launches=6 coal=58968 gather=4914 atomics=0 cas=0
uminho/grid32 sort_pass_1 launches=6 coal=58968 gather=4914 atomics=0 cas=0
uminho/grid32 sort_pass_2 launches=6 coal=58968 gather=4914 atomics=0 cas=0
uminho/grid32 sort_pass_3 launches=6 coal=58968 gather=4914 atomics=0 cas=0
uminho/grid32 clocks kernel=9.02016436363636744e-5 memcpy=1.25217142857142867e-5
cugraph/grid32 color_flood launches=157 coal=2531760 gather=316456 atomics=4996 cas=0
cugraph/grid32 color_min launches=7 coal=182160 gather=27776 atomics=8882 cas=0
cugraph/grid32 graft launches=6 coal=148524 gather=32980 atomics=0 cas=0
cugraph/grid32 reset_min launches=6 coal=49152 gather=0 atomics=0 cas=0
cugraph/grid32 clocks kernel=4.47219492467533931e-4 memcpy=9.66857142857142893e-6
cc/grid32 cc_flatten launches=1 coal=4096 gather=2047 atomics=0 cas=0
cc/grid32 cc_init launches=1 coal=12288 gather=1024 atomics=0 cas=0
cc/grid32 cc_process launches=1 coal=22592 gather=10100 atomics=0 cas=0
cc/grid32 clocks kernel=2.40472363636363612e-6 memcpy=0.00000000000000000e0
ecl_full/rmat10 init launches=2 coal=374308 gather=53976 atomics=903 cas=0
ecl_full/rmat10 kernel1 launches=7 coal=598408 gather=63411 atomics=3326 cas=0
ecl_full/rmat10 kernel2 launches=5 coal=165344 gather=23971 atomics=1020 cas=0
ecl_full/rmat10 kernel3 launches=5 coal=165344 gather=20668 atomics=0 cas=0
ecl_full/rmat10 setup launches=1 coal=42456 gather=0 atomics=0 cas=0
ecl_full/rmat10 clocks kernel=4.42179864935064851e-5 memcpy=3.47537142857142867e-5
ecl_topo/rmat10 build_arc_src launches=1 coal=68528 gather=0 atomics=0 cas=0
ecl_topo/rmat10 kernel1 launches=6 coal=1407168 gather=472700 atomics=113856 cas=0
ecl_topo/rmat10 kernel2 launches=5 coal=970856 gather=521032 atomics=1020 cas=0
ecl_topo/rmat10 kernel3 launches=5 coal=40960 gather=0 atomics=0 cas=0
ecl_topo/rmat10 setup launches=1 coal=42456 gather=0 atomics=0 cas=0
ecl_topo/rmat10 clocks kernel=1.24706672207792205e-4 memcpy=3.47537142857142867e-5
uminho/rmat10 count_degrees launches=4 coal=364624 gather=91156 atomics=30494 cas=0
uminho/rmat10 find_min launches=4 coal=25316 gather=18726 atomics=0 cas=0
uminho/rmat10 pick launches=4 coal=20320 gather=3004 atomics=0 cas=0
uminho/rmat10 pointer_jump launches=11 coal=24476 gather=4833 atomics=0 cas=0
uminho/rmat10 renumber launches=4 coal=15276 gather=0 atomics=0 cas=0
uminho/rmat10 scan_offsets launches=4 coal=2024 gather=0 atomics=0 cas=0
uminho/rmat10 scatter_arcs launches=4 coal=608576 gather=182638 atomics=30494 cas=0
uminho/rmat10 sort_pass_0 launches=4 coal=365928 gather=30494 atomics=0 cas=0
uminho/rmat10 sort_pass_1 launches=4 coal=365928 gather=30494 atomics=0 cas=0
uminho/rmat10 sort_pass_2 launches=4 coal=365928 gather=30494 atomics=0 cas=0
uminho/rmat10 sort_pass_3 launches=4 coal=365928 gather=30494 atomics=0 cas=0
uminho/rmat10 clocks kernel=1.73641411428571455e-4 memcpy=3.47537142857142867e-5
cugraph/rmat10 color_flood launches=33 coal=1267548 gather=64466 atomics=3535 cas=0
cugraph/rmat10 color_min launches=5 coal=666304 gather=75420 atomics=45578 cas=0
cugraph/rmat10 graft launches=4 coal=514812 gather=106422 atomics=0 cas=0
cugraph/rmat10 reset_min launches=4 coal=32768 gather=0 atomics=0 cas=0
cugraph/rmat10 clocks kernel=1.34012016103896188e-4 memcpy=2.55485714285714294e-5
cc/rmat10 cc_flatten launches=1 coal=4096 gather=2044 atomics=0 cas=0
cc/rmat10 cc_init launches=1 coal=12288 gather=1033 atomics=0 cas=0
cc/rmat10 cc_process launches=1 coal=68000 gather=32045 atomics=7 cas=0
cc/rmat10 clocks kernel=4.40062909090909094e-6 memcpy=0.00000000000000000e0
";
