//! Golden-file and parity tests for the `ecl-metrics/1` stable export.
//!
//! Same determinism basis as `trace_golden.rs`: filtering disabled (no
//! `plan_filter` wall span) and a pre-warmed upload cache, so the metered
//! run records **stable, simulated-clock-derived values only** — the
//! stable JSON surface serializes to identical bytes on every host.
//! Volatile metrics (dsu.*, wall-second histograms, thread gauges) are
//! excluded from the export by construction, which the lockstep test
//! pins against the registry.
//!
//! To regenerate after an *intentional* registry or metering change:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test --test metrics_golden -- --nocapture
//! ```
//!
//! and paste the printed block over `tests/fixtures/metrics_golden_grid16.json`.

use ecl_gpu_sim::GpuProfile;
use ecl_graph::generators::grid2d;
use ecl_metrics::Stability;
use ecl_mst::{ecl_mst_gpu_with, GpuRun, OptConfig};
use std::sync::Mutex;

const GOLDEN: &str = include_str!("fixtures/metrics_golden_grid16.json");

/// The metrics gate is process-global: an unmetered workload running in
/// one test would record into a session opened concurrently by another.
/// Every test in this binary serializes through this lock.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner())
}

fn fixed_config() -> OptConfig {
    let mut cfg = OptConfig::full();
    cfg.filtering = false;
    cfg
}

/// One deterministic metered run: the CSR build and a traced GPU MST both
/// happen inside the session, so `graph.*` records directly and `trace.*`
/// publishes through the bridge when the trace session closes.
fn metered_snapshot() -> ecl_metrics::Snapshot {
    let cfg = fixed_config();
    // Warm the upload cache outside the session (mirrors trace_golden).
    let _ = ecl_mst_gpu_with(&grid2d(16, 3), &cfg, GpuProfile::TITAN_V);
    let ((), snap) = ecl_metrics::with_metrics(|| {
        let g = grid2d(16, 3);
        let ((), _session) = ecl_trace::with_trace(|| {
            let _ = ecl_mst_gpu_with(&g, &cfg, GpuProfile::TITAN_V);
        });
    });
    snap
}

#[test]
fn stable_export_matches_golden_and_is_byte_stable() {
    let _x = lock();
    let snap = metered_snapshot();

    // The run actually recorded through every instrumented layer.
    assert_eq!(snap.counter("ecl.graph.builds"), 1);
    assert!(
        snap.counter("ecl.trace.launches") > 0,
        "trace bridge silent"
    );
    assert!(snap.counter("ecl.trace.sim_us") > 0, "no simulated time");

    let text = snap.to_json();
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!("----- golden metrics -----");
        print!("{text}");
        println!("----- end golden metrics -----");
    }
    assert_eq!(
        text, GOLDEN,
        "stable metrics export drifted from tests/fixtures/metrics_golden_grid16.json \
         (GOLDEN_PRINT=1 to regenerate after an intentional change)"
    );

    // A second independent session of the same run: identical bytes.
    assert_eq!(metered_snapshot().to_json(), text);
}

#[test]
fn metrics_session_does_not_perturb_metering_or_msf() {
    let _x = lock();
    let cfg = fixed_config();
    let g = grid2d(16, 3);
    let fingerprint = |run: &GpuRun| {
        (
            run.result.in_mst.clone(),
            run.result.total_weight,
            run.result.num_edges,
            run.iterations,
            run.kernel_seconds.to_bits(),
            run.memcpy_seconds.to_bits(),
            run.records.len(),
        )
    };
    let base = ecl_mst_gpu_with(&g, &cfg, GpuProfile::TITAN_V);
    let (metered, _snap) =
        ecl_metrics::with_metrics(|| ecl_mst_gpu_with(&g, &cfg, GpuProfile::TITAN_V));
    assert_eq!(
        fingerprint(&base),
        fingerprint(&metered),
        "an active metrics session must not change the MSF or the simulated clocks"
    );
}

#[test]
fn stable_export_lists_exactly_the_stable_registry_names() {
    let _x = lock();
    // Empty session: even never-recorded stable names export (at zero),
    // and volatile names stay out regardless of value.
    let ((), snap) = ecl_metrics::with_metrics(|| {});
    let parsed = ecl_metrics::json::from_json(&snap.to_json()).expect("export parses back");
    let exported: Vec<&str> = parsed.metrics.iter().map(|m| m.name.as_str()).collect();
    let stable: Vec<&str> = snap
        .entries
        .iter()
        .filter(|e| e.stability == Stability::Stable)
        .map(|e| e.name)
        .collect();
    assert_eq!(
        exported, stable,
        "export must list the registry's stable names, all of them, in registry order"
    );
    for e in &snap.entries {
        if e.stability == Stability::Volatile {
            assert!(
                !exported.contains(&e.name),
                "volatile metric {} leaked into the stable export",
                e.name
            );
        }
    }
}
