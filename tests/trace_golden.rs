//! Golden-file test for the Chrome trace exporter: a fixed run on the
//! (sequential, deterministic) simulated device must serialize to exactly
//! the checked-in trace, and that trace must be schema-valid — monotonic
//! timestamps per thread, balanced and properly nested B/E pairs, complete
//! events with non-negative durations.
//!
//! Determinism basis: filtering is disabled (no `plan_filter` wall span),
//! and the run happens against a pre-warmed upload cache (cache hits open
//! no `upload/*` wall spans), so the traced run emits **simulated-clock
//! events only** — identical bytes on every host.
//!
//! To regenerate after an *intentional* trace-format or metering change:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test --test trace_golden -- --nocapture
//! ```
//!
//! and paste the printed block over `tests/fixtures/trace_golden_grid16.json`.

use ecl_gpu_sim::GpuProfile;
use ecl_graph::generators::grid2d;
use ecl_mst::{ecl_mst_gpu_with, OptConfig};
use ecl_trace::Event;

const GOLDEN: &str = include_str!("fixtures/trace_golden_grid16.json");

fn fixed_session() -> ecl_trace::TraceSession {
    let g = grid2d(16, 3);
    let mut cfg = OptConfig::full();
    cfg.filtering = false;
    // Warm the upload cache so the traced run below hits it (no wall spans).
    let _ = ecl_mst_gpu_with(&g, &cfg, GpuProfile::TITAN_V);
    let ((), session) = ecl_trace::with_trace(|| {
        let _ = ecl_mst_gpu_with(&g, &cfg, GpuProfile::TITAN_V);
    });
    session
}

#[test]
fn chrome_trace_is_schema_valid_and_byte_stable() {
    let session = fixed_session();
    // Sim-clock events only: wall events would be nondeterministic.
    for ev in session.events() {
        assert_eq!(
            ev.clock(),
            ecl_trace::Clock::Sim,
            "unexpected wall-clock event in the deterministic run: {ev:?}"
        );
    }
    assert!(session
        .events()
        .iter()
        .any(|e| matches!(e, Event::Launch { .. })));
    assert!(session
        .events()
        .iter()
        .any(|e| matches!(e, Event::Memcpy { .. })));

    let trace = session.chrome_trace();
    let events = ecl_trace::chrome::validate(&trace).expect("schema-valid Chrome trace");
    assert!(events > 20, "suspiciously small trace ({events} events)");

    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!("----- golden trace -----");
        print!("{trace}");
        println!("----- end golden trace -----");
    }
    assert_eq!(
        trace, GOLDEN,
        "Chrome trace drifted from tests/fixtures/trace_golden_grid16.json \
         (GOLDEN_PRINT=1 to regenerate after an intentional change)"
    );
}

#[test]
fn profile_of_fixed_run_is_byte_stable_across_sessions() {
    // Two independent sessions of the same run serialize to identical
    // profile JSON — the property the CI `--diff` fixture relies on.
    let a = fixed_session().profile().to_json();
    let b = fixed_session().profile().to_json();
    assert_eq!(a, b);
    let back = ecl_trace::Profile::from_json(&a).expect("parses");
    assert!(back.total_kernel_seconds > 0.0);
    assert!(!back.rounds.is_empty(), "round spans missing from profile");
}
