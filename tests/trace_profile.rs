//! The two §5.1 share paths must agree **exactly**: the historical
//! `Device::records()` scan (what `kernel_profile` used to do by hand) and
//! the [`ecl_trace::Profile`] built from a trace session of the same run.
//!
//! This works because launch seconds are carried verbatim into the trace
//! (`LaunchMetrics::sim_seconds`) and both paths fold them in the same
//! order (event order = record order), so the sums are bit-identical —
//! no tolerance needed.

use ecl_gpu_sim::{aggregate_records, GpuProfile};
use ecl_graph::generators::{grid2d, rmat};
use ecl_graph::CsrGraph;
use ecl_mst::{ecl_mst_gpu_with, OptConfig};

fn check(g: &CsrGraph) {
    let (run, session) =
        ecl_trace::with_trace(|| ecl_mst_gpu_with(g, &OptConfig::full(), GpuProfile::RTX_3080_TI));
    let p = session.profile();
    assert!(!p.kernels.is_empty());

    // Record-scan path, folded in record order like kernel_profile did.
    let total: f64 = run.records.iter().map(|r| r.sim_seconds).sum();
    for k in &p.kernels {
        let kt: f64 = run
            .records
            .iter()
            .filter(|r| r.name == k.name)
            .map(|r| r.sim_seconds)
            .sum();
        assert_eq!(k.sim_seconds, kt, "seconds for `{}`", k.name);
        assert_eq!(k.share, kt / total, "share for `{}`", k.name);
        let launches = run.records.iter().filter(|r| r.name == k.name).count();
        assert_eq!(k.launches, launches as u64, "launches for `{}`", k.name);
    }
    // Every launched kernel shows up in the profile (no silent drops).
    for r in &run.records {
        assert!(p.kernel(&r.name).is_some(), "`{}` missing", r.name);
    }

    // `Device::kernel_breakdown()`'s aggregation agrees as well, in the
    // same first-launch order.
    let agg = aggregate_records(&run.records);
    assert_eq!(agg.len(), p.kernels.len());
    for (a, k) in agg.iter().zip(&p.kernels) {
        assert_eq!(a.name, k.name);
        assert_eq!(a.sim_seconds, k.sim_seconds);
        assert_eq!(a.launches, k.launches);
        assert_eq!(a.totals.atomics, k.atomics);
        assert_eq!(a.totals.cas_retries, k.cas_retries);
    }

    // Per-kernel seconds sum back to the launch-only total and shares to 1
    // (regrouped fold order, so only up to rounding).
    let launch_sum: f64 = p.kernels.iter().map(|k| k.sim_seconds).sum();
    assert!((launch_sum - total).abs() <= 1e-12 * total);
    let share_sum: f64 = p.kernels.iter().map(|k| k.share).sum();
    assert!((share_sum - 1.0).abs() < 1e-12);
}

#[test]
fn profile_shares_match_record_scan_on_grid() {
    check(&grid2d(32, 7));
}

#[test]
fn profile_shares_match_record_scan_on_rmat() {
    check(&rmat(10, 8, 42));
}
