//! Cross-implementation agreement: every MST code in the workspace — both
//! ECL-MST backends, all nine de-optimization rungs, and all eight baseline
//! strategies — must produce the *identical* edge set on the whole 17-graph
//! suite (the packed weight:id ordering makes the MSF unique).

use ecl_mst_repro::prelude::*;

fn tiny_suite() -> Vec<SuiteEntry> {
    suite::suite(SuiteScale::Tiny)
}

#[test]
fn ecl_cpu_matches_serial_on_entire_suite() {
    for e in tiny_suite() {
        let expected = serial_kruskal(&e.graph);
        let got = ecl_mst_cpu(&e.graph);
        assert_eq!(got.in_mst, expected.in_mst, "{}", e.name);
        verify_msf(&e.graph, &got).unwrap_or_else(|err| panic!("{}: {err}", e.name));
    }
}

#[test]
fn ecl_gpu_matches_serial_on_entire_suite() {
    for e in tiny_suite() {
        let expected = serial_kruskal(&e.graph);
        let run = ecl_mst_gpu_with(&e.graph, &OptConfig::full(), GpuProfile::TITAN_V);
        assert_eq!(run.result.in_mst, expected.in_mst, "{}", e.name);
    }
}

#[test]
fn every_deopt_rung_matches_on_representative_inputs() {
    // The full ladder × full suite is covered at bench time; here a
    // representative sparse / dense / disconnected trio keeps CI quick.
    let picks = ["2d-2e20.sym", "coPapersDBLP", "rmat16.sym"];
    for e in tiny_suite().into_iter().filter(|e| picks.contains(&e.name)) {
        let expected = serial_kruskal(&e.graph);
        for (rung, cfg) in deopt_ladder() {
            let cpu = ecl_mst_cpu_with(&e.graph, &cfg);
            assert_eq!(
                cpu.result.in_mst, expected.in_mst,
                "{} cpu rung '{rung}'",
                e.name
            );
            let gpu = ecl_mst_gpu_with(&e.graph, &cfg, GpuProfile::RTX_3080_TI);
            assert_eq!(
                gpu.result.in_mst, expected.in_mst,
                "{} gpu rung '{rung}'",
                e.name
            );
        }
    }
}

#[test]
fn cpu_baselines_match_on_entire_suite() {
    for e in tiny_suite() {
        let expected = serial_kruskal(&e.graph);
        for (name, result) in [
            ("serial_prim", serial_prim(&e.graph)),
            ("filter_kruskal", filter_kruskal(&e.graph)),
            ("pbbs_serial", pbbs_serial(&e.graph)),
            ("pbbs_parallel", pbbs_parallel(&e.graph)),
            ("lonestar_cpu", lonestar_cpu(&e.graph)),
            ("uminho_cpu", uminho_cpu(&e.graph)),
            ("setia_prim", setia_prim(&e.graph, 8, 7)),
        ] {
            assert_eq!(result.in_mst, expected.in_mst, "{} / {name}", e.name);
        }
    }
}

#[test]
fn gpu_baselines_match_on_entire_suite() {
    for e in tiny_suite() {
        let expected = serial_kruskal(&e.graph);
        let um = uminho_gpu(&e.graph, GpuProfile::TITAN_V);
        assert_eq!(um.result.in_mst, expected.in_mst, "{} / uminho_gpu", e.name);
        let cg = cugraph_gpu(&e.graph, GpuProfile::TITAN_V);
        assert_eq!(
            cg.result.in_mst, expected.in_mst,
            "{} / cugraph_gpu",
            e.name
        );
    }
}

#[test]
fn mst_only_codes_report_nc_exactly_on_msf_inputs() {
    // Jucele and Gunrock must succeed on every single-component input and
    // return NotConnected on every multi-component input — reproducing the
    // NC cells of Tables 3 and 4.
    for e in tiny_suite() {
        let jucele = jucele_gpu(&e.graph, GpuProfile::TITAN_V);
        let gunrock = gunrock_gpu(&e.graph, GpuProfile::TITAN_V);
        if e.is_mst_input() {
            let expected = serial_kruskal(&e.graph);
            assert_eq!(
                jucele
                    .expect("jucele should run on MST input")
                    .result
                    .in_mst,
                expected.in_mst,
                "{} / jucele",
                e.name
            );
            assert_eq!(
                gunrock
                    .expect("gunrock should run on MST input")
                    .result
                    .in_mst,
                expected.in_mst,
                "{} / gunrock",
                e.name
            );
        } else {
            assert_eq!(jucele.unwrap_err(), MstError::NotConnected, "{}", e.name);
            assert_eq!(gunrock.unwrap_err(), MstError::NotConnected, "{}", e.name);
        }
    }
}
