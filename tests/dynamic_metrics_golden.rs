//! Golden-file test for the dynamic-MSF engine's stable metrics export.
//!
//! One scripted run — the `updates-replacement.ups` corpus entry replayed
//! through [`ecl_mst::DynamicMsf`] inside a metrics session — must export
//! identical JSON bytes on every host. The engine's instrumentation is all
//! simulated-clock-free (a batch counter, a candidate-count histogram, a
//! churn gauge), so the stable surface is deterministic by construction;
//! this test pins that, and pins the registry section the `ecl.dynamic.*`
//! names land in.
//!
//! To regenerate after an *intentional* registry or engine change:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test --test dynamic_metrics_golden -- --nocapture
//! ```
//!
//! and paste the printed block over
//! `tests/fixtures/dynamic_metrics_golden.json`.

use ecl_fuzz::updates;
use ecl_mst::{DynamicMsf, UpdateOp};
use std::path::Path;

const GOLDEN: &str = include_str!("fixtures/dynamic_metrics_golden.json");

fn scripted_snapshot() -> (DynamicMsf, ecl_metrics::Snapshot) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/updates-replacement.ups");
    let text = std::fs::read_to_string(&path).expect("read updates-replacement.ups");
    let script = updates::parse_script(&text).expect("corpus entry parses");
    ecl_metrics::with_metrics(|| {
        let mut engine = DynamicMsf::new(script.num_vertices);
        // Seeding is itself a batch, so it records like any other update.
        let seed: Vec<UpdateOp> = script
            .initial_edges
            .iter()
            .map(|&(u, v, w)| UpdateOp::Insert { u, v, w })
            .collect();
        engine.apply_batch(&seed);
        for batch in &script.batches {
            engine.apply_batch(batch);
        }
        engine
    })
}

#[test]
fn dynamic_export_matches_golden_and_is_byte_stable() {
    let (engine, snap) = scripted_snapshot();

    // The scripted run exercised the paths the metrics instrument: every
    // batch counted, and the tree delete forced a replacement search.
    assert_eq!(snap.counter("ecl.dynamic.batches"), 2);
    let hist = snap
        .entries
        .iter()
        .find(|e| e.name == "ecl.dynamic.replacement_candidates")
        .expect("replacement histogram registered");
    assert!(hist.count > 0, "no replacement search recorded");
    assert_eq!(
        engine.num_tree_edges(),
        3,
        "replacement kept the tree spanning"
    );

    let text = snap.to_json();
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!("----- golden metrics -----");
        print!("{text}");
        println!("----- end golden metrics -----");
    }
    assert_eq!(
        text, GOLDEN,
        "dynamic metrics export drifted from tests/fixtures/dynamic_metrics_golden.json \
         (GOLDEN_PRINT=1 to regenerate after an intentional change)"
    );

    // A second independent session of the same run: identical bytes.
    assert_eq!(scripted_snapshot().1.to_json(), text);
}
