//! Edge-case and failure-injection tests across every implementation:
//! degenerate graphs, adversarial weight patterns, and inputs crafted to
//! stress specific optimizations.

use ecl_mst_repro::prelude::*;

/// Runs every MSF-capable code on `g` and demands exact agreement.
fn all_agree(g: &CsrGraph, label: &str) {
    let expected = serial_kruskal(g);
    let runs: Vec<(&str, MstResult)> = vec![
        ("ecl_cpu", ecl_mst_cpu(g)),
        ("ecl_gpu", ecl_mst_gpu(g, GpuProfile::TITAN_V)),
        ("prim", serial_prim(g)),
        ("filter_kruskal", filter_kruskal(g)),
        ("pbbs_serial", pbbs_serial(g)),
        ("pbbs_parallel", pbbs_parallel(g)),
        ("lonestar", lonestar_cpu(g)),
        ("uminho_cpu", uminho_cpu(g)),
        ("setia_prim", setia_prim(g, 4, 0xBEEF)),
        ("uminho_gpu", uminho_gpu(g, GpuProfile::TITAN_V).result),
        ("cugraph", cugraph_gpu(g, GpuProfile::TITAN_V).result),
    ];
    for (name, r) in runs {
        assert_eq!(r.in_mst, expected.in_mst, "{label}: {name} edge set");
        assert_eq!(
            r.total_weight, expected.total_weight,
            "{label}: {name} weight"
        );
    }
}

#[test]
fn empty_graph() {
    all_agree(&GraphBuilder::new(0).build(), "empty");
}

#[test]
fn single_vertex() {
    all_agree(&GraphBuilder::new(1).build(), "single vertex");
}

#[test]
fn isolated_vertices_only() {
    all_agree(&GraphBuilder::new(64).build(), "isolated vertices");
}

#[test]
fn single_edge() {
    let mut b = GraphBuilder::new(2);
    b.add_edge(0, 1, 42);
    all_agree(&b.build(), "single edge");
}

#[test]
fn two_vertex_multigraph_collapses() {
    let mut b = GraphBuilder::new(2);
    for w in [9, 3, 7, 3] {
        b.add_edge(0, 1, w);
    }
    let g = b.build();
    assert_eq!(g.num_edges(), 1);
    let r = ecl_mst_cpu(&g);
    assert_eq!(r.total_weight, 3);
    all_agree(&g, "multigraph");
}

#[test]
fn path_graph_all_edges_in_mst() {
    let n = 500;
    let mut b = GraphBuilder::new(n);
    for v in 0..(n - 1) as u32 {
        b.add_edge(v, v + 1, (v % 97) + 1);
    }
    let g = b.build();
    let r = ecl_mst_cpu(&g);
    assert_eq!(r.num_edges, n - 1, "a tree is its own MST");
    all_agree(&g, "path");
}

#[test]
fn star_graph_hub_stress() {
    // One hub with every other vertex attached: the worst case for
    // vertex-centric load balance and for reservation contention (every
    // edge reserves the same representative).
    let n = 2_000;
    let mut b = GraphBuilder::new(n);
    for v in 1..n as u32 {
        b.add_edge(0, v, v * 7 % 1009 + 1);
    }
    all_agree(&b.build(), "star");
}

#[test]
fn complete_graph_maximal_discard() {
    // K_40: 780 edges, 39 in the MST — exercises massive cycle discards.
    let n = 40u32;
    let mut b = GraphBuilder::new(n as usize);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v, (u * 31 + v * 17) % 211 + 1);
        }
    }
    all_agree(&b.build(), "complete");
}

#[test]
fn all_weights_equal() {
    // Ties broken purely by edge id everywhere.
    let g = generators::grid2d(15, 3);
    let mut b = GraphBuilder::new(g.num_vertices());
    for e in g.edges() {
        b.add_edge(e.src, e.dst, 7);
    }
    all_agree(&b.build(), "equal weights");
}

#[test]
fn extreme_weights() {
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1, 1);
    b.add_edge(1, 2, u32::MAX);
    b.add_edge(2, 3, u32::MAX - 1);
    b.add_edge(0, 3, u32::MAX);
    let g = b.build();
    let r = ecl_mst_cpu(&g);
    assert_eq!(r.num_edges, 3);
    all_agree(&g, "extreme weights");
}

#[test]
fn two_components_identical_structure() {
    // Forces per-component forests with interleaved vertex ids.
    let mut b = GraphBuilder::new(10);
    for (u, v, w) in [(0, 2, 5), (2, 4, 3), (4, 6, 8), (6, 8, 1)] {
        b.add_edge(u, v, w);
        b.add_edge(u + 1, v + 1, w);
    }
    let g = b.build();
    let r = ecl_mst_cpu(&g);
    assert_eq!(r.num_edges, 8);
    all_agree(&g, "two components");
}

#[test]
fn mst_only_codes_accept_then_reject() {
    // Connected input accepted...
    let connected = generators::grid2d(8, 1);
    assert!(jucele_gpu(&connected, GpuProfile::TITAN_V).is_ok());
    assert!(gunrock_gpu(&connected, GpuProfile::TITAN_V).is_ok());
    // ...then the same graph plus one isolated vertex rejected.
    let mut b = GraphBuilder::new(connected.num_vertices() + 1);
    for e in connected.edges() {
        b.add_edge(e.src, e.dst, e.weight);
    }
    let disconnected = b.build();
    assert_eq!(
        jucele_gpu(&disconnected, GpuProfile::TITAN_V).unwrap_err(),
        MstError::NotConnected
    );
    assert_eq!(
        gunrock_gpu(&disconnected, GpuProfile::TITAN_V).unwrap_err(),
        MstError::NotConnected
    );
}

#[test]
fn filtering_boundary_degrees() {
    // Average degree straddling the c = 4 threshold: both sides correct.
    for avg in [3.5, 4.5, 6.0] {
        let g = generators::uniform_random(800, avg, 5);
        let run = ecl_mst_cpu_with(&g, &OptConfig::full());
        verify_msf(&g, &run.result).unwrap_or_else(|e| panic!("avg {avg}: {e}"));
    }
}

#[test]
fn dense_clique_chain_filters_hard() {
    // copapers-style cliques: phase 1 sees a tiny fraction of the edges.
    let g = generators::copapers(3_000, 40, 8);
    assert!(g.average_degree() > 20.0);
    let run = ecl_mst_cpu_with(&g, &OptConfig::full());
    assert_eq!(run.phases, 2);
    verify_msf(&g, &run.result).unwrap();
    all_agree(&g, "clique chain");
}
