//! Workspace-level property tests: on arbitrary random weighted graphs,
//! every implementation must agree with serial Kruskal edge-for-edge, and
//! structural MSF invariants must hold.

use ecl_mst_repro::prelude::*;
use proptest::prelude::*;

/// Arbitrary small weighted graph: vertex count, edge triples (dedup/self
/// loops handled by the builder).
fn graph_strategy() -> impl Strategy<Value = CsrGraph> {
    (2usize..60).prop_flat_map(|n| {
        prop::collection::vec((0..n as u32, 0..n as u32, 1..1_000u32), 0..220).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new(n);
                for (u, v, w) in edges {
                    if u != v {
                        b.add_edge(u, v, w);
                    }
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ecl_cpu_equals_serial(g in graph_strategy()) {
        let expected = serial_kruskal(&g);
        let got = ecl_mst_cpu(&g);
        prop_assert_eq!(&got.in_mst, &expected.in_mst);
        prop_assert_eq!(got.total_weight, expected.total_weight);
    }

    #[test]
    fn ecl_gpu_equals_serial(g in graph_strategy()) {
        let expected = serial_kruskal(&g);
        let got = ecl_mst_gpu(&g, GpuProfile::TITAN_V);
        prop_assert_eq!(&got.in_mst, &expected.in_mst);
    }

    #[test]
    fn all_cpu_baselines_equal_serial(g in graph_strategy()) {
        let expected = serial_kruskal(&g);
        prop_assert_eq!(&serial_prim(&g).in_mst, &expected.in_mst, "prim");
        prop_assert_eq!(&filter_kruskal(&g).in_mst, &expected.in_mst, "filter_kruskal");
        prop_assert_eq!(&pbbs_parallel(&g).in_mst, &expected.in_mst, "pbbs");
        prop_assert_eq!(&lonestar_cpu(&g).in_mst, &expected.in_mst, "lonestar");
        prop_assert_eq!(&uminho_cpu(&g).in_mst, &expected.in_mst, "uminho");
    }

    #[test]
    fn gpu_baselines_equal_serial(g in graph_strategy()) {
        let expected = serial_kruskal(&g);
        prop_assert_eq!(&uminho_gpu(&g, GpuProfile::TITAN_V).result.in_mst, &expected.in_mst);
        prop_assert_eq!(&cugraph_gpu(&g, GpuProfile::TITAN_V).result.in_mst, &expected.in_mst);
    }

    #[test]
    fn random_deopt_configs_are_correct(
        g in graph_strategy(),
        guards: bool, hybrid: bool, filt: bool, impl_pc: bool,
        one_dir: bool, tuples: bool, dd: bool, ec: bool,
    ) {
        // Beyond the paper's cumulative ladder: any combination of the 8
        // toggles must stay correct.
        let cfg = OptConfig {
            atomic_guards: guards,
            hybrid_warp: hybrid,
            filtering: filt,
            implicit_compression: impl_pc,
            one_direction: one_dir,
            tuples,
            data_driven: dd,
            edge_centric: ec,
            ..OptConfig::full()
        };
        let expected = serial_kruskal(&g);
        let cpu = ecl_mst_cpu_with(&g, &cfg);
        prop_assert_eq!(&cpu.result.in_mst, &expected.in_mst, "cpu");
        let gpu = ecl_mst_gpu_with(&g, &cfg, GpuProfile::RTX_3080_TI);
        prop_assert_eq!(&gpu.result.in_mst, &expected.in_mst, "gpu");
    }

    #[test]
    fn msf_structure_invariants(g in graph_strategy()) {
        let r = ecl_mst_cpu(&g);
        verify_msf(&g, &r).map_err(TestCaseError::fail)?;
        // |MSF| = |V| - #components, and MSF weight <= any spanning forest's
        // weight (spot: <= total graph weight).
        let total: u64 = g.edges().map(|e| e.weight as u64).sum();
        prop_assert!(r.total_weight <= total);
    }

    #[test]
    fn graph_roundtrip_preserves_mst(g in graph_strategy()) {
        let bytes = io::to_binary(&g).unwrap();
        let h = io::from_binary(&bytes).unwrap();
        prop_assert_eq!(ecl_mst_cpu(&g).in_mst, ecl_mst_cpu(&h).in_mst);
    }

    #[test]
    fn mst_invariant_under_vertex_relabeling(
        n in 2usize..50,
        raw in prop::collection::vec((0u32..50, 0u32..50), 1..120),
        perm_seed in any::<u64>(),
    ) {
        // With globally distinct weights the MSF is independent of vertex
        // ids entirely, so relabeling the vertices must map the selected
        // edge set exactly.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut b = GraphBuilder::new(n);
        for (i, &(u, v)) in raw.iter().enumerate() {
            let (u, v) = (u % n as u32, v % n as u32);
            if u != v {
                b.add_edge(u, v, 1000 + i as u32); // distinct weights
            }
        }
        let g = b.build();

        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rand::rngs::StdRng::seed_from_u64(perm_seed));
        let mut pb = GraphBuilder::new(n);
        for e in g.edges() {
            pb.add_edge(perm[e.src as usize], perm[e.dst as usize], e.weight);
        }
        let pg = pb.build();

        let edge_key = |g: &CsrGraph, r: &MstResult, map: &dyn Fn(u32) -> u32| {
            let mut keys: Vec<(u32, u32, u32)> = g
                .edges()
                .filter(|e| r.in_mst[e.id as usize])
                .map(|e| {
                    let (a, b) = (map(e.src), map(e.dst));
                    (a.min(b), a.max(b), e.weight)
                })
                .collect();
            keys.sort_unstable();
            keys
        };
        let orig = ecl_mst_cpu(&g);
        let perm_r = ecl_mst_cpu(&pg);
        prop_assert_eq!(orig.total_weight, perm_r.total_weight);
        prop_assert_eq!(
            edge_key(&g, &orig, &|v| perm[v as usize]),
            edge_key(&pg, &perm_r, &|v| v)
        );
    }
}
