//! Shape checks against the paper's headline claims, at test scale: these
//! assert orderings and coarse ratios (who wins), never absolute numbers.

use ecl_mst_repro::prelude::*;

fn small_suite() -> Vec<SuiteEntry> {
    suite::suite(SuiteScale::Tiny)
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[test]
fn ecl_gpu_beats_jucele_on_mst_geomean() {
    // Table 3/4: "4.6 times faster than the fastest GPU code (Jucele)" on
    // the MST inputs. Assert the win and a >1.5x mean factor at this scale.
    let mut ratios = Vec::new();
    for e in small_suite().into_iter().filter(|e| e.is_mst_input()) {
        let ecl = ecl_mst_gpu_with(&e.graph, &OptConfig::full(), GpuProfile::TITAN_V);
        let jucele = jucele_gpu(&e.graph, GpuProfile::TITAN_V).unwrap();
        ratios.push(jucele.kernel_seconds / ecl.kernel_seconds);
    }
    let g = geomean(&ratios);
    // At Tiny scale launch/sync overhead compresses the paper's 4.6x to a
    // smaller factor; the ordering must still be decisive.
    assert!(
        g > 1.2,
        "expected ECL-MST to clearly beat Jucele, geomean ratio {g:.2}"
    );
}

#[test]
fn ecl_gpu_beats_every_gpu_baseline_on_geomean() {
    let mut vs_uminho = Vec::new();
    let mut vs_cugraph = Vec::new();
    for e in small_suite() {
        let ecl = ecl_mst_gpu_with(&e.graph, &OptConfig::full(), GpuProfile::RTX_3080_TI);
        vs_uminho.push(
            uminho_gpu(&e.graph, GpuProfile::RTX_3080_TI).kernel_seconds / ecl.kernel_seconds,
        );
        vs_cugraph.push(
            cugraph_gpu(&e.graph, GpuProfile::RTX_3080_TI).kernel_seconds / ecl.kernel_seconds,
        );
    }
    assert!(
        geomean(&vs_uminho) > 1.5,
        "vs UMinho geomean {:.2}",
        geomean(&vs_uminho)
    );
    assert!(
        geomean(&vs_cugraph) > 2.0,
        "vs cuGraph geomean {:.2}",
        geomean(&vs_cugraph)
    );
}

#[test]
fn deopt_ladder_monotone_shape_on_geomean() {
    // Table 5's MST GeoMean row increases almost monotonically as
    // optimizations are removed (the one sanctioned exception:
    // "Topology-Driven" may be slightly faster than "No Tuples").
    let inputs: Vec<_> = small_suite()
        .into_iter()
        .filter(|e| e.is_mst_input())
        .collect();
    let ladder = deopt_ladder();
    let mut means = Vec::new();
    for (_, cfg) in &ladder {
        let times: Vec<f64> = inputs
            .iter()
            .map(|e| ecl_mst_gpu_with(&e.graph, cfg, GpuProfile::RTX_3080_TI).kernel_seconds)
            .collect();
        means.push(geomean(&times));
    }
    // Full ECL-MST must be the fastest rung, and the final vertex-centric
    // rung must be several times slower.
    let full = means[0];
    for (i, m) in means.iter().enumerate() {
        assert!(
            *m >= full * 0.95,
            "rung {} ({}) faster than fully-optimized: {m:.3e} vs {full:.3e}",
            i,
            ladder[i].0
        );
    }
    assert!(
        means[8] > 1.5 * full,
        "vertex-centric rung should be several times slower ({:.2}x)",
        means[8] / full
    );
}

#[test]
fn memcpy_version_slower_but_same_result() {
    // §5.1: ECL-MST including transfers is ~4-6x slower than compute alone,
    // yet still the second-fastest code.
    for e in small_suite().into_iter().take(4) {
        let run = ecl_mst_gpu_with(&e.graph, &OptConfig::full(), GpuProfile::TITAN_V);
        let with_memcpy = run.kernel_seconds + run.memcpy_seconds;
        assert!(with_memcpy > run.kernel_seconds, "{}", e.name);
    }
}

#[test]
fn iteration_counts_in_paper_range() {
    // §5.1: "the computation kernels are launched between 4 and 15 times"
    // (per phase boundary effects we allow a wider band at Tiny scale).
    for e in small_suite() {
        let run = ecl_mst_gpu_with(&e.graph, &OptConfig::full(), GpuProfile::TITAN_V);
        assert!(
            run.iterations >= 1 && run.iterations <= 40,
            "{}: {} iterations",
            e.name,
            run.iterations
        );
    }
}

#[test]
fn init_kernel_is_a_large_fraction_of_runtime() {
    // §5.1: init ~40% of runtime on average; kernel1 ~35%; kernels 2-3 ~12%
    // each. Assert the ordering (init and kernel1 dominate) rather than the
    // exact percentages.
    let mut init_frac = Vec::new();
    for e in small_suite() {
        let run = ecl_mst_gpu_with(&e.graph, &OptConfig::full(), GpuProfile::RTX_3080_TI);
        let total: f64 = run.records.iter().map(|r| r.sim_seconds).sum();
        let init: f64 = run
            .records
            .iter()
            .filter(|r| r.name == "init")
            .map(|r| r.sim_seconds)
            .sum();
        init_frac.push(init / total);
    }
    let mean = init_frac.iter().sum::<f64>() / init_frac.len() as f64;
    assert!(
        (0.05..0.85).contains(&mean),
        "init kernel should be a visible fraction of runtime, got {mean:.2}"
    );
    // On filtered (high average degree) inputs the split approaches the
    // paper's init~40% / kernel1~35%: check the flagship dense input.
    let dense = small_suite()
        .into_iter()
        .find(|e| e.name == "coPapersDBLP")
        .unwrap();
    let run = ecl_mst_gpu_with(&dense.graph, &OptConfig::full(), GpuProfile::RTX_3080_TI);
    let total: f64 = run.records.iter().map(|r| r.sim_seconds).sum();
    let init: f64 = run
        .records
        .iter()
        .filter(|r| r.name == "init")
        .map(|r| r.sim_seconds)
        .sum();
    assert!(
        (0.2..0.6).contains(&(init / total)),
        "coPapersDBLP init fraction {:.2}",
        init / total
    );
}

#[test]
fn throughput_correlates_with_average_degree() {
    // §5.2: "ECL-MST's throughput [correlates] with the average degree".
    // Compare a high-degree and a low-degree MST input.
    let entries = small_suite();
    let dense = entries.iter().find(|e| e.name == "coPapersDBLP").unwrap();
    let sparse = entries.iter().find(|e| e.name == "USA-road-d.NY").unwrap();
    let tput = |e: &SuiteEntry| {
        let run = ecl_mst_gpu_with(&e.graph, &OptConfig::full(), GpuProfile::RTX_3080_TI);
        e.graph.num_arcs() as f64 / run.kernel_seconds
    };
    assert!(
        tput(dense) > tput(sparse),
        "dense input should have higher edge throughput"
    );
}
