//! Regression-corpus replay.
//!
//! Every file under `tests/corpus/` is a minimized (or seed) fuzz case in
//! the text edge-list format. Replay runs the full differential check —
//! all 31 backends, the IO round-trips, and the sanitizer/tracer pass —
//! on each entry, so once a divergence lands in the corpus it can never
//! silently return. New entries are added by `cargo xtask fuzz` when a
//! campaign finds and shrinks a failure.
//!
//! `.ups` entries are dynamic-MSF update scripts: replay drives each one
//! through `ecl_mst::DynamicMsf` and demands rebuild equivalence after
//! every batch. They come from `cargo xtask fuzz --updates` (or are
//! hand-seeded to pin a specific replacement/swap/split behavior).

use ecl_fuzz::{backends, check_backends, check_instrumented, check_io, corpus, updates};
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_replays_clean_across_all_backends() {
    let entries = corpus::load_dir(&corpus_dir()).expect("load tests/corpus");
    assert!(
        entries.len() >= 8,
        "the seed corpus must keep at least its 8 original entries, found {}",
        entries.len()
    );
    let registry = backends::registry();
    for (path, g) in &entries {
        check_backends(g, &registry).unwrap_or_else(|f| panic!("{} diverged: {f}", path.display()));
        check_io(g).unwrap_or_else(|f| panic!("{} IO: {f}", path.display()));
    }
}

#[test]
fn corpus_replays_clean_under_instrumentation() {
    // Corpus graphs are tiny, so the sanitizer + tracer pass is cheap
    // enough to run on every entry rather than a sample.
    for (path, g) in corpus::load_dir(&corpus_dir()).expect("load tests/corpus") {
        check_instrumented(&g).unwrap_or_else(|f| panic!("{}: {f}", path.display()));
    }
}

#[test]
fn corpus_entries_state_their_provenance() {
    // Each entry must carry at least one comment line explaining what it
    // pins — the corpus is documentation as much as it is a test.
    let statics = corpus::load_dir(&corpus_dir()).expect("load tests/corpus");
    let scripts = updates::load_scripts(&corpus_dir()).expect("load tests/corpus scripts");
    let paths = statics
        .iter()
        .map(|(p, _)| p)
        .chain(scripts.iter().map(|(p, _)| p));
    for path in paths {
        let text = std::fs::read_to_string(path).unwrap();
        assert!(
            text.lines().any(|l| l.starts_with("c ")),
            "{} has no provenance comment",
            path.display()
        );
    }
}

#[test]
fn update_corpus_replays_rebuild_equivalent() {
    let entries = updates::load_scripts(&corpus_dir()).expect("load tests/corpus scripts");
    assert!(
        entries.len() >= 5,
        "the update corpus must keep at least its 5 seed entries, found {}",
        entries.len()
    );
    for (path, script) in &entries {
        updates::check_script(script)
            .unwrap_or_else(|f| panic!("{} diverged: {f}", path.display()));
    }
}
