//! Shard-merge parity: the sharded out-of-core pipeline must be
//! bit-identical to the monolithic `GraphBuilder + serial_kruskal` build on
//! every topology the suite knows, under both stage-1 backends, including
//! the degenerate shard counts — K = 1 (no merging at all), K far above
//! the component and edge counts (many empty shards), and the
//! all-edges-survive worst case where stage 1 discards nothing and the
//! merge tree carries every input edge.
//!
//! The packed `(weight, u, v)` total order makes the MSF unique, so
//! equality of `in_mst` bitmaps is exact, not modulo tie-breaks.

use ecl_mst_repro::prelude::*;

fn assert_parity(name: &str, g: &CsrGraph, cfg: &ShardedConfig) {
    let src = InMemoryShards::new(g.num_vertices(), g.edge_list());
    let run = sharded_msf(&src, cfg);
    let expected = serial_kruskal(g);
    let got = run.forest.to_mst_result(g);
    assert_eq!(
        got.in_mst, expected.in_mst,
        "{name}: sharded forest diverges (shards={}, backend={:?})",
        cfg.shards, cfg.backend
    );
    assert_eq!(run.forest.total_weight, expected.total_weight, "{name}");
    assert_eq!(run.forest.num_edges(), expected.num_edges, "{name}");
    verify_msf(g, &got).unwrap_or_else(|e| panic!("{name}: {e}"));
}

fn with_backend(shards: usize, backend: ShardBackend) -> ShardedConfig {
    let mut cfg = ShardedConfig::in_memory(shards);
    cfg.backend = backend;
    cfg
}

#[test]
fn entire_tiny_suite_bit_identical_under_both_backends() {
    for e in suite::suite(SuiteScale::Tiny) {
        for backend in [ShardBackend::EclCpu, ShardBackend::Kruskal] {
            assert_parity(e.name, &e.graph, &with_backend(5, backend));
        }
    }
}

#[test]
fn single_shard_is_the_identity_decomposition() {
    // K = 1: stage 1 solves everything, the merge loop never runs.
    for e in suite::suite(SuiteScale::Tiny) {
        assert_parity(e.name, &e.graph, &with_backend(1, ShardBackend::Kruskal));
    }
}

#[test]
fn shard_count_beyond_components_and_edges() {
    // K = 64 exceeds the component count of every tiny suite entry and, on
    // the sparsest ones, leaves many shards nearly or completely empty.
    // Representative sparse / dense / disconnected picks keep CI quick.
    let picks = ["2d-2e20.sym", "coPapersDBLP", "rmat16.sym", "as-skitter"];
    for e in suite::suite(SuiteScale::Tiny)
        .into_iter()
        .filter(|e| picks.contains(&e.name))
    {
        for backend in [ShardBackend::EclCpu, ShardBackend::Kruskal] {
            assert_parity(e.name, &e.graph, &with_backend(64, backend));
        }
    }
}

#[test]
fn all_edges_survive_worst_case() {
    // A path is its own MSF: no shard can discard anything, so the merge
    // tree carries every input edge to the top — the survivor bound's
    // worst case. Weights descend so the heaviest edges sit first in id
    // order, stressing the (weight, rank) reordering too.
    let n: u32 = 4096;
    let mut b = GraphBuilder::new(n as usize);
    for u in 0..n - 1 {
        b.add_edge(u, u + 1, n - u);
    }
    let g = b.build();
    for shards in [1, 3, 64] {
        for backend in [ShardBackend::EclCpu, ShardBackend::Kruskal] {
            assert_parity("path", &g, &with_backend(shards, backend));
        }
    }
}

#[test]
fn small_scale_generator_spot_check() {
    // One Small-scale cell through the real generator shard source (not a
    // re-sharded edge list): the r4 twin, the same source the bench mode
    // measures.
    let scale = SuiteScale::Small;
    let src = ecl_mst_repro::graph::suite::r4_shard_source(scale);
    let g = ecl_mst_repro::graph::suite::r4_monolith(scale);
    let run = sharded_msf(&src, &ShardedConfig::in_memory(6));
    let expected = serial_kruskal(&g);
    assert_eq!(run.forest.to_mst_result(&g).in_mst, expected.in_mst);
    assert_eq!(run.forest.total_weight, expected.total_weight);
}
