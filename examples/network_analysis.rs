//! Network analysis — another §1 application: MSTs as a building block for
//! community/backbone analysis of scale-free networks.
//!
//! Computes the MSF of a social-network twin (multiple components, heavy
//! hubs), demonstrates the MSF-vs-MST distinction the paper's "NC" cells
//! encode, and uses the forest for single-linkage-style clustering: cutting
//! the `k − 1` heaviest forest edges yields exactly `k` extra clusters.
//!
//! Run with: `cargo run --release --example network_analysis`

use ecl_mst_repro::prelude::*;

fn main() {
    // soc-LiveJournal twin: scale-free, several connected components.
    let g = generators::preferential_attachment(20_000, 9, 8, 11);
    let stats = GraphStats::compute(&g);
    println!(
        "network: {} members, {} ties, {} components, max degree {}",
        stats.vertices, stats.edges, stats.connected_components, stats.max_degree
    );

    // MST-only codes decline this input — the paper's "NC" cells.
    match jucele_gpu(&g, GpuProfile::TITAN_V) {
        Err(MstError::NotConnected) => {
            println!("Jucele-style MST-only code: NC (cannot build forests)")
        }
        _ => unreachable!("input has multiple components"),
    }

    // ECL-MST builds the spanning forest directly.
    let msf = ecl_mst_cpu(&g);
    verify_msf(&g, &msf).expect("verified");
    println!(
        "MSF: {} edges over {} components, weight {}",
        msf.num_edges, stats.connected_components, msf.total_weight
    );

    // Single-linkage clustering: drop the heaviest forest edges.
    let extra_clusters = 5usize;
    let mut forest: Vec<_> = g.edges().filter(|e| msf.in_mst[e.id as usize]).collect();
    forest.sort_by_key(|e| std::cmp::Reverse(e.weight));
    let keep = &forest[extra_clusters.min(forest.len())..];

    let mut dsu = SeqDsu::new(g.num_vertices());
    for e in keep {
        dsu.union(e.src, e.dst);
    }
    println!(
        "cutting the {extra_clusters} heaviest links: {} clusters (was {})",
        dsu.num_sets(),
        stats.connected_components
    );
    // Cutting k forest edges splits exactly k clusters off.
    assert_eq!(dsu.num_sets(), stats.connected_components + extra_clusters);
}
