//! Quickstart: build a small weighted graph, compute its MST on the CPU
//! backend and on the simulated GPU, and verify both against serial Kruskal.
//!
//! This is the paper's Figure 1/2 example: five power stations, five
//! candidate power lines, and the cheapest grid that connects everyone.
//!
//! Run with: `cargo run --release --example quickstart`

use ecl_mst_repro::prelude::*;

fn main() {
    // Vertices: A=0, B=1, C=2, D=3 (Fig. 2 of the paper).
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1, 4); // A-B, edge "a"
    b.add_edge(0, 2, 1); // A-C, edge "b"  (in the MST)
    b.add_edge(1, 3, 3); // B-D, edge "c"  (in the MST)
    b.add_edge(2, 3, 2); // C-D, edge "d"  (in the MST)
    b.add_edge(1, 2, 5); // B-C, edge "e"
    let g = b.build();

    // CPU-parallel ECL-MST.
    let mst = ecl_mst_cpu(&g);
    println!("MST weight: {}", mst.total_weight);
    println!("MST edges:  {:?}", mst.edge_ids());
    assert_eq!(mst.total_weight, 6);
    assert_eq!(mst.num_edges, 3);

    // Same algorithm on the simulated Titan V, with the clock readings.
    let run = ecl_mst_gpu_with(&g, &OptConfig::full(), GpuProfile::TITAN_V);
    assert_eq!(run.result.total_weight, mst.total_weight);
    println!(
        "simulated GPU: {:.2} us kernels + {:.2} us transfers, {} iterations",
        run.kernel_seconds * 1e6,
        run.memcpy_seconds * 1e6,
        run.iterations
    );

    // Full verification (forest + spanning + exact match with Kruskal).
    verify_msf(&g, &mst).expect("solution verified");
    println!("verified against serial Kruskal");
}
