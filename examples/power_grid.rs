//! Power-grid planning — the paper's motivating example (§1): "the cheapest
//! distribution grid that allows everyone to deliver or receive electricity
//! is the MST".
//!
//! Builds a synthetic regional grid (producers and consumers on a noisy
//! lattice with line-cost weights), computes the minimum-cost backbone, and
//! reports the savings over connecting everything.
//!
//! Run with: `cargo run --release --example power_grid`

use ecl_mst_repro::prelude::*;

fn main() {
    // A 120x120 service region: every site is a potential endpoint and
    // candidate lines follow the triangulated lattice (as a planner would
    // get from a Delaunay triangulation of the sites).
    let g = generators::delaunay_like(120, 42);
    println!(
        "candidate network: {} sites, {} candidate lines",
        g.num_vertices(),
        g.num_edges()
    );

    let mst = ecl_mst_cpu(&g);
    verify_msf(&g, &mst).expect("valid spanning tree");

    let total_cost: u64 = g.edges().map(|e| e.weight as u64).sum();
    println!("cost of building every candidate line: {total_cost}");
    println!(
        "cost of the minimum spanning grid:     {}",
        mst.total_weight
    );
    println!(
        "savings: {:.1}% with {} lines instead of {}",
        100.0 * (1.0 - mst.total_weight as f64 / total_cost as f64),
        mst.num_edges,
        g.num_edges()
    );

    // Which sites are the grid's articulation hubs? Degree within the tree.
    let mut tree_degree = vec![0u32; g.num_vertices()];
    for e in g.edges().filter(|e| mst.in_mst[e.id as usize]) {
        tree_degree[e.src as usize] += 1;
        tree_degree[e.dst as usize] += 1;
    }
    let max_deg = tree_degree.iter().max().copied().unwrap_or(0);
    let hubs = tree_degree.iter().filter(|&&d| d == max_deg).count();
    println!("busiest substation connects {max_deg} lines ({hubs} such sites)");
}
