//! Format interop walkthrough: every serialization the workspace speaks —
//! ECL binary CSR (the artifact's required input format), the simple text
//! edge list, and DIMACS `.gr` (the format of the paper's road inputs) —
//! all round-tripping the same graph, plus an MST computed from each copy
//! to show the formats are interchangeable.
//!
//! Run with: `cargo run --release --example format_convert`

use ecl_mst_repro::graph::{io, io_dimacs};
use ecl_mst_repro::prelude::*;

fn main() {
    let g = generators::road_map(40, 2.6, 99);
    println!(
        "source graph: {} junctions, {} road segments",
        g.num_vertices(),
        g.num_edges()
    );

    let dir = std::env::temp_dir().join("ecl_mst_format_convert");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // ECL binary CSR: the format the artifact's set_up.sh converts into.
    let bin_path = dir.join("roads.eclg");
    io::write_binary(&g, &bin_path).expect("write binary");
    let from_bin = io::read_binary(&bin_path).expect("read binary");
    println!(
        "wrote {} ({} bytes), read back identical: {}",
        bin_path.display(),
        std::fs::metadata(&bin_path).unwrap().len(),
        from_bin == g
    );

    // DIMACS .gr: the 9th-challenge format of USA-road-d.*.
    let gr_path = dir.join("roads.gr");
    io_dimacs::write_dimacs(&g, &gr_path).expect("write dimacs");
    let from_gr = io_dimacs::read_dimacs(&gr_path).expect("read dimacs");
    println!(
        "wrote {} ({} bytes), read back identical: {}",
        gr_path.display(),
        std::fs::metadata(&gr_path).unwrap().len(),
        from_gr == g
    );

    // Plain text edge list.
    let text = io::to_text(&g);
    let from_text = io::from_text(&text).expect("parse text");
    println!(
        "text form: {} lines, identical: {}",
        text.lines().count(),
        from_text == g
    );

    // The MST is of course format-independent.
    let reference = ecl_mst_cpu(&g);
    for (name, copy) in [
        ("binary", from_bin),
        ("dimacs", from_gr),
        ("text", from_text),
    ] {
        let mst = ecl_mst_cpu(&copy);
        assert_eq!(mst.in_mst, reference.in_mst, "{name} copy");
        println!(
            "MST from {name} copy: weight {} ({} edges) — matches",
            mst.total_weight, mst.num_edges
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
