//! Route-planning substrate — one of the application domains the paper
//! cites (§1, Held & Karp): MSTs over road networks underlie TSP lower
//! bounds and connectivity skeletons.
//!
//! Generates a USA-road-like network (the `USA-road-d.USA` twin), computes
//! its MST with both backends, and cross-checks the simulated-GPU timing
//! story (road maps skip the filtering phase because their average degree
//! is below 4).
//!
//! Run with: `cargo run --release --example road_network`

use ecl_mst_repro::prelude::*;

fn main() {
    let g = generators::road_map(180, 2.4, 7);
    let stats = GraphStats::compute(&g);
    println!(
        "road network: {} junctions, {} segments, avg degree {:.2}",
        stats.vertices, stats.edges, stats.avg_degree
    );
    assert!(
        stats.avg_degree < 4.0,
        "road maps sit below the filter threshold"
    );

    // CPU backend.
    let cpu = ecl_mst_cpu_with(&g, &OptConfig::full());
    println!(
        "CPU backend: {} phases (no filtering, as the paper predicts), {} iterations",
        cpu.phases, cpu.iterations
    );

    // Simulated GPU backend on both of the paper's devices.
    for profile in [GpuProfile::TITAN_V, GpuProfile::RTX_3080_TI] {
        let run = ecl_mst_gpu_with(&g, &OptConfig::full(), profile);
        assert_eq!(run.result.total_weight, cpu.result.total_weight);
        println!(
            "{:<12} {:>8.1} us kernels, {:>8.1} us transfers, throughput {:>7.1} Medges/s",
            profile.name,
            run.kernel_seconds * 1e6,
            run.memcpy_seconds * 1e6,
            g.num_arcs() as f64 / run.kernel_seconds / 1e6
        );
    }

    verify_msf(&g, &cpu.result).expect("verified");
    println!(
        "minimum skeleton: {} of {} segments, total length {}",
        cpu.result.num_edges,
        g.num_edges(),
        cpu.result.total_weight
    );
}
