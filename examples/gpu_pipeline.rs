//! Driving the simulated GPU directly — the "MST inside a larger analytics
//! pipeline" setting the paper uses to motivate its transfer-free baseline
//! timing ("the graph is already on the GPU from a previous processing step
//! and the resulting MST is needed on the GPU for a later step").
//!
//! Shows the public gpu-sim API: building device buffers, launching a small
//! custom kernel, then handing the same device clock regime to ECL-MST and
//! reading the per-kernel profile.
//!
//! Run with: `cargo run --release --example gpu_pipeline`

use ecl_mst_repro::gpu_sim::{BufU32, Device};
use ecl_mst_repro::prelude::*;

fn main() {
    let g = generators::copapers(12_000, 28, 9);
    println!(
        "pipeline input: {} vertices, {} edges (avg degree {:.1})",
        g.num_vertices(),
        g.num_edges(),
        g.average_degree()
    );

    // Step 0: connected components via the ECL-CC substrate (the paper's
    // reference [14]) — the classic upstream step before per-component
    // analytics.
    let cc = connected_components_gpu(&g, GpuProfile::RTX_3080_TI);
    println!(
        "ECL-CC: {} component(s) in {:.1} us simulated",
        cc.num_components,
        cc.kernel_seconds * 1e6
    );

    // Step 1 of the "pipeline": a custom degree-histogram kernel on the
    // simulated device (whatever an upstream analytics step might do).
    let mut dev = Device::new(GpuProfile::RTX_3080_TI);
    let histogram = BufU32::new(32, 0);
    let row_starts: Vec<u32> = g.row_starts().to_vec();
    let _ = dev.launch("degree_histogram", g.num_vertices(), |v, ctx| {
        ctx.charge_coalesced(8); // two row offsets
        let deg = (row_starts[v + 1] - row_starts[v]) as usize;
        let bucket = usize::BITS as usize - 1 - deg.max(1).leading_zeros() as usize;
        histogram.atomic_add(ctx, bucket.min(31), 1);
    });
    println!(
        "upstream kernel: {:.1} us simulated; degree histogram (log2 buckets):",
        dev.kernel_seconds() * 1e6
    );
    for (b, count) in histogram
        .to_vec()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
    {
        println!("  2^{b:<2} {count}");
    }

    // Step 2: ECL-MST on the same (already resident) graph — the paper's
    // baseline timing without transfer costs.
    let run = ecl_mst_gpu_with(&g, &OptConfig::full(), GpuProfile::RTX_3080_TI);
    println!(
        "\nECL-MST: {:.1} us kernels ({} iterations, {} phases)",
        run.kernel_seconds * 1e6,
        run.iterations,
        run.phases
    );
    println!(
        "         {:.1} us would be added by H2D/D2H transfers",
        run.memcpy_seconds * 1e6
    );

    // §5.1-style per-kernel profile.
    let total: f64 = run.records.iter().map(|r| r.sim_seconds).sum();
    let mut acc: Vec<(String, f64)> = Vec::new();
    for r in &run.records {
        match acc.iter_mut().find(|(n, _)| *n == r.name) {
            Some((_, t)) => *t += r.sim_seconds,
            None => acc.push((r.name.clone(), r.sim_seconds)),
        }
    }
    println!("\nper-kernel share of simulated runtime:");
    for (name, t) in acc {
        println!("  {name:<8} {:>5.1}%", 100.0 * t / total);
    }
    verify_msf(&g, &run.result).expect("verified");
}
