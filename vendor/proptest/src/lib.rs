//! Offline drop-in subset of the `proptest` API.
//!
//! The workspace builds in environments with no crates.io access, so the
//! external `proptest` dependency is replaced by this vendored implementation
//! of the surface the repo's tests use: the [`proptest!`] macro (with
//! `proptest_config`, `pat in strategy` and bare `name: Type` parameters),
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, range/tuple/`Just`
//! strategies, `prop::collection::vec`, [`arbitrary::any`], and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test seed (reproducible across runs and hosts) and failures are **not
//! shrunk** — the failing case index and message are reported as-is.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(...)` works after
/// `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
}

/// Defines property tests. Each `fn name(args) { body }` item expands to a
/// `#[test]` that runs `body` over `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        // `#[test]` arrives via `$meta` — real proptest's syntax has the
        // caller write it on each fn inside the macro invocation.
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $crate::__proptest_bind!(__rng, $($args)*);
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest '{}' failed at case #{}: {}",
                        stringify!($name),
                        __case,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $pat:pat in $strat:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking the whole test binary) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}
