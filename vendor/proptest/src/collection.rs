//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length bounds accepted by [`vec`].
pub trait SizeRange {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty size range");
        self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
    }
}

/// Strategy producing a `Vec` of values from `element`, with a length drawn
/// from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
