//! Deterministic test runner plumbing: RNG, config, and case errors.

use std::fmt;

/// Deterministic SplitMix64 stream seeded from the test's name, so every run
/// on every host generates the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property does not hold; the payload explains why.
    Fail(String),
    /// The input was rejected (unused here, kept for API parity).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure from any message type.
    pub fn fail<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection from any message type.
    pub fn reject<S: Into<String>>(reason: S) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}
