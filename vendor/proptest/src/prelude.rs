//! One-stop imports for test modules: `use proptest::prelude::*;`.

pub use crate::arbitrary::any;
pub use crate::prop;
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, proptest};

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Mixed binding forms: `pat in strategy` and bare `name: Type`.
        #[test]
        fn mixed_bindings((lo, hi) in (0u32..10, 10u32..20), flip: bool, seed: u64) {
            prop_assert!(lo < hi);
            let _ = (flip, seed);
        }

        #[test]
        fn vec_strategy_respects_bounds(v in prop::collection::vec(0u32..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn flat_map_and_just(x in Just(5usize).prop_flat_map(|n| (0..n, Just(n)))) {
            let (i, n) = x;
            prop_assert_eq!(n, 5);
            prop_assert!(i < n, "draw {} out of range {}", i, n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn question_mark_and_fail_work(x in 0u32..10) {
            let r: Result<u32, String> = Ok(x);
            let y = r.map_err(TestCaseError::fail)?;
            prop_assert_eq!(x, y);
        }

        #[test]
        #[should_panic(expected = "failed at case #0")]
        fn failures_panic_with_case_index(x in 5u32..6) {
            prop_assert_eq!(x, 0u32);
        }
    }
}
