//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Regex-flavored string strategy, as in `s in "\\PC{0,200}"`.
///
/// Only the subset the workspace uses is interpreted: a `\PC` atom (any
/// printable character) with an optional `{m,n}` repetition. Anything else
/// generates the literal itself.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some(rest) = self.strip_prefix("\\PC") {
            let (lo, hi) = parse_repetition(rest).unwrap_or((0, 16));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| {
                    // Printable ASCII, space through tilde.
                    char::from(b' ' + rng.below(95) as u8)
                })
                .collect()
        } else {
            (*self).to_string()
        }
    }
}

/// Parses a `{m,n}` suffix; `None` when absent or malformed.
fn parse_repetition(s: &str) -> Option<(usize, usize)> {
    let body = s.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let (lo, hi) = (lo.parse().ok()?, hi.parse().ok()?);
    (lo <= hi).then_some((lo, hi))
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}
