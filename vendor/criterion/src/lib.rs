//! Offline drop-in subset of the `criterion` API.
//!
//! The workspace builds in environments with no crates.io access, so the
//! external `criterion` dependency is replaced by this vendored mini-harness:
//! the same `benchmark_group`/`bench_with_input`/`criterion_group!` surface,
//! backed by a plain warm-up + mean-of-samples timer that prints one line per
//! benchmark. No statistics beyond mean/min, no plotting, no baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver holding the timing configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, None, id, f);
        self
    }
}

/// Throughput of one benchmark iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration (printed as Melem/s).
    Elements(u64),
    /// Bytes processed per iteration (printed as MiB/s).
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the mini-harness re-runs setup per
/// call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input for every single call.
    PerIteration,
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks in
    /// this group; their report lines gain a rate column.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion, self.throughput, &full, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(self.criterion, self.throughput, &full, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; printing happens per benchmark).
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the payload.
pub struct Bencher<'a> {
    config: &'a Criterion,
    samples: Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `payload`: warm-up for the configured duration, then
    /// `sample_size` timed samples (each at least one call, more when the
    /// payload is fast) within the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        loop {
            black_box(payload());
            warm_calls += 1;
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        let warm_elapsed = warm_start.elapsed();
        // Aim each sample at measurement_time / sample_size, estimating the
        // per-call cost from the warm-up.
        let per_call = warm_elapsed / warm_calls.max(1) as u32;
        let target = self.config.measurement_time / self.config.sample_size as u32;
        let calls_per_sample = if per_call.is_zero() {
            1
        } else {
            (target.as_nanos() / per_call.as_nanos().max(1)).clamp(1, 1 << 20) as u32
        };
        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..calls_per_sample {
                black_box(payload());
            }
            self.samples.push(t0.elapsed() / calls_per_sample);
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time —
    /// for payloads that consume their input (e.g. builder `build()` calls).
    /// The mini-harness runs setup once per call; `_size` is accepted for
    /// API compatibility only.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        let mut warm_in_routine = Duration::ZERO;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            warm_in_routine += t0.elapsed();
            warm_calls += 1;
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        let per_call = warm_in_routine / warm_calls.max(1) as u32;
        let target = self.config.measurement_time / self.config.sample_size as u32;
        let calls_per_sample = if per_call.is_zero() {
            1
        } else {
            (target.as_nanos() / per_call.as_nanos().max(1)).clamp(1, 1 << 20) as u32
        };
        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let mut acc = Duration::ZERO;
            for _ in 0..calls_per_sample {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                acc += t0.elapsed();
            }
            self.samples.push(acc / calls_per_sample);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    throughput: Option<Throughput>,
    id: &str,
    mut f: F,
) {
    let mut bencher = Bencher {
        config: criterion,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {id:<48} (no samples)");
        return;
    }
    let mean: Duration = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!(
            "   {:>10.2} Melem/s",
            n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE) / 1e6
        ),
        Some(Throughput::Bytes(n)) => format!(
            "   {:>10.2} MiB/s",
            n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE) / (1024.0 * 1024.0)
        ),
        None => String::new(),
    };
    println!(
        "bench {id:<48} mean {:>12.1} ns/iter   min {:>12.1} ns/iter{rate}",
        mean.as_nanos() as f64,
        min.as_nanos() as f64
    );
}

/// Declares a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("sum", 100u32), &100u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>())
        });
        group.bench_function("push", |b| b.iter(|| vec![1u8; 16]));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2u32) * 2));
    }

    criterion_group! {
        name = quick;
        config = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3));
        targets = payload
    }

    #[test]
    fn harness_runs() {
        quick();
    }
}
