//! Offline drop-in subset of the `rayon` API.
//!
//! The workspace builds in environments with no crates.io access, so the
//! external `rayon` dependency is replaced by this vendored shim. Two
//! different execution contracts coexist here, on purpose:
//!
//! * The **iterator surface** (`par_iter`/`into_par_iter`/`scope`/`join`)
//!   runs on the calling thread in deterministic sequential order. The
//!   gpu-sim metering layer and the golden-counter regression tests depend
//!   on launches executing in program order — parallelizing these would
//!   change CAS-retry counts and atomic interleavings. Algorithms keep their
//!   data-parallel shape; only host-side speedup is forgone.
//! * [`ParallelSliceMut::par_sort_unstable`] uses **real threads** (scoped,
//!   budgeted by [`current_num_threads`]). A full-`Ord` sort has exactly one
//!   observable result whenever `Ord`-equal elements are indistinguishable —
//!   true for every workspace caller, which all sort plain integer tuples —
//!   so threading it cannot perturb any golden output.
//!   `par_sort_unstable_by_key` stays sequential: with a projected key,
//!   `Ord`-equal is *not* bit-equal and tie order would become
//!   thread-count-dependent.

#![forbid(unsafe_code)]

use std::sync::OnceLock;

/// Number of worker threads real-parallel operations may use: the
/// `RAYON_NUM_THREADS` environment variable when set (0 or 1 forces
/// sequential execution), otherwise [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Parallel-iterator adapter over a plain [`Iterator`], consumed eagerly on
/// the calling thread.
pub struct Par<I>(I);

/// `rayon::prelude` subset: the conversion traits.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelExtend,
        ParallelSliceMut,
    };
}

/// Conversion into a [`Par`] iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts `self` into a [`Par`] iterator.
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;
    type Iter = C::IntoIter;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

// Lets a `Par` feed APIs that take `impl IntoParallelIterator` (e.g.
// `par_extend`) through the blanket impl above.
impl<I: Iterator> IntoIterator for Par<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_iter(self) -> I {
        self.0
    }
}

/// `par_iter()` on collections whose references iterate
/// (`rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Borrows `self` as a [`Par`] iterator.
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

/// `par_iter_mut()` on collections whose mutable references iterate
/// (`rayon::iter::IntoParallelRefMutIterator`).
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type (a mutable reference).
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Mutably borrows `self` as a [`Par`] iterator.
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Item = <&'a mut C as IntoIterator>::Item;
    type Iter = <&'a mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

impl<I: Iterator> Par<I> {
    /// Splitting-granularity hint; a no-op when sequential.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Pairs each element with its index (`rayon`'s indexed `enumerate`).
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    /// Maps each element.
    pub fn map<T, F: FnMut(I::Item) -> T>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    /// Keeps elements satisfying `pred`.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, pred: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(pred))
    }

    /// Maps and filters in one pass.
    pub fn filter_map<T, F: FnMut(I::Item) -> Option<T>>(
        self,
        f: F,
    ) -> Par<std::iter::FilterMap<I, F>> {
        Par(self.0.filter_map(f))
    }

    /// Flattens per-element sequential iterators (`flat_map_iter`).
    pub fn flat_map_iter<T, F>(self, f: F) -> Par<std::iter::FlatMap<I, T, F>>
    where
        T: IntoIterator,
        F: FnMut(I::Item) -> T,
    {
        Par(self.0.flat_map(f))
    }

    /// Runs `f` on every element.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f);
    }

    /// Rayon-style fold: one accumulator per split — a single one here.
    pub fn fold<T, ID, F>(self, mut identity: ID, fold_op: F) -> Par<std::iter::Once<T>>
    where
        ID: FnMut() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        Par(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Rayon-style reduce over the (single) split accumulator.
    pub fn reduce<ID, OP>(self, mut identity: ID, op: OP) -> I::Item
    where
        ID: FnMut() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Collects into any [`FromIterator`] collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Number of elements.
    pub fn count(self) -> usize {
        self.0.count()
    }
}

/// `par_extend` (`rayon::iter::ParallelExtend`).
pub trait ParallelExtend<T> {
    /// Extends the collection from a parallel iterator.
    fn par_extend<I: IntoParallelIterator<Item = T>>(&mut self, par_iter: I);
}

impl<T, C: Extend<T>> ParallelExtend<T> for C {
    fn par_extend<I: IntoParallelIterator<Item = T>>(&mut self, par_iter: I) {
        self.extend(par_iter.into_par_iter().0);
    }
}

/// Parallel slice sorting (`rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T> {
    /// Unstable sort on real threads (see the crate docs for why this one
    /// operation may thread while the iterator surface must not).
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Send;

    /// Unstable sort by key, run sequentially (tie order under a projected
    /// key would otherwise depend on the thread count).
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
}

/// Below this length a sort runs sequentially regardless of thread budget:
/// scoped-thread setup (~tens of µs) dwarfs the sort itself.
const PAR_SORT_MIN: usize = 1 << 14;

/// Sorts `v` by splitting it across up to 2^`depth` scoped threads, then
/// merging halves in place on the way back up.
fn par_merge_sort<T: Ord + Send>(v: &mut [T], depth: u32) {
    if depth == 0 || v.len() < PAR_SORT_MIN {
        v.sort_unstable();
        return;
    }
    let mid = v.len() / 2;
    let (lo, hi) = v.split_at_mut(mid);
    std::thread::scope(|s| {
        s.spawn(|| par_merge_sort(lo, depth - 1));
        par_merge_sort(hi, depth - 1);
    });
    sym_merge(v, mid);
}

/// In-place merge of the sorted halves `v[..mid]` and `v[mid..]` (SymMerge,
/// Kim & Kutzner 2004 — the rotation-based merge in Go's standard sort).
/// Safe code only: the data moves are `rotate_left` calls.
fn sym_merge<T: Ord>(v: &mut [T], mid: usize) {
    let len = v.len();
    if mid == 0 || mid == len {
        return;
    }
    // A one-element side reduces to a binary-search insertion (rotation).
    if mid == 1 {
        let pos = v[1..].partition_point(|x| *x < v[0]);
        v[..=pos].rotate_left(1);
        return;
    }
    if len - mid == 1 {
        let pos = v[..mid].partition_point(|x| *x <= v[mid]);
        v[pos..].rotate_right(1);
        return;
    }
    let half = len / 2;
    let n = half + mid;
    let (mut start, mut r) = if mid > half {
        (n - len, half)
    } else {
        (0, mid)
    };
    let p = n - 1;
    while start < r {
        let c = (start + r) / 2;
        if v[p - c] >= v[c] {
            start = c + 1;
        } else {
            r = c;
        }
    }
    let end = n - start;
    if start < mid && mid < end {
        v[start..end].rotate_left(mid - start);
    }
    if start > 0 && start < half {
        sym_merge(&mut v[..half], start);
    }
    if end > half && end < len {
        let shifted = end - half;
        sym_merge(&mut v[half..], shifted);
    }
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Send,
    {
        let threads = current_num_threads();
        if threads <= 1 || self.len() < PAR_SORT_MIN {
            self.sort_unstable();
        } else {
            // ceil(log2(threads)) split levels saturate the budget.
            let depth = usize::BITS - (threads - 1).leading_zeros();
            par_merge_sort(self, depth);
        }
    }

    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key);
    }
}

/// Scope for structured spawns; tasks run inline at the spawn site.
pub struct Scope<'scope>(std::marker::PhantomData<&'scope ()>);

impl<'scope> Scope<'scope> {
    /// Runs `body` immediately on the calling thread.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        body(self);
    }
}

/// Creates a scope and runs `f` in it (`rayon::scope`).
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    f(&Scope(std::marker::PhantomData))
}

/// Runs both closures (sequentially) and returns both results (`rayon::join`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_reduce_matches_sequential() {
        let (sum, max) = (0..1000u64)
            .into_par_iter()
            .with_min_len(64)
            .fold(|| (0u64, 0u64), |(s, m), x| (s + x, m.max(x)))
            .reduce(|| (0u64, 0u64), |(s1, m1), (s2, m2)| (s1 + s2, m1.max(m2)));
        assert_eq!(sum, 499_500);
        assert_eq!(max, 999);
    }

    #[test]
    fn par_iter_and_extend() {
        let v = vec![3u32, 1, 4, 1, 5];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let mut out: Vec<u32> = Vec::new();
        out.par_extend(v.par_iter().filter_map(|&x| (x > 2).then_some(x)));
        assert_eq!(out, vec![3, 4, 5]);
    }

    #[test]
    fn threaded_merge_sort_matches_sequential() {
        // Exercise par_merge_sort directly at a forced depth so the test is
        // independent of the host's core count / RAYON_NUM_THREADS.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for &len in &[0usize, 1, 2, 1000, super::PAR_SORT_MIN + 12345] {
            let v: Vec<(u32, u32)> = (0..len)
                .map(|_| (next() as u32 % 97, next() as u32))
                .collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            let mut got = v;
            super::par_merge_sort(&mut got, 3);
            assert_eq!(got, expect, "len {len}");
        }
    }

    #[test]
    fn sym_merge_merges_all_splits() {
        for len in 0..40usize {
            for mid in 0..=len {
                let mut v: Vec<u32> = (0..len as u32).map(|i| i.wrapping_mul(37) % 11).collect();
                v[..mid].sort_unstable();
                v[mid..].sort_unstable();
                let mut expect = v.clone();
                expect.sort_unstable();
                super::sym_merge(&mut v, mid);
                assert_eq!(v, expect, "len {len} mid {mid}");
            }
        }
    }

    #[test]
    fn par_sort_and_scope() {
        let mut v = vec![5, 3, 9, 1];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 3, 5, 9]);
        let mut hit = false;
        crate::scope(|s| s.spawn(|_| hit = true));
        assert!(hit);
    }
}
