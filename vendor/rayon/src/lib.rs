//! Offline drop-in subset of the `rayon` API, executed **sequentially**.
//!
//! The workspace builds in environments with no crates.io access, so the
//! external `rayon` dependency is replaced by this vendored shim: the same
//! `par_iter`/`into_par_iter`/`scope` surface, run on the calling thread in
//! deterministic order. Algorithms keep their data-parallel shape (and their
//! atomics stay correct under it); only host-side speedup is forgone. The
//! sequential order is also what makes the golden-counter regression tests
//! exactly reproducible.

#![forbid(unsafe_code)]

/// Parallel-iterator adapter over a plain [`Iterator`], consumed eagerly on
/// the calling thread.
pub struct Par<I>(I);

/// `rayon::prelude` subset: the conversion traits.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelExtend,
        ParallelSliceMut,
    };
}

/// Conversion into a [`Par`] iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts `self` into a [`Par`] iterator.
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;
    type Iter = C::IntoIter;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

// Lets a `Par` feed APIs that take `impl IntoParallelIterator` (e.g.
// `par_extend`) through the blanket impl above.
impl<I: Iterator> IntoIterator for Par<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_iter(self) -> I {
        self.0
    }
}

/// `par_iter()` on collections whose references iterate
/// (`rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Borrows `self` as a [`Par`] iterator.
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Item = <&'a C as IntoIterator>::Item;
    type Iter = <&'a C as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

/// `par_iter_mut()` on collections whose mutable references iterate
/// (`rayon::iter::IntoParallelRefMutIterator`).
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type (a mutable reference).
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Mutably borrows `self` as a [`Par`] iterator.
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Item = <&'a mut C as IntoIterator>::Item;
    type Iter = <&'a mut C as IntoIterator>::IntoIter;
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

impl<I: Iterator> Par<I> {
    /// Splitting-granularity hint; a no-op when sequential.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Pairs each element with its index (`rayon`'s indexed `enumerate`).
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    /// Maps each element.
    pub fn map<T, F: FnMut(I::Item) -> T>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    /// Keeps elements satisfying `pred`.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, pred: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(pred))
    }

    /// Maps and filters in one pass.
    pub fn filter_map<T, F: FnMut(I::Item) -> Option<T>>(
        self,
        f: F,
    ) -> Par<std::iter::FilterMap<I, F>> {
        Par(self.0.filter_map(f))
    }

    /// Flattens per-element sequential iterators (`flat_map_iter`).
    pub fn flat_map_iter<T, F>(self, f: F) -> Par<std::iter::FlatMap<I, T, F>>
    where
        T: IntoIterator,
        F: FnMut(I::Item) -> T,
    {
        Par(self.0.flat_map(f))
    }

    /// Runs `f` on every element.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f);
    }

    /// Rayon-style fold: one accumulator per split — a single one here.
    pub fn fold<T, ID, F>(self, mut identity: ID, fold_op: F) -> Par<std::iter::Once<T>>
    where
        ID: FnMut() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        Par(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Rayon-style reduce over the (single) split accumulator.
    pub fn reduce<ID, OP>(self, mut identity: ID, op: OP) -> I::Item
    where
        ID: FnMut() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Collects into any [`FromIterator`] collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Number of elements.
    pub fn count(self) -> usize {
        self.0.count()
    }
}

/// `par_extend` (`rayon::iter::ParallelExtend`).
pub trait ParallelExtend<T> {
    /// Extends the collection from a parallel iterator.
    fn par_extend<I: IntoParallelIterator<Item = T>>(&mut self, par_iter: I);
}

impl<T, C: Extend<T>> ParallelExtend<T> for C {
    fn par_extend<I: IntoParallelIterator<Item = T>>(&mut self, par_iter: I) {
        self.extend(par_iter.into_par_iter().0);
    }
}

/// Parallel slice sorting (`rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T> {
    /// Unstable sort, run sequentially.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Unstable sort by key, run sequentially.
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key);
    }
}

/// Scope for structured spawns; tasks run inline at the spawn site.
pub struct Scope<'scope>(std::marker::PhantomData<&'scope ()>);

impl<'scope> Scope<'scope> {
    /// Runs `body` immediately on the calling thread.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        body(self);
    }
}

/// Creates a scope and runs `f` in it (`rayon::scope`).
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    f(&Scope(std::marker::PhantomData))
}

/// Runs both closures (sequentially) and returns both results (`rayon::join`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_reduce_matches_sequential() {
        let (sum, max) = (0..1000u64)
            .into_par_iter()
            .with_min_len(64)
            .fold(|| (0u64, 0u64), |(s, m), x| (s + x, m.max(x)))
            .reduce(|| (0u64, 0u64), |(s1, m1), (s2, m2)| (s1 + s2, m1.max(m2)));
        assert_eq!(sum, 499_500);
        assert_eq!(max, 999);
    }

    #[test]
    fn par_iter_and_extend() {
        let v = vec![3u32, 1, 4, 1, 5];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let mut out: Vec<u32> = Vec::new();
        out.par_extend(v.par_iter().filter_map(|&x| (x > 2).then_some(x)));
        assert_eq!(out, vec![3, 4, 5]);
    }

    #[test]
    fn par_sort_and_scope() {
        let mut v = vec![5, 3, 9, 1];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 3, 5, 9]);
        let mut hit = false;
        crate::scope(|s| s.spawn(|_| hit = true));
        assert!(hit);
    }
}
