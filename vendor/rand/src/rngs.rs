//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
///
/// Not cryptographic — a fast, well-mixed 64-bit stream whose output is fixed
/// for a given seed, which is all the workspace's generators and tests need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Skips `n` draws in O(1).
    ///
    /// SplitMix64 is a counter-based generator: each [`RngCore::next_u64`]
    /// adds the golden-ratio gamma to the state and hashes it, so the state
    /// after `n` draws is `state + n * gamma` regardless of the values drawn.
    /// This makes every position in a seed's stream addressable, which is
    /// what lets the graph generators hand disjoint, *byte-identical*
    /// sub-streams of one logical sequence to parallel workers.
    pub fn advance(&mut self, n: u64) {
        self.state = self
            .state
            .wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }

    /// The rng positioned `n` draws into `seed`'s stream: equivalent to
    /// `seed_from_u64(seed)` followed by `n` discarded draws.
    pub fn seed_at(seed: u64, n: u64) -> Self {
        let mut rng = <Self as SeedableRng>::seed_from_u64(seed);
        rng.advance(n);
        rng
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
