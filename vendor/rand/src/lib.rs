//! Offline drop-in subset of the `rand` crate API.
//!
//! The workspace builds in environments with no crates.io access, so the
//! external `rand` dependency is replaced by this vendored implementation of
//! exactly the surface the repo uses: [`rngs::StdRng`] (seeded, deterministic
//! SplitMix64), [`Rng::gen`] / [`Rng::gen_range`], [`SeedableRng::seed_from_u64`]
//! and [`seq::SliceRandom::shuffle`]. The stream is fixed forever — generator
//! seeds in `ecl-graph` rely on it being reproducible across runs and hosts.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Core random source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits (high half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & (1 << 63) != 0
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integers samplable by [`Rng::gen_range`] (the `SampleUniform` subset).
/// The u64 round-trip uses wrapping arithmetic, so signed types work too.
pub trait SampleUniform: Copy + PartialOrd {
    /// Reinterprets the value as 64 bits.
    fn to_bits(self) -> u64;
    /// Reinterprets 64 bits as the value (truncating).
    fn from_bits(bits: u64) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_bits(self) -> u64 {
                self as u64
            }
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`]. Generic over `T` (like the real
/// crate) so the element type can be inferred from the call site.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end.to_bits().wrapping_sub(self.start.to_bits());
        T::from_bits(self.start.to_bits().wrapping_add(rng.next_u64() % span))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let span = end.to_bits().wrapping_sub(start.to_bits()).wrapping_add(1);
        if span == 0 {
            // Full-width inclusive range: every bit pattern is valid.
            return T::from_bits(rng.next_u64());
        }
        T::from_bits(start.to_bits().wrapping_add(rng.next_u64() % span))
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn advance_matches_discarding_draws() {
        let mut skipped = StdRng::seed_from_u64(1234);
        for _ in 0..977 {
            skipped.next_u64();
        }
        let mut jumped = StdRng::seed_from_u64(1234);
        jumped.advance(977);
        assert_eq!(jumped, skipped);
        assert_eq!(StdRng::seed_at(1234, 977), jumped);
        assert_eq!(jumped.next_u64(), skipped.next_u64());

        // Draw-position accounting used by the chunked generators: exactly
        // one `next_u64` per `gen_range`, `gen::<f64>` and `gen::<bool>`.
        let mut counted = StdRng::seed_from_u64(55);
        let _: usize = counted.gen_range(0..10);
        let _: f64 = counted.gen();
        let _: bool = counted.gen();
        assert_eq!(counted, StdRng::seed_at(55, 3));
    }

    #[test]
    fn shuffle_is_permutation() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
