//! The CPU and simulated-GPU backends execute the same algorithm, so they
//! must agree not only on the result but on the *execution shape*: phase
//! count, main-loop iteration count, and the unique MSF edge set. (Parent
//! trees inside the disjoint set may differ between racy schedules, but set
//! membership — and therefore worklist evolution — is deterministic.)

use ecl_gpu_sim::GpuProfile;
use ecl_graph::generators::*;
use ecl_graph::CsrGraph;
use ecl_mst::{deopt_ladder, ecl_mst_cpu_with, ecl_mst_gpu_with, OptConfig};

fn check_shape(g: &CsrGraph, cfg: &OptConfig, label: &str) {
    let cpu = ecl_mst_cpu_with(g, cfg);
    let gpu = ecl_mst_gpu_with(g, cfg, GpuProfile::TITAN_V);
    assert_eq!(cpu.result.in_mst, gpu.result.in_mst, "{label}: edge sets");
    assert_eq!(cpu.phases, gpu.phases, "{label}: phase count");
    assert_eq!(cpu.iterations, gpu.iterations, "{label}: iteration count");
}

#[test]
fn full_config_shapes_match() {
    for (name, g) in [
        ("grid", grid2d(14, 1)),
        ("road", road_map(16, 2.5, 2)),
        ("dense", copapers(600, 18, 3)),
        ("scale-free", preferential_attachment(700, 7, 1, 4)),
        ("forest", rmat(9, 4, 5)),
        ("random", uniform_random(900, 8.0, 6)),
    ] {
        check_shape(&g, &OptConfig::full(), name);
    }
}

#[test]
fn data_driven_ladder_shapes_match() {
    // The worklist-based rungs share loop structure across backends. (The
    // topology-driven/vertex-centric rungs intentionally differ in loop
    // accounting between backends, so only result equality is universal.)
    let g = uniform_random(700, 7.0, 9);
    for (name, cfg) in deopt_ladder() {
        if cfg.data_driven && cfg.edge_centric {
            check_shape(&g, &cfg, name);
        } else {
            let cpu = ecl_mst_cpu_with(&g, &cfg);
            let gpu = ecl_mst_gpu_with(&g, &cfg, GpuProfile::TITAN_V);
            assert_eq!(cpu.result.in_mst, gpu.result.in_mst, "{name}");
        }
    }
}

#[test]
fn seeds_shift_phase_split_identically() {
    let g = copapers(800, 20, 7);
    for seed in 0..6 {
        let cfg = OptConfig::full().with_seed(seed);
        check_shape(&g, &cfg, &format!("seed {seed}"));
    }
}
