//! ECL-MST: the paper's contribution — a parallelization that unifies
//! Kruskal's and Borůvka's algorithms (deterministic reservations over a
//! lock-free disjoint-set structure) plus the eight performance
//! optimizations evaluated in §5.3.
//!
//! Two backends execute the identical algorithm:
//!
//! * [`cpu`] — rayon + atomics on the host; real measured wall-clock.
//! * [`gpu`] — kernels on the [`ecl_gpu_sim`] simulated device; simulated
//!   time from the metered cost model (the substitution for the paper's
//!   CUDA/NVIDIA hardware).
//!
//! ```
//! use ecl_graph::generators::grid2d;
//! let g = grid2d(16, 7);
//! let mst = ecl_mst::ecl_mst_cpu(&g);
//! assert_eq!(mst.num_edges, g.num_vertices() - 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cpu;
pub mod dynamic;
pub mod filter;
pub mod gpu;
pub mod result;
pub mod serial;
pub mod sharded;
pub mod upload;
pub mod verify;

pub use config::{deopt_ladder, OptConfig};
pub use cpu::{ecl_mst_cpu, ecl_mst_cpu_with, CpuRun};
pub use dynamic::{BatchStats, DynamicMsf, SlidingWindow, UpdateOp};
pub use gpu::{ecl_mst_gpu, ecl_mst_gpu_sequential, ecl_mst_gpu_with, GpuRun};
pub use result::{pack, unpack, MstError, MstResult, EMPTY};
pub use serial::serial_kruskal;
pub use sharded::{sharded_msf, ShardBackend, ShardedConfig, ShardedForest, ShardedRun};
pub use upload::{derived_const, evict_graph, DeviceCsr};
pub use verify::{ecl_mst_cpu_verified, ecl_mst_gpu_verified, verify_msf};
