//! MST/MSF computation results.

use ecl_graph::CsrGraph;

/// Packs an edge's weight and id into the 64-bit reservation word the paper
/// uses for `atomicMin`: weight in the most-significant half (so comparison
/// orders by weight first) and the edge id in the least-significant half
/// (deterministic tie-breaker + identifies the winning edge).
///
/// Edge ids are dense (`id < |E| ≤ 2^31`), so a packed word can never equal
/// the [`EMPTY`] sentinel `u64::MAX` (that would require `id == u32::MAX`).
#[inline]
pub fn pack(weight: u32, edge_id: u32) -> u64 {
    ((weight as u64) << 32) | edge_id as u64
}

/// Inverse of [`pack`]: `(weight, edge_id)`.
#[inline]
pub fn unpack(val: u64) -> (u32, u32) {
    ((val >> 32) as u32, val as u32)
}

/// Sentinel for "no reservation yet" (larger than any packed edge).
pub const EMPTY: u64 = u64::MAX;

/// A computed minimum spanning tree/forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MstResult {
    /// `in_mst[id]` is true when undirected edge `id` is in the MST/MSF.
    pub in_mst: Vec<bool>,
    /// Total weight of the selected edges.
    pub total_weight: u64,
    /// Number of selected edges.
    pub num_edges: usize,
}

impl MstResult {
    /// Builds a result from the per-edge selection bitmap.
    pub fn from_bitmap(g: &CsrGraph, in_mst: Vec<bool>) -> Self {
        assert_eq!(in_mst.len(), g.num_edges());
        let total_weight = g.edge_set_weight(&in_mst);
        let num_edges = in_mst.iter().filter(|&&b| b).count();
        Self {
            in_mst,
            total_weight,
            num_edges,
        }
    }

    /// Ids of the selected edges, ascending.
    pub fn edge_ids(&self) -> Vec<u32> {
        self.in_mst
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u32))
            .collect()
    }
}

/// Failure modes of MST codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MstError {
    /// The code only supports single-component inputs (the paper's "NC"
    /// cells for Jucele and Gunrock: "can compute MSTs but not MSFs").
    NotConnected,
}

impl std::fmt::Display for MstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MstError::NotConnected => {
                write!(f, "input has multiple connected components (MST-only code)")
            }
        }
    }
}

impl std::error::Error for MstError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::GraphBuilder;

    #[test]
    fn pack_orders_by_weight_then_id() {
        assert!(pack(1, 999) < pack(2, 0));
        assert!(pack(5, 1) < pack(5, 2));
        assert!(pack(0, 0) < EMPTY);
        // Dense edge ids never reach u32::MAX, so EMPTY is unambiguous even
        // at the maximum weight.
        assert!(pack(u32::MAX, u32::MAX - 1) < EMPTY);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (w, id) in [(0, 0), (1, 2), (u32::MAX, 7), (123_456, u32::MAX)] {
            assert_eq!(unpack(pack(w, id)), (w, id));
        }
    }

    #[test]
    fn from_bitmap_computes_totals() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 10);
        b.add_edge(1, 2, 20);
        b.add_edge(0, 2, 30);
        let g = b.build();
        // Select the two lightest edges by id lookup.
        let mut in_mst = vec![false; 3];
        for e in g.edges().filter(|e| e.weight < 30) {
            in_mst[e.id as usize] = true;
        }
        let r = MstResult::from_bitmap(&g, in_mst);
        assert_eq!(r.num_edges, 2);
        assert_eq!(r.total_weight, 30);
        assert_eq!(r.edge_ids().len(), 2);
    }

    #[test]
    #[should_panic]
    fn from_bitmap_rejects_wrong_length() {
        let g = GraphBuilder::new(2).build();
        let _ = MstResult::from_bitmap(&g, vec![false; 5]);
    }

    #[test]
    fn error_displays() {
        assert!(MstError::NotConnected.to_string().contains("connected"));
    }
}
