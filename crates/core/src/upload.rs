//! Cached device uploads of a graph's CSR arrays.
//!
//! Every GPU code in this workspace starts by uploading the same four CSR
//! arrays (`row_starts`, `adjacency`, `arc_weights`, `arc_edge_ids`).
//! [`DeviceCsr::get`] performs that upload once per graph (keyed by
//! [`CsrGraph::uid`]) into the thread-local [`ecl_gpu_sim::Scratch`] cache
//! and hands out cheap [`Arc`] clones afterwards, so a harness run over many
//! codes pays the host-side copy once.
//!
//! **Metering is unchanged**: [`ConstBuf`] construction has never been
//! metered — the modeled H2D transfer is charged by each run's explicit
//! `dev.memcpy_h2d(...)` call, which callers keep issuing per run (a real
//! multi-code harness would also re-transfer per process). The cache only
//! removes redundant host allocation and copying.

use ecl_gpu_sim::{with_scratch, ConstBuf, Scratch};
use ecl_graph::CsrGraph;
use std::sync::Arc;

/// The four CSR arrays of one graph, resident as immutable device uploads.
#[derive(Debug, Clone)]
pub struct DeviceCsr {
    /// Row index array (`nindex`), length `n + 1`.
    pub row_starts: Arc<ConstBuf>,
    /// Adjacency array (`nlist`), length `2|E|`.
    pub adjacency: Arc<ConstBuf>,
    /// Per-arc weight array (`eweight`), length `2|E|`.
    pub arc_weights: Arc<ConstBuf>,
    /// Per-arc undirected edge-id array, length `2|E|`.
    pub arc_edge_ids: Arc<ConstBuf>,
}

impl DeviceCsr {
    /// Cached upload of `g`'s CSR arrays (thread-local cache).
    pub fn get(g: &CsrGraph) -> Self {
        with_scratch(|s| Self::get_with(s, g))
    }

    /// Like [`DeviceCsr::get`], for use inside an existing
    /// [`with_scratch`] closure (avoids the re-entrant borrow).
    pub fn get_with(s: &mut Scratch, g: &CsrGraph) -> Self {
        // Upload-boundary backstop for the reservation-word invariant:
        // `pack(weight, id)` must never equal the `EMPTY` (`u64::MAX`)
        // atomicMin sentinel. Validated constructors already reject the
        // colliding `(u32::MAX, u32::MAX)` arc, so this only fires on graphs
        // smuggled past validation; debug-only to keep the release hot path
        // allocation- and scan-free.
        debug_assert!(
            !ecl_graph::simd::has_empty_pack(g.arc_weights(), g.arc_edge_ids()),
            "arc packs to the reservation-word EMPTY sentinel"
        );
        let key = g.uid();
        // The upload ranges live *inside* the build closures: cache hits
        // produce no trace spans (nothing happens), so a warmed cache keeps
        // deterministic traces free of wall-clock events.
        DeviceCsr {
            row_starts: s.consts.get_or_upload(key, "csr/row_starts", || {
                let _r = ecl_trace::range!(wall: "upload/row_starts");
                ConstBuf::from_slice(g.row_starts())
            }),
            adjacency: s.consts.get_or_upload(key, "csr/adjacency", || {
                let _r = ecl_trace::range!(wall: "upload/adjacency");
                ConstBuf::from_slice(g.adjacency())
            }),
            arc_weights: s.consts.get_or_upload(key, "csr/arc_weights", || {
                let _r = ecl_trace::range!(wall: "upload/arc_weights");
                ConstBuf::from_slice(g.arc_weights())
            }),
            arc_edge_ids: s.consts.get_or_upload(key, "csr/arc_edge_ids", || {
                let _r = ecl_trace::range!(wall: "upload/arc_edge_ids");
                ConstBuf::from_slice(g.arc_edge_ids())
            }),
        }
    }

    /// Total device bytes of the four arrays — the figure each run passes to
    /// `dev.memcpy_h2d` for the modeled graph transfer.
    pub fn size_bytes(&self) -> u64 {
        self.row_starts.size_bytes()
            + self.adjacency.size_bytes()
            + self.arc_weights.size_bytes()
            + self.arc_edge_ids.size_bytes()
    }
}

/// Cached upload of an array *derived from* `g` (e.g. an endpoint table or
/// arc-source index), built at most once per `(graph, tag)`.
pub fn derived_const(
    g: &CsrGraph,
    tag: &'static str,
    build: impl FnOnce() -> Vec<u32>,
) -> Arc<ConstBuf> {
    with_scratch(|s| derived_with(s, g, tag, build))
}

/// Like [`derived_const`], for use inside an existing [`with_scratch`]
/// closure.
pub fn derived_with(
    s: &mut Scratch,
    g: &CsrGraph,
    tag: &'static str,
    build: impl FnOnce() -> Vec<u32>,
) -> Arc<ConstBuf> {
    s.consts
        .get_or_upload(g.uid(), tag, || ConstBuf::from_vec(build()))
}

/// Drops every cached upload belonging to `g` on this thread. Harness code
/// calls this after finishing all measurements on a graph.
pub fn evict_graph(g: &CsrGraph) {
    with_scratch(|s| s.consts.evict(g.uid()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::generators::grid2d;

    #[test]
    fn csr_uploaded_once_per_graph() {
        let g = grid2d(8, 1);
        evict_graph(&g);
        let a = DeviceCsr::get(&g);
        let b = DeviceCsr::get(&g);
        assert!(Arc::ptr_eq(&a.adjacency, &b.adjacency));
        assert!(Arc::ptr_eq(&a.row_starts, &b.row_starts));
        assert_eq!(
            a.size_bytes(),
            4 * (g.row_starts().len() + 3 * g.num_arcs()) as u64
        );
        evict_graph(&g);
        let c = DeviceCsr::get(&g);
        assert!(!Arc::ptr_eq(&a.adjacency, &c.adjacency));
        evict_graph(&g);
    }

    #[test]
    fn clones_share_the_cache_entry() {
        let g = grid2d(6, 2);
        let h = g.clone();
        let a = DeviceCsr::get(&g);
        let b = DeviceCsr::get(&h);
        assert!(Arc::ptr_eq(&a.arc_weights, &b.arc_weights));
        evict_graph(&g);
    }

    #[test]
    fn derived_builds_once_and_evicts_with_graph() {
        let g = grid2d(5, 3);
        evict_graph(&g);
        let mut builds = 0;
        for _ in 0..2 {
            let buf = derived_const(&g, "test/iota", || {
                builds += 1;
                (0..g.num_vertices() as u32).collect()
            });
            assert_eq!(buf.len(), g.num_vertices());
        }
        assert_eq!(builds, 1);
        evict_graph(&g);
        derived_const(&g, "test/iota", || {
            builds += 1;
            vec![0]
        });
        assert_eq!(builds, 2);
        evict_graph(&g);
    }
}
