//! CPU-parallel ECL-MST backend.
//!
//! The same unified Kruskal/Borůvka algorithm as the GPU kernels (Algs. 1–2
//! of the paper), executed with rayon work-stealing instead of CUDA blocks:
//! lock-free [`AtomicDsu`] unions, 64-bit `fetch_min` deterministic
//! reservations, and double-buffered worklists. All eight optimization
//! toggles of [`OptConfig`] are honored so the de-optimization ladder can be
//! measured as real CPU wall-clock, not just simulated GPU time.

use crate::config::OptConfig;
use crate::filter::{plan_filter, FilterPlan};
use crate::result::{pack, MstResult, EMPTY};
use ecl_dsu::{AtomicDsu, FindPolicy};
use ecl_graph::{CsrGraph, Weight};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Degree at which the CPU backend switches a vertex's adjacency scan to
/// nested parallelism (the analogue of the GPU's warp threshold of 4; higher
/// here because spawning rayon tasks costs more than warp lanes).
const CPU_WARP_THRESHOLD: usize = 2048;

/// Outcome of a run plus the execution counters the paper reports in §5.1.
#[derive(Debug)]
pub struct CpuRun {
    /// The computed MST/MSF.
    pub result: MstResult,
    /// Main-loop iterations (kernel-1 executions) across all phases.
    pub iterations: usize,
    /// 1 without filtering, 2 with.
    pub phases: usize,
}

/// One worklist entry: ⟨source rep, destination rep, weight, edge id⟩.
type Item = [u32; 4];

/// Double-buffered worklist storage honoring the tuples/SoA toggle. The AoS
/// form stores 16-byte items contiguously; the SoA form keeps four separate
/// arrays (the paper's "No Tuples" variant).
enum Worklist {
    Aos(Vec<Item>),
    Soa([Vec<u32>; 4]),
}

impl Worklist {
    fn from_items(items: Vec<Item>, tuples: bool) -> Self {
        if tuples {
            Worklist::Aos(items)
        } else {
            let mut cols: [Vec<u32>; 4] = Default::default();
            for c in &mut cols {
                c.reserve_exact(items.len());
            }
            for it in &items {
                for k in 0..4 {
                    cols[k].push(it[k]);
                }
            }
            Worklist::Soa(cols)
        }
    }

    fn len(&self) -> usize {
        match self {
            Worklist::Aos(v) => v.len(),
            Worklist::Soa(c) => c[0].len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn get(&self, i: usize) -> Item {
        match self {
            Worklist::Aos(v) => v[i],
            Worklist::Soa(c) => [c[0][i], c[1][i], c[2][i], c[3][i]],
        }
    }
}

struct State<'g> {
    g: &'g CsrGraph,
    cfg: OptConfig,
    policy: FindPolicy,
    dsu: AtomicDsu,
    min_edge: Vec<AtomicU64>,
    in_mst: Vec<AtomicBool>,
    iterations: usize,
}

impl<'g> State<'g> {
    fn new(g: &'g CsrGraph, cfg: OptConfig) -> Self {
        let policy = if cfg.implicit_compression {
            // Finds never write: compression happens implicitly because the
            // next worklist carries representatives instead of endpoints.
            FindPolicy::NoCompression
        } else {
            // The de-optimized variant compresses explicitly at use sites.
            FindPolicy::Halving
        };
        Self {
            g,
            cfg,
            policy,
            dsu: AtomicDsu::new(g.num_vertices()),
            min_edge: (0..g.num_vertices())
                .map(|_| AtomicU64::new(EMPTY))
                .collect(),
            in_mst: (0..g.num_edges()).map(|_| AtomicBool::new(false)).collect(),
            iterations: 0,
        }
    }

    /// Guarded 64-bit atomicMin reservation (Lines 20–21 of Alg. 2).
    #[inline]
    fn reserve(&self, slot: u32, val: u64) {
        let cell = &self.min_edge[slot as usize];
        if self.cfg.atomic_guards && cell.load(Ordering::Relaxed) <= val {
            return; // the atomic could not lower the value
        }
        cell.fetch_min(val, Ordering::AcqRel);
    }

    /// Populates a worklist from the graph (Lines 1–11 of Alg. 2).
    ///
    /// `phase2` inverts the threshold condition and maps endpoints through
    /// `set()` (dropping intra-set edges — the actual filtering step).
    fn populate(&self, threshold: Option<Weight>, phase2: bool) -> Vec<Item> {
        let _r = ecl_trace::range!(wall: "populate");
        let g = self.g;
        let cfg = &self.cfg;
        let admit = |w: Weight| match (threshold, phase2) {
            (None, _) => true,
            (Some(t), false) => w < t,
            (Some(t), true) => w >= t,
        };
        let expand = |v: u32, a: usize| -> Option<Item> {
            let n = g.arc_dst(a);
            if cfg.one_direction && v >= n {
                return None; // only process each edge in one direction
            }
            let w = g.arc_weight(a);
            if !admit(w) {
                return None;
            }
            let id = g.arc_edge_id(a);
            if phase2 {
                let p = self.dsu.find(v, self.policy);
                let q = self.dsu.find(n, self.policy);
                (p != q).then_some([p, q, w, id])
            } else {
                Some([v, n, w, id])
            }
        };

        let nv = g.num_vertices() as u32;
        if cfg.hybrid_warp {
            // Hybrid scheme: low-degree vertices expand inside the vertex-
            // parallel loop; high-degree vertices get their own nested
            // parallel scan so one hub cannot serialize a worker.
            let mut items: Vec<Item> = (0..nv)
                .into_par_iter()
                .filter(|&v| g.degree(v) < CPU_WARP_THRESHOLD)
                .flat_map_iter(|v| g.arc_range(v).filter_map(move |a| expand(v, a)))
                .collect();
            let hubs: Vec<u32> = (0..nv)
                .filter(|&v| g.degree(v) >= CPU_WARP_THRESHOLD)
                .collect();
            for v in hubs {
                items.par_extend(g.arc_range(v).into_par_iter().filter_map(|a| expand(v, a)));
            }
            items
        } else {
            // Thread-based: each vertex's whole adjacency is one unit of
            // work, hubs and all.
            (0..nv)
                .into_par_iter()
                .flat_map_iter(|v| g.arc_range(v).filter_map(move |a| expand(v, a)))
                .collect()
        }
    }

    /// Kernel 1 (Lines 14–23): cycle check, implicit path compression,
    /// deterministic reservations. Consumes `wl1`, returns the next list.
    fn reserve_kernel(&mut self, wl1: &Worklist) -> Vec<Item> {
        self.iterations += 1;
        (0..wl1.len())
            .into_par_iter()
            .filter_map(|i| {
                let [v, n, w, id] = wl1.get(i);
                let p = self.dsu.find(v, self.policy);
                let q = self.dsu.find(n, self.policy);
                if p == q {
                    return None; // edge closes a cycle: discard
                }
                let val = pack(w, id);
                self.reserve(p, val);
                self.reserve(q, val);
                Some(if self.cfg.implicit_compression {
                    [p, q, w, id] // store representatives (impl. path compr.)
                } else {
                    [v, n, w, id]
                })
            })
            .collect()
    }

    /// Kernel 2 (Lines 27–33): include reserved edges, union their sets.
    fn select_kernel(&self, wl: &Worklist) {
        (0..wl.len()).into_par_iter().for_each(|i| {
            let [v, n, w, id] = wl.get(i);
            let (p, q) = if self.cfg.implicit_compression {
                (v, n) // entries already hold the reps recorded in kernel 1
            } else {
                (self.dsu.find(v, self.policy), self.dsu.find(n, self.policy))
            };
            let val = pack(w, id);
            if self.min_edge[p as usize].load(Ordering::Acquire) == val
                || self.min_edge[q as usize].load(Ordering::Acquire) == val
            {
                self.dsu.union(v, n, self.policy);
                self.in_mst[id as usize].store(true, Ordering::Relaxed);
            }
        });
    }

    /// Kernel 3 (Lines 34–37): clear the touched reservation slots.
    fn reset_kernel(&self, wl: &Worklist) {
        (0..wl.len()).into_par_iter().for_each(|i| {
            let [v, n, _, _] = wl.get(i);
            let (p, q) = if self.cfg.implicit_compression {
                (v, n)
            } else {
                (self.dsu.find(v, self.policy), self.dsu.find(n, self.policy))
            };
            self.min_edge[p as usize].store(EMPTY, Ordering::Release);
            self.min_edge[q as usize].store(EMPTY, Ordering::Release);
        });
    }

    /// The data-driven main loop (Lines 12–39) over one phase's worklist.
    fn run_loop(&mut self, initial: Vec<Item>) {
        let tuples = self.cfg.tuples;
        let mut wl1 = Worklist::from_items(initial, tuples);
        while !wl1.is_empty() {
            let _round = ecl_trace::range!(wall: "round");
            ecl_trace::attach("worklist_in", wl1.len() as f64);
            let next = {
                let _k = ecl_trace::range!(wall: "kernel1");
                self.reserve_kernel(&wl1)
            };
            let wl2 = Worklist::from_items(next, tuples);
            ecl_trace::attach("worklist_out", wl2.len() as f64);
            if wl2.is_empty() {
                break;
            }
            {
                let _k = ecl_trace::range!(wall: "kernel2");
                self.select_kernel(&wl2);
            }
            {
                let _k = ecl_trace::range!(wall: "kernel3");
                self.reset_kernel(&wl2);
            }
            wl1 = wl2;
        }
    }

    /// Topology-driven main loop: no worklists; every iteration rescans all
    /// graph edges (edge-centric) or all vertices' adjacencies
    /// (vertex-centric), until an iteration finds no crossing edge.
    fn run_topology_driven(&mut self) {
        let g = self.g;
        let one_dir = self.cfg.one_direction;
        // Edge-centric assignment needs arc -> source; build it once (the
        // cost a real topology-driven edge-centric code pays up front).
        let arc_src: Vec<u32> = if self.cfg.edge_centric {
            let mut src = vec![0u32; g.num_arcs()];
            for v in 0..g.num_vertices() as u32 {
                for a in g.arc_range(v) {
                    src[a] = v;
                }
            }
            src
        } else {
            Vec::new()
        };
        loop {
            let _round = ecl_trace::range!(wall: "round");
            self.iterations += 1;
            let live = AtomicBool::new(false);
            let reserve_arc = |v: u32, a: usize| {
                let n = g.arc_dst(a);
                if one_dir && v >= n {
                    return;
                }
                let p = self.dsu.find(v, self.policy);
                let q = self.dsu.find(n, self.policy);
                if p != q {
                    live.store(true, Ordering::Relaxed);
                    let val = pack(g.arc_weight(a), g.arc_edge_id(a));
                    self.reserve(p, val);
                    self.reserve(q, val);
                }
            };
            let select_arc = |v: u32, a: usize| {
                let n = g.arc_dst(a);
                if one_dir && v >= n {
                    return;
                }
                let p = self.dsu.find(v, self.policy);
                let q = self.dsu.find(n, self.policy);
                if p == q {
                    return;
                }
                let id = g.arc_edge_id(a);
                let val = pack(g.arc_weight(a), id);
                if self.min_edge[p as usize].load(Ordering::Acquire) == val
                    || self.min_edge[q as usize].load(Ordering::Acquire) == val
                {
                    self.dsu.union(v, n, self.policy);
                    self.in_mst[id as usize].store(true, Ordering::Relaxed);
                }
            };
            if self.cfg.edge_centric {
                // Edge-centric topology-driven: arcs are the unit of work
                // (fine-grained splitting keeps hubs from serializing).
                (0..g.num_arcs()).into_par_iter().for_each(|a| {
                    reserve_arc(arc_src[a], a);
                });
                if !live.load(Ordering::Relaxed) {
                    break;
                }
                (0..g.num_arcs()).into_par_iter().for_each(|a| {
                    select_arc(arc_src[a], a);
                });
            } else {
                // Vertex-centric: one task per vertex, whole row serial.
                (0..g.num_vertices() as u32)
                    .into_par_iter()
                    .with_min_len(64)
                    .for_each(|v| {
                        for a in g.arc_range(v) {
                            reserve_arc(v, a);
                        }
                    });
                if !live.load(Ordering::Relaxed) {
                    break;
                }
                (0..g.num_vertices() as u32)
                    .into_par_iter()
                    .with_min_len(64)
                    .for_each(|v| {
                        for a in g.arc_range(v) {
                            select_arc(v, a);
                        }
                    });
            }
            // Reset all reservation slots (no worklist to scope the reset).
            self.min_edge
                .par_iter()
                .for_each(|s| s.store(EMPTY, Ordering::Release));
        }
    }

    fn into_result(self) -> (MstResult, usize) {
        let in_mst: Vec<bool> = self
            .in_mst
            .iter()
            .map(|b| b.load(Ordering::Acquire))
            .collect();
        (MstResult::from_bitmap(self.g, in_mst), self.iterations)
    }
}

/// Runs ECL-MST on the CPU with an explicit configuration.
pub fn ecl_mst_cpu_with(g: &CsrGraph, cfg: &OptConfig) -> CpuRun {
    let _run = ecl_trace::range!(wall: "ecl_mst_cpu");
    let mut st = State::new(g, *cfg);
    let mut phases = 1;

    if !cfg.data_driven || !cfg.edge_centric {
        // Topology-driven (and the vertex-centric rung below it) has no
        // worklist to filter, so filtering does not apply.
        let _p = ecl_trace::range!(wall: "topology_driven");
        st.run_topology_driven();
    } else {
        let plan = if cfg.filtering {
            plan_filter(g, cfg.filter_c, cfg.seed)
        } else {
            FilterPlan::SinglePhase
        };
        match plan {
            FilterPlan::SinglePhase => {
                let _p = ecl_trace::range!(wall: "phase1");
                let wl = st.populate(None, false);
                st.run_loop(wl);
            }
            FilterPlan::TwoPhase { threshold } => {
                phases = 2;
                {
                    let _p = ecl_trace::range!(wall: "phase1");
                    let wl = st.populate(Some(threshold), false);
                    st.run_loop(wl);
                }
                {
                    let _p = ecl_trace::range!(wall: "phase2");
                    let wl = st.populate(Some(threshold), true);
                    st.run_loop(wl);
                }
            }
        }
    }

    let (result, iterations) = st.into_result();
    CpuRun {
        result,
        iterations,
        phases,
    }
}

/// Runs fully-optimized ECL-MST on the CPU.
pub fn ecl_mst_cpu(g: &CsrGraph) -> MstResult {
    ecl_mst_cpu_with(g, &OptConfig::full()).result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::deopt_ladder;
    use crate::serial::serial_kruskal;
    use ecl_graph::generators::*;
    use ecl_graph::GraphBuilder;

    fn check(g: &CsrGraph, cfg: &OptConfig) {
        let expected = serial_kruskal(g);
        let got = ecl_mst_cpu_with(g, cfg);
        assert_eq!(
            got.result.total_weight, expected.total_weight,
            "weight mismatch"
        );
        assert_eq!(
            got.result.num_edges, expected.num_edges,
            "edge count mismatch"
        );
        // Packed-value tie-breaking makes the MSF unique: edge sets match.
        assert_eq!(got.result.in_mst, expected.in_mst, "edge set mismatch");
    }

    #[test]
    fn triangle() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 2);
        b.add_edge(0, 2, 3);
        check(&b.build(), &OptConfig::full());
    }

    #[test]
    fn empty_and_singleton() {
        check(&GraphBuilder::new(0).build(), &OptConfig::full());
        check(&GraphBuilder::new(1).build(), &OptConfig::full());
        check(&GraphBuilder::new(10).build(), &OptConfig::full());
    }

    #[test]
    fn grid_full_config() {
        check(&grid2d(20, 1), &OptConfig::full());
    }

    #[test]
    fn dense_graph_triggers_filtering() {
        let g = copapers(800, 20, 2);
        let run = ecl_mst_cpu_with(&g, &OptConfig::full());
        assert_eq!(run.phases, 2, "dense graph should use two phases");
        check(&g, &OptConfig::full());
    }

    #[test]
    fn sparse_graph_single_phase() {
        let g = road_map(15, 2.5, 3);
        let run = ecl_mst_cpu_with(&g, &OptConfig::full());
        assert_eq!(run.phases, 1);
        check(&g, &OptConfig::full());
    }

    #[test]
    fn msf_on_disconnected_input() {
        let g = rmat(9, 4, 4);
        check(&g, &OptConfig::full());
    }

    #[test]
    fn scale_free_with_hubs() {
        let g = preferential_attachment(1500, 8, 1, 5);
        check(&g, &OptConfig::full());
    }

    #[test]
    fn every_deopt_rung_is_correct() {
        let graphs = [
            grid2d(12, 1),
            rmat(8, 6, 2),
            copapers(300, 12, 3),
            road_map(10, 2.8, 4),
        ];
        for g in &graphs {
            for (name, cfg) in deopt_ladder() {
                let expected = serial_kruskal(g);
                let got = ecl_mst_cpu_with(g, &cfg);
                assert_eq!(
                    got.result.total_weight, expected.total_weight,
                    "rung '{name}' wrong weight"
                );
                assert_eq!(
                    got.result.in_mst, expected.in_mst,
                    "rung '{name}' wrong edge set"
                );
            }
        }
    }

    #[test]
    fn iteration_count_is_logarithmic() {
        let g = grid2d(40, 2);
        let run = ecl_mst_cpu_with(&g, &OptConfig::full());
        // Paper: between 4 and 15 computation-kernel rounds on real inputs;
        // allow generous slack but catch runaway loops.
        assert!(
            run.iterations >= 2 && run.iterations <= 40,
            "{}",
            run.iterations
        );
    }

    #[test]
    fn seeds_change_threshold_not_result() {
        let g = copapers(600, 16, 6);
        let expected = serial_kruskal(&g);
        for seed in 0..8 {
            let got = ecl_mst_cpu_with(&g, &OptConfig::full().with_seed(seed));
            assert_eq!(got.result.in_mst, expected.in_mst, "seed {seed}");
        }
    }

    #[test]
    fn equal_weights_everywhere() {
        let mut b = GraphBuilder::new(6);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b.add_edge(u, v, 42);
            }
        }
        check(&b.build(), &OptConfig::full());
    }
}
