//! CPU-parallel ECL-MST backend.
//!
//! The same unified Kruskal/Borůvka algorithm as the GPU kernels (Algs. 1–2
//! of the paper), executed with rayon work-stealing instead of CUDA blocks:
//! lock-free [`AtomicDsu`] unions, 64-bit `fetch_min` deterministic
//! reservations, and double-buffered worklists. All eight optimization
//! toggles of [`OptConfig`] are honored so the de-optimization ladder can be
//! measured as real CPU wall-clock, not just simulated GPU time.

use crate::config::OptConfig;
use crate::filter::{plan_filter, FilterPlan};
use crate::result::{pack, MstResult, EMPTY};
use ecl_dsu::{AtomicDsu, FindPolicy};
use ecl_graph::{CsrGraph, Weight};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Degree at which the CPU backend switches a vertex's adjacency scan to
/// nested parallelism (the analogue of the GPU's warp threshold of 4; higher
/// here because spawning rayon tasks costs more than warp lanes).
const CPU_WARP_THRESHOLD: usize = 2048;

/// Outcome of a run plus the execution counters the paper reports in §5.1.
#[derive(Debug)]
pub struct CpuRun {
    /// The computed MST/MSF.
    pub result: MstResult,
    /// Main-loop iterations (kernel-1 executions) across all phases.
    pub iterations: usize,
    /// 1 without filtering, 2 with.
    pub phases: usize,
}

/// One worklist entry: ⟨source rep, destination rep, weight, edge id⟩.
type Item = [u32; 4];

/// Double-buffered worklist storage honoring the tuples/SoA toggle. The AoS
/// form stores 16-byte items contiguously; the SoA form keeps four separate
/// arrays (the paper's "No Tuples" variant).
enum Worklist {
    Aos(Vec<Item>),
    Soa([Vec<u32>; 4]),
}

impl Worklist {
    fn from_items(items: Vec<Item>, tuples: bool) -> Self {
        if tuples {
            Worklist::Aos(items)
        } else {
            let mut cols: [Vec<u32>; 4] = Default::default();
            for c in &mut cols {
                c.reserve_exact(items.len());
            }
            for it in &items {
                for k in 0..4 {
                    cols[k].push(it[k]);
                }
            }
            Worklist::Soa(cols)
        }
    }

    fn len(&self) -> usize {
        match self {
            Worklist::Aos(v) => v.len(),
            Worklist::Soa(c) => c[0].len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn get(&self, i: usize) -> Item {
        match self {
            Worklist::Aos(v) => v[i],
            Worklist::Soa(c) => [c[0][i], c[1][i], c[2][i], c[3][i]],
        }
    }
}

struct State<'g> {
    g: &'g CsrGraph,
    cfg: OptConfig,
    policy: FindPolicy,
    dsu: AtomicDsu,
    min_edge: Vec<AtomicU64>,
    in_mst: Vec<AtomicBool>,
    iterations: usize,
    /// Flat-label scratch reused by the label fast paths (one allocation
    /// per solve, refilled per round).
    labels: Vec<u32>,
    /// Whether a trace session is active: finds route through
    /// `find_counted` so the profile's find-hop totals cover the CPU
    /// backend too. Captured once — the hot path must not re-query.
    collect_hops: bool,
}

impl<'g> State<'g> {
    fn new(g: &'g CsrGraph, cfg: OptConfig) -> Self {
        let policy = if cfg.implicit_compression {
            // Finds never write: compression happens implicitly because the
            // next worklist carries representatives instead of endpoints.
            FindPolicy::NoCompression
        } else {
            // The de-optimized variant compresses explicitly at use sites,
            // with the cache-blocked bounded variant of path halving.
            FindPolicy::BlockedHalving
        };
        Self {
            g,
            cfg,
            policy,
            dsu: AtomicDsu::new(g.num_vertices()),
            min_edge: (0..g.num_vertices())
                .map(|_| AtomicU64::new(EMPTY))
                .collect(),
            in_mst: (0..g.num_edges()).map(|_| AtomicBool::new(false)).collect(),
            iterations: 0,
            labels: Vec::new(),
            collect_hops: ecl_trace::active(),
        }
    }

    /// A find that feeds the trace profile's hop counters when a session is
    /// active (the branch is a field load; finds stay policy-driven).
    #[inline]
    fn find(&self, x: u32) -> u32 {
        if self.collect_hops {
            let (r, h) = self.dsu.find_counted(x, self.policy);
            ecl_trace::record_find_hops(h);
            r
        } else {
            self.dsu.find(x, self.policy)
        }
    }

    /// Guarded 64-bit atomicMin reservation (Lines 20–21 of Alg. 2).
    #[inline]
    fn reserve(&self, slot: u32, val: u64) {
        let cell = &self.min_edge[slot as usize];
        if self.cfg.atomic_guards && cell.load(Ordering::Relaxed) <= val {
            return; // the atomic could not lower the value
        }
        cell.fetch_min(val, Ordering::AcqRel);
    }

    /// Groups a fresh worklist by source-key block — a stable counting sort
    /// on `item[0] >> shift` (the vertex in phase 1, the representative in
    /// phase 2), with the block size chosen degree-aware so one block's
    /// parent and reservation slots stay cache-resident while its items
    /// stream. Order-only: the MSF is unique under the packed `(weight, id)`
    /// tie-break, so any worklist permutation yields the identical result.
    fn locality_sort(&self, items: Vec<Item>) -> Vec<Item> {
        let n = self.g.num_vertices();
        if !self.cfg.locality_order || items.len() < 2 || n == 0 {
            return items;
        }
        // Aim for ~8k items per block: denser graphs get smaller vertex
        // blocks (their items concentrate), sparser ones larger.
        let avg_deg = (items.len() / n).max(1);
        let block = (8192 / avg_deg).next_power_of_two().clamp(256, 65_536);
        let shift = block.trailing_zeros();
        let buckets = (n - 1) / block + 2;
        let mut starts = vec![0usize; buckets];
        for i in 0..items.len() {
            starts[(items[i][0] as usize >> shift) + 1] += 1;
        }
        for b in 1..buckets {
            starts[b] += starts[b - 1];
        }
        let mut out = vec![[0u32; 4]; items.len()];
        for it in items {
            let b = it[0] as usize >> shift;
            out[starts[b]] = it;
            starts[b] += 1;
        }
        out
    }

    /// Populates the single-phase worklist from the graph (Lines 1–11 of
    /// Alg. 2), reading the CSR arrays as raw slices.
    fn populate(&self) -> Vec<Item> {
        let _r = ecl_trace::range!(wall: "populate");
        let g = self.g;
        let cfg = &self.cfg;
        let (adj, wts, ids) = (g.adjacency(), g.arc_weights(), g.arc_edge_ids());
        let expand = |v: u32, a: usize| -> Option<Item> {
            let n = adj[a];
            if cfg.one_direction && v >= n {
                return None; // only process each edge in one direction
            }
            Some([v, n, wts[a], ids[a]])
        };

        let nv = g.num_vertices() as u32;
        if cfg.hybrid_warp {
            // Hybrid scheme: low-degree vertices expand inside the vertex-
            // parallel loop; high-degree vertices get their own nested
            // parallel scan so one hub cannot serialize a worker.
            let mut items: Vec<Item> = (0..nv)
                .into_par_iter()
                .filter(|&v| g.degree(v) < CPU_WARP_THRESHOLD)
                .flat_map_iter(|v| g.arc_range(v).filter_map(move |a| expand(v, a)))
                .collect();
            let hubs: Vec<u32> = (0..nv)
                .filter(|&v| g.degree(v) >= CPU_WARP_THRESHOLD)
                .collect();
            for v in hubs {
                items.par_extend(g.arc_range(v).into_par_iter().filter_map(|a| expand(v, a)));
            }
            items
        } else {
            // Thread-based: each vertex's whole adjacency is one unit of
            // work, hubs and all.
            (0..nv)
                .into_par_iter()
                .flat_map_iter(|v| g.arc_range(v).filter_map(move |a| expand(v, a)))
                .collect()
        }
    }

    /// Phase-1 populate fused with heavy-edge capture: one pass over the
    /// CSR slices yields the light worklist **and** the raw heavy arc list,
    /// so the two-phase path never rescans the whole graph to build phase 2
    /// (the old `populate(Some(t), true)` second sweep).
    fn populate_split(&self, threshold: Weight) -> (Vec<Item>, Vec<Item>) {
        let _r = ecl_trace::range!(wall: "populate");
        let g = self.g;
        let one_dir = self.cfg.one_direction;
        let (row, adj) = (g.row_starts(), g.adjacency());
        let (wts, ids) = (g.arc_weights(), g.arc_edge_ids());
        (0..g.num_vertices() as u32)
            .into_par_iter()
            .fold(
                || (Vec::new(), Vec::new()),
                |(mut light, mut heavy): (Vec<Item>, Vec<Item>), v| {
                    for a in row[v as usize] as usize..row[v as usize + 1] as usize {
                        let n = adj[a];
                        if one_dir && v >= n {
                            continue;
                        }
                        let it = [v, n, wts[a], ids[a]];
                        if wts[a] < threshold {
                            light.push(it);
                        } else {
                            heavy.push(it);
                        }
                    }
                    (light, heavy)
                },
            )
            .reduce(
                || (Vec::new(), Vec::new()),
                |(mut l1, mut h1), (l2, h2)| {
                    l1.extend(l2);
                    h1.extend(h2);
                    (l1, h1)
                },
            )
    }

    /// Builds the phase-2 worklist from the captured heavy arcs: map both
    /// endpoints through the (now quiescent) forest and drop intra-set
    /// edges — the actual filtering step. With read-only finds one O(n)
    /// flat-labeling pass replaces two pointer chases per arc.
    fn populate_phase2_from(&mut self, heavy: &[Item]) -> Vec<Item> {
        let _r = ecl_trace::range!(wall: "populate");
        if self.policy == FindPolicy::NoCompression && !self.collect_hops {
            self.dsu.flat_labels_into(&mut self.labels);
            let labels = &self.labels;
            heavy
                .par_iter()
                .filter_map(|&[v, n, w, id]| {
                    let (p, q) = (labels[v as usize], labels[n as usize]);
                    (p != q).then_some([p, q, w, id])
                })
                .collect()
        } else {
            let st = &*self;
            heavy
                .par_iter()
                .filter_map(|&[v, n, w, id]| {
                    let p = st.find(v);
                    let q = st.find(n);
                    (p != q).then_some([p, q, w, id])
                })
                .collect()
        }
    }

    /// Kernel 1 (Lines 14–23): cycle check, implicit path compression,
    /// deterministic reservations. Consumes `wl1`, returns the next list.
    fn reserve_kernel(&mut self, wl1: &Worklist) -> Vec<Item> {
        self.iterations += 1;
        // The structure is quiescent at kernel entry (unions happen only in
        // the barrier-separated select kernel), so when finds are read-only
        // and the worklist covers a sizable fraction of the vertex set, one
        // O(n) flat-labeling pass is cheaper than two pointer chases per
        // item. Skipped while hop-tracing so profiles keep real chase data.
        let use_labels = self.policy == FindPolicy::NoCompression
            && !self.collect_hops
            && wl1.len() >= self.g.num_vertices() / 4;
        if use_labels {
            self.dsu.flat_labels_into(&mut self.labels);
        }
        let st = &*self;
        let labels = &st.labels;
        (0..wl1.len())
            .into_par_iter()
            .filter_map(|i| {
                let [v, n, w, id] = wl1.get(i);
                let (p, q) = if use_labels {
                    (labels[v as usize], labels[n as usize])
                } else {
                    (st.find(v), st.find(n))
                };
                if p == q {
                    return None; // edge closes a cycle: discard
                }
                let val = pack(w, id);
                st.reserve(p, val);
                st.reserve(q, val);
                Some(if st.cfg.implicit_compression {
                    [p, q, w, id] // store representatives (impl. path compr.)
                } else {
                    [v, n, w, id]
                })
            })
            .collect()
    }

    /// Kernel 2 (Lines 27–33): include reserved edges, union their sets.
    fn select_kernel(&self, wl: &Worklist) {
        (0..wl.len()).into_par_iter().for_each(|i| {
            let [v, n, w, id] = wl.get(i);
            let (p, q) = if self.cfg.implicit_compression {
                (v, n) // entries already hold the reps recorded in kernel 1
            } else {
                (self.find(v), self.find(n))
            };
            let val = pack(w, id);
            if self.min_edge[p as usize].load(Ordering::Acquire) == val
                || self.min_edge[q as usize].load(Ordering::Acquire) == val
            {
                self.dsu.union(v, n, self.policy);
                self.in_mst[id as usize].store(true, Ordering::Relaxed);
            }
        });
    }

    /// Kernel 3 (Lines 34–37): clear the touched reservation slots.
    fn reset_kernel(&self, wl: &Worklist) {
        (0..wl.len()).into_par_iter().for_each(|i| {
            let [v, n, _, _] = wl.get(i);
            let (p, q) = if self.cfg.implicit_compression {
                (v, n)
            } else {
                (self.find(v), self.find(n))
            };
            self.min_edge[p as usize].store(EMPTY, Ordering::Release);
            self.min_edge[q as usize].store(EMPTY, Ordering::Release);
        });
    }

    /// The data-driven main loop (Lines 12–39) over one phase's worklist.
    fn run_loop(&mut self, initial: Vec<Item>) {
        let tuples = self.cfg.tuples;
        let initial = self.locality_sort(initial);
        let mut wl1 = Worklist::from_items(initial, tuples);
        while !wl1.is_empty() {
            let _round = ecl_trace::range!(wall: "round");
            ecl_trace::attach("worklist_in", wl1.len() as f64);
            let next = {
                let _k = ecl_trace::range!(wall: "kernel1");
                self.reserve_kernel(&wl1)
            };
            let wl2 = Worklist::from_items(next, tuples);
            ecl_trace::attach("worklist_out", wl2.len() as f64);
            if wl2.is_empty() {
                break;
            }
            {
                let _k = ecl_trace::range!(wall: "kernel2");
                self.select_kernel(&wl2);
            }
            {
                let _k = ecl_trace::range!(wall: "kernel3");
                self.reset_kernel(&wl2);
            }
            wl1 = wl2;
        }
    }

    /// Topology-driven main loop: no worklists; every iteration rescans all
    /// graph edges (edge-centric) or all vertices' adjacencies
    /// (vertex-centric), until an iteration finds no crossing edge.
    fn run_topology_driven(&mut self) {
        let g = self.g;
        let one_dir = self.cfg.one_direction;
        // Edge-centric assignment needs arc -> source; build it once (the
        // cost a real topology-driven edge-centric code pays up front).
        let arc_src: Vec<u32> = if self.cfg.edge_centric {
            let mut src = vec![0u32; g.num_arcs()];
            for v in 0..g.num_vertices() as u32 {
                for a in g.arc_range(v) {
                    src[a] = v;
                }
            }
            src
        } else {
            Vec::new()
        };
        loop {
            let _round = ecl_trace::range!(wall: "round");
            self.iterations += 1;
            let live = AtomicBool::new(false);
            let reserve_arc = |v: u32, a: usize| {
                let n = g.arc_dst(a);
                if one_dir && v >= n {
                    return;
                }
                let p = self.find(v);
                let q = self.find(n);
                if p != q {
                    live.store(true, Ordering::Relaxed);
                    let val = pack(g.arc_weight(a), g.arc_edge_id(a));
                    self.reserve(p, val);
                    self.reserve(q, val);
                }
            };
            let select_arc = |v: u32, a: usize| {
                let n = g.arc_dst(a);
                if one_dir && v >= n {
                    return;
                }
                let p = self.find(v);
                let q = self.find(n);
                if p == q {
                    return;
                }
                let id = g.arc_edge_id(a);
                let val = pack(g.arc_weight(a), id);
                if self.min_edge[p as usize].load(Ordering::Acquire) == val
                    || self.min_edge[q as usize].load(Ordering::Acquire) == val
                {
                    self.dsu.union(v, n, self.policy);
                    self.in_mst[id as usize].store(true, Ordering::Relaxed);
                }
            };
            if self.cfg.edge_centric {
                // Edge-centric topology-driven: arcs are the unit of work
                // (fine-grained splitting keeps hubs from serializing).
                (0..g.num_arcs()).into_par_iter().for_each(|a| {
                    reserve_arc(arc_src[a], a);
                });
                if !live.load(Ordering::Relaxed) {
                    break;
                }
                (0..g.num_arcs()).into_par_iter().for_each(|a| {
                    select_arc(arc_src[a], a);
                });
            } else {
                // Vertex-centric: one task per vertex, whole row serial.
                (0..g.num_vertices() as u32)
                    .into_par_iter()
                    .with_min_len(64)
                    .for_each(|v| {
                        for a in g.arc_range(v) {
                            reserve_arc(v, a);
                        }
                    });
                if !live.load(Ordering::Relaxed) {
                    break;
                }
                (0..g.num_vertices() as u32)
                    .into_par_iter()
                    .with_min_len(64)
                    .for_each(|v| {
                        for a in g.arc_range(v) {
                            select_arc(v, a);
                        }
                    });
            }
            // Reset all reservation slots (no worklist to scope the reset).
            self.min_edge
                .par_iter()
                .for_each(|s| s.store(EMPTY, Ordering::Release));
        }
    }

    fn into_result(self) -> (MstResult, usize) {
        let in_mst: Vec<bool> = self
            .in_mst
            .iter()
            .map(|b| b.load(Ordering::Acquire))
            .collect();
        (MstResult::from_bitmap(self.g, in_mst), self.iterations)
    }
}

/// Runs ECL-MST on the CPU with an explicit configuration.
pub fn ecl_mst_cpu_with(g: &CsrGraph, cfg: &OptConfig) -> CpuRun {
    let _run = ecl_trace::range!(wall: "ecl_mst_cpu");
    let mut st = State::new(g, *cfg);
    let mut phases = 1;

    if !cfg.data_driven || !cfg.edge_centric {
        // Topology-driven (and the vertex-centric rung below it) has no
        // worklist to filter, so filtering does not apply.
        let _p = ecl_trace::range!(wall: "topology_driven");
        st.run_topology_driven();
    } else {
        let plan = if cfg.filtering {
            plan_filter(g, cfg.filter_c, cfg.seed)
        } else {
            FilterPlan::SinglePhase
        };
        match plan {
            FilterPlan::SinglePhase => {
                let _p = ecl_trace::range!(wall: "phase1");
                let wl = st.populate();
                st.run_loop(wl);
            }
            FilterPlan::TwoPhase { threshold } => {
                phases = 2;
                let heavy;
                {
                    let _p = ecl_trace::range!(wall: "phase1");
                    let (wl, h) = st.populate_split(threshold);
                    heavy = h;
                    st.run_loop(wl);
                }
                {
                    let _p = ecl_trace::range!(wall: "phase2");
                    let wl = st.populate_phase2_from(&heavy);
                    drop(heavy);
                    st.run_loop(wl);
                }
            }
        }
    }

    let (result, iterations) = st.into_result();
    CpuRun {
        result,
        iterations,
        phases,
    }
}

/// Runs fully-optimized ECL-MST on the CPU.
pub fn ecl_mst_cpu(g: &CsrGraph) -> MstResult {
    ecl_mst_cpu_with(g, &OptConfig::full()).result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::deopt_ladder;
    use crate::serial::serial_kruskal;
    use ecl_graph::generators::*;
    use ecl_graph::GraphBuilder;

    fn check(g: &CsrGraph, cfg: &OptConfig) {
        let expected = serial_kruskal(g);
        let got = ecl_mst_cpu_with(g, cfg);
        assert_eq!(
            got.result.total_weight, expected.total_weight,
            "weight mismatch"
        );
        assert_eq!(
            got.result.num_edges, expected.num_edges,
            "edge count mismatch"
        );
        // Packed-value tie-breaking makes the MSF unique: edge sets match.
        assert_eq!(got.result.in_mst, expected.in_mst, "edge set mismatch");
    }

    #[test]
    fn triangle() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 2);
        b.add_edge(0, 2, 3);
        check(&b.build(), &OptConfig::full());
    }

    #[test]
    fn empty_and_singleton() {
        check(&GraphBuilder::new(0).build(), &OptConfig::full());
        check(&GraphBuilder::new(1).build(), &OptConfig::full());
        check(&GraphBuilder::new(10).build(), &OptConfig::full());
    }

    #[test]
    fn grid_full_config() {
        check(&grid2d(20, 1), &OptConfig::full());
    }

    #[test]
    fn dense_graph_triggers_filtering() {
        let g = copapers(800, 20, 2);
        let run = ecl_mst_cpu_with(&g, &OptConfig::full());
        assert_eq!(run.phases, 2, "dense graph should use two phases");
        check(&g, &OptConfig::full());
    }

    #[test]
    fn sparse_graph_single_phase() {
        let g = road_map(15, 2.5, 3);
        let run = ecl_mst_cpu_with(&g, &OptConfig::full());
        assert_eq!(run.phases, 1);
        check(&g, &OptConfig::full());
    }

    #[test]
    fn msf_on_disconnected_input() {
        let g = rmat(9, 4, 4);
        check(&g, &OptConfig::full());
    }

    #[test]
    fn scale_free_with_hubs() {
        let g = preferential_attachment(1500, 8, 1, 5);
        check(&g, &OptConfig::full());
    }

    #[test]
    fn every_deopt_rung_is_correct() {
        let graphs = [
            grid2d(12, 1),
            rmat(8, 6, 2),
            copapers(300, 12, 3),
            road_map(10, 2.8, 4),
        ];
        for g in &graphs {
            for (name, cfg) in deopt_ladder() {
                let expected = serial_kruskal(g);
                let got = ecl_mst_cpu_with(g, &cfg);
                assert_eq!(
                    got.result.total_weight, expected.total_weight,
                    "rung '{name}' wrong weight"
                );
                assert_eq!(
                    got.result.in_mst, expected.in_mst,
                    "rung '{name}' wrong edge set"
                );
            }
        }
    }

    #[test]
    fn iteration_count_is_logarithmic() {
        let g = grid2d(40, 2);
        let run = ecl_mst_cpu_with(&g, &OptConfig::full());
        // Paper: between 4 and 15 computation-kernel rounds on real inputs;
        // allow generous slack but catch runaway loops.
        assert!(
            run.iterations >= 2 && run.iterations <= 40,
            "{}",
            run.iterations
        );
    }

    #[test]
    fn seeds_change_threshold_not_result() {
        let g = copapers(600, 16, 6);
        let expected = serial_kruskal(&g);
        for seed in 0..8 {
            let got = ecl_mst_cpu_with(&g, &OptConfig::full().with_seed(seed));
            assert_eq!(got.result.in_mst, expected.in_mst, "seed {seed}");
        }
    }

    #[test]
    fn locality_order_off_is_bit_identical() {
        // The pre-pass is order-only: same edge set AND same round count
        // (round structure is order-independent — every round processes the
        // whole worklist).
        for g in [
            copapers(600, 16, 2),
            preferential_attachment(1000, 6, 1, 7),
            rmat(9, 4, 4),
        ] {
            let on = ecl_mst_cpu_with(&g, &OptConfig::full());
            let mut cfg = OptConfig::full();
            cfg.locality_order = false;
            let off = ecl_mst_cpu_with(&g, &cfg);
            assert_eq!(on.result.in_mst, off.result.in_mst, "edge set");
            assert_eq!(on.iterations, off.iterations, "round count");
            assert_eq!(on.phases, off.phases, "phases");
        }
    }

    #[test]
    fn traced_run_matches_untraced_and_records_cpu_hops() {
        // Tracing flips the find path to find_counted and disables the
        // flat-label fast paths — the result must not change, and the CPU
        // backend must now feed the profile's hop histogram.
        let g = copapers(500, 14, 3);
        let plain = ecl_mst_cpu_with(&g, &OptConfig::full());
        let (traced, session) = ecl_trace::with_trace(|| ecl_mst_cpu_with(&g, &OptConfig::full()));
        assert_eq!(traced.result.in_mst, plain.result.in_mst, "edge set");
        assert_eq!(traced.iterations, plain.iterations, "round count");
        let profile = session.profile();
        assert!(profile.hops.calls > 0, "CPU finds must record hops");
    }

    #[test]
    fn adversarial_weight_corners() {
        // Saturated and tied weights through the filter + SWAR paths: the
        // packed (weight, id) tie-break keeps the MSF unique even when every
        // weight is u32::MAX or zero.
        for w in [0u32, 1, u32::MAX - 1, u32::MAX] {
            let mut b = GraphBuilder::new(9);
            for u in 0..9u32 {
                for v in (u + 1)..9 {
                    b.add_edge(u, v, w);
                }
            }
            check(&b.build(), &OptConfig::full());
        }
        // Mixed: half the edges saturated, half zero — exercises both sides
        // of any threshold the sampler can produce.
        let mut b = GraphBuilder::new(16);
        for u in 0..16u32 {
            for v in (u + 1)..16 {
                b.add_edge(u, v, if (u + v) % 2 == 0 { u32::MAX } else { 0 });
            }
        }
        check(&b.build(), &OptConfig::full());
    }

    #[test]
    fn equal_weights_everywhere() {
        let mut b = GraphBuilder::new(6);
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b.add_edge(u, v, 42);
            }
        }
        check(&b.build(), &OptConfig::full());
    }
}
