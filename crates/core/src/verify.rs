//! Solution verification.
//!
//! The paper's artifact "verifies the solution at the end of each run by
//! comparing it to the solution of a serial implementation of Kruskal's
//! algorithm". Because every code in this workspace breaks weight ties by
//! edge id (the packed 64-bit ordering), the MSF is unique, so verification
//! can demand the *exact* edge set — a much stronger check than comparing
//! total weights. [`verify_msf`] additionally re-derives the structural
//! facts (forest, spanning, per-component edge counts) independently.

use crate::result::MstResult;
use crate::serial::serial_kruskal;
use ecl_dsu::SeqDsu;
use ecl_graph::stats::connected_components;
use ecl_graph::CsrGraph;

/// Fully verifies `r` as the unique MSF of `g` (tie-break by edge id).
///
/// ```
/// use ecl_graph::generators::grid2d;
/// let g = grid2d(6, 1);
/// let mst = ecl_mst::ecl_mst_cpu(&g);
/// ecl_mst::verify_msf(&g, &mst).unwrap();
/// ```
///
/// Checks, in order:
/// 1. bitmap length and edge/weight bookkeeping are internally consistent,
/// 2. the selected edges are acyclic (a forest),
/// 3. the forest spans: selected count = |V| − #components,
/// 4. the edge set equals the serial-Kruskal reference exactly.
pub fn verify_msf(g: &CsrGraph, r: &MstResult) -> Result<(), String> {
    if r.in_mst.len() != g.num_edges() {
        return Err(format!(
            "bitmap length {} != edge count {}",
            r.in_mst.len(),
            g.num_edges()
        ));
    }
    let count = r.in_mst.iter().filter(|&&b| b).count();
    if count != r.num_edges {
        return Err(format!("num_edges {} != bitmap count {count}", r.num_edges));
    }
    let weight = g.edge_set_weight(&r.in_mst);
    if weight != r.total_weight {
        return Err(format!(
            "total_weight {} != recomputed {weight}",
            r.total_weight
        ));
    }

    // Forest check: unioning selected edges must never close a cycle.
    let mut dsu = SeqDsu::new(g.num_vertices());
    for e in g.edges() {
        if r.in_mst[e.id as usize] && !dsu.union(e.src, e.dst) {
            return Err(format!("selected edge {} closes a cycle", e.id));
        }
    }

    // Spanning check.
    let ccs = connected_components(g);
    let expected_edges = g.num_vertices() - ccs;
    if count != expected_edges {
        return Err(format!(
            "forest has {count} edges, spanning forest needs {expected_edges} (|V|={}, CCs={ccs})",
            g.num_vertices()
        ));
    }

    // Exact-uniqueness check against the reference implementation.
    let reference = serial_kruskal(g);
    if r.in_mst != reference.in_mst {
        let diff = r
            .in_mst
            .iter()
            .zip(&reference.in_mst)
            .position(|(a, b)| a != b)
            .unwrap();
        return Err(format!(
            "edge set differs from serial Kruskal (first difference at edge id {diff})"
        ));
    }
    Ok(())
}

/// Runs the fully-optimized CPU backend and verifies the result before
/// returning it — the paper's end-of-run verification ("The ECL-MST
/// implementation verifies the solution at the end of each run"), exposed
/// as a convenience for callers that want the same guarantee.
pub fn ecl_mst_cpu_verified(g: &CsrGraph) -> Result<MstResult, String> {
    let r = crate::cpu::ecl_mst_cpu(g);
    verify_msf(g, &r)?;
    Ok(r)
}

/// Simulated-GPU counterpart of [`ecl_mst_cpu_verified`].
pub fn ecl_mst_gpu_verified(
    g: &CsrGraph,
    profile: ecl_gpu_sim::GpuProfile,
) -> Result<MstResult, String> {
    let r = crate::gpu::ecl_mst_gpu(g, profile);
    verify_msf(g, &r)?;
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::ecl_mst_cpu;
    use ecl_graph::generators::{grid2d, rmat};
    use ecl_graph::GraphBuilder;

    #[test]
    fn accepts_correct_solution() {
        let g = grid2d(10, 1);
        let r = ecl_mst_cpu(&g);
        verify_msf(&g, &r).unwrap();
    }

    #[test]
    fn accepts_msf_on_disconnected() {
        let g = rmat(8, 4, 2);
        let r = ecl_mst_cpu(&g);
        verify_msf(&g, &r).unwrap();
    }

    #[test]
    fn rejects_extra_edge() {
        let g = grid2d(6, 3);
        let mut r = ecl_mst_cpu(&g);
        // Adding any non-tree edge creates a cycle.
        let extra = r.in_mst.iter().position(|&b| !b).unwrap();
        r.in_mst[extra] = true;
        r.num_edges += 1;
        r.total_weight += g.edges().find(|e| e.id as usize == extra).unwrap().weight as u64;
        assert!(verify_msf(&g, &r).is_err());
    }

    #[test]
    fn rejects_missing_edge() {
        let g = grid2d(6, 3);
        let mut r = ecl_mst_cpu(&g);
        let first = r.in_mst.iter().position(|&b| b).unwrap();
        r.in_mst[first] = false;
        r.num_edges -= 1;
        r.total_weight -= g.edges().find(|e| e.id as usize == first).unwrap().weight as u64;
        assert!(verify_msf(&g, &r).is_err());
    }

    #[test]
    fn rejects_non_minimal_spanning_tree() {
        // A spanning tree that is not minimal: on a triangle, swap the
        // lightest edge for the heaviest.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 2);
        b.add_edge(0, 2, 3);
        let g = b.build();
        let good = ecl_mst_cpu(&g);
        verify_msf(&g, &good).unwrap();
        // Build the bad tree {2, 3}.
        let mut in_mst = vec![false; 3];
        for e in g.edges().filter(|e| e.weight >= 2) {
            in_mst[e.id as usize] = true;
        }
        let bad = crate::result::MstResult::from_bitmap(&g, in_mst);
        let err = verify_msf(&g, &bad).unwrap_err();
        assert!(err.contains("differs"), "{err}");
    }

    #[test]
    fn rejects_inconsistent_bookkeeping() {
        let g = grid2d(4, 1);
        let mut r = ecl_mst_cpu(&g);
        r.total_weight += 1;
        assert!(verify_msf(&g, &r).unwrap_err().contains("total_weight"));
    }

    #[test]
    fn rejects_wrong_bitmap_length() {
        let g = grid2d(4, 1);
        let mut r = ecl_mst_cpu(&g);
        r.in_mst.push(false);
        assert!(verify_msf(&g, &r).unwrap_err().contains("length"));
    }
}
