//! Optimization toggles and the Table 5 de-optimization ladder.

/// Which of the paper's eight performance optimizations are enabled.
///
/// The default configuration is the fully-optimized ECL-MST. Each field maps
/// to one row of Table 5 / one bar group of Figure 5; the
/// [`deopt_ladder`] function reproduces the paper's *cumulative* removal
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Check with a plain load whether an `atomicMin` could lower the value
    /// before issuing it (removed in "No Atomic Guards").
    pub atomic_guards: bool,
    /// Hybrid parallelization: vertices with degree ≥ 4 are processed by a
    /// whole warp, others by a single thread (removed in "Thread-Based").
    pub hybrid_warp: bool,
    /// Single filtering step for graphs with average degree ≥
    /// [`Self::filter_c`] (removed in "No Filter").
    pub filtering: bool,
    /// Implicit path compression: worklist entries carry the representatives
    /// instead of the original endpoints. When removed ("No Implicit Path
    /// Compression"), endpoints stay raw and finds use explicit GPU
    /// path halving.
    pub implicit_compression: bool,
    /// Process each undirected edge in only one direction (`v < n`);
    /// removed in "Both Edge Directions".
    pub one_direction: bool,
    /// Store worklist entries as 16-byte 4-tuples (AoS) instead of four
    /// separate arrays (removed in "No Tuples").
    pub tuples: bool,
    /// Data-driven: only edges on the worklist are processed. When removed
    /// ("Topology-Driven"), every kernel rescans all graph edges each
    /// iteration.
    pub data_driven: bool,
    /// Edge-centric work assignment (one edge per thread). When removed
    /// ("Vertex-Centric"), each thread owns a vertex and processes all of
    /// its edges.
    pub edge_centric: bool,
    /// Locality pre-pass: group the initial worklist by source-vertex block
    /// (a degree-aware counting sort) so consecutive items touch nearby
    /// parent-array and reservation slots. Order-only — the MSF is unique
    /// under the packed `(weight, id)` tie-break, so any worklist permutation
    /// yields the identical result; this is a CPU cache optimization with no
    /// Table 5 counterpart and it defaults on.
    pub locality_order: bool,
    /// The `c` in the filtering heuristic: aim to process the `c·|V|`
    /// lightest edges in phase 1; no filtering below average degree `c`.
    pub filter_c: u32,
    /// Seed for the 20-edge filter-threshold sample (§5.4 varies this).
    pub seed: u64,
    /// Degree at which the hybrid init kernel hands a vertex to a whole
    /// warp instead of a single thread (the paper's `d(v) < 4` branch).
    pub warp_degree_threshold: usize,
}

impl Default for OptConfig {
    fn default() -> Self {
        Self {
            atomic_guards: true,
            hybrid_warp: true,
            filtering: true,
            implicit_compression: true,
            one_direction: true,
            tuples: true,
            data_driven: true,
            edge_centric: true,
            locality_order: true,
            filter_c: 4,
            seed: 0x1234_5678,
            warp_degree_threshold: 4,
        }
    }
}

impl OptConfig {
    /// Fully-optimized ECL-MST.
    pub fn full() -> Self {
        Self::default()
    }

    /// Same configuration with a different filter-sampling seed (Fig. 6).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The cumulative de-optimization ladder of Table 5 / Figure 5: each step
/// removes one more optimization than the previous, in the paper's order.
pub fn deopt_ladder() -> Vec<(&'static str, OptConfig)> {
    let mut cfg = OptConfig::full();
    let mut ladder = vec![("ECL-MST", cfg)];
    cfg.atomic_guards = false;
    ladder.push(("No Atomic Guards", cfg));
    cfg.hybrid_warp = false;
    ladder.push(("Thread-Based", cfg));
    cfg.filtering = false;
    ladder.push(("No Filter", cfg));
    cfg.implicit_compression = false;
    ladder.push(("No Impl. Path Compr.", cfg));
    cfg.one_direction = false;
    ladder.push(("Both Edge Dir.", cfg));
    cfg.tuples = false;
    ladder.push(("No Tuples", cfg));
    cfg.data_driven = false;
    ladder.push(("Topology-Driven", cfg));
    cfg.edge_centric = false;
    ladder.push(("Vertex-Centric", cfg));
    ladder
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_optimized() {
        let c = OptConfig::default();
        assert!(c.atomic_guards && c.hybrid_warp && c.filtering);
        assert!(c.implicit_compression && c.one_direction && c.tuples);
        assert!(c.data_driven && c.edge_centric && c.locality_order);
        assert_eq!(c.filter_c, 4);
    }

    #[test]
    fn ladder_has_nine_rungs_matching_table5() {
        let l = deopt_ladder();
        assert_eq!(l.len(), 9);
        assert_eq!(l[0].0, "ECL-MST");
        assert_eq!(l[8].0, "Vertex-Centric");
    }

    #[test]
    fn ladder_is_cumulative() {
        let l = deopt_ladder();
        // Each step keeps earlier removals: the last rung has everything off.
        let last = l[8].1;
        assert!(!last.atomic_guards && !last.hybrid_warp && !last.filtering);
        assert!(!last.implicit_compression && !last.one_direction && !last.tuples);
        assert!(!last.data_driven && !last.edge_centric);
        // And intermediate steps retain prior removals.
        assert!(!l[3].1.atomic_guards);
        assert!(!l[3].1.hybrid_warp);
        assert!(!l[3].1.filtering);
        assert!(l[3].1.implicit_compression);
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = OptConfig::full();
        let b = a.with_seed(99);
        assert_eq!(b.seed, 99);
        assert_eq!(a.atomic_guards, b.atomic_guards);
        assert_eq!(a.filter_c, b.filter_c);
    }
}
