//! The filtering heuristic (§3.2, §5.4).
//!
//! For graphs with average degree ≥ `c`, ECL-MST runs two phases: phase 1
//! processes only edges lighter than a threshold, phase 2 filters the rest
//! through the partially built forest. The threshold is estimated from a
//! random sample of just **20 edge weights**: it aims at the weight of the
//! `c·|V|`-th lightest edge so that phase 1 sees most of the eventual tree
//! (an MST has `|V| − 1` edges, hence values of `c` between 2 and 4 work
//! well; the paper uses `c = 4` and evaluates the estimate's accuracy
//! against a target of 3·|V| in Figure 7).

use ecl_graph::{CsrGraph, Weight};
use rand::{Rng, SeedableRng};

/// Number of edge weights sampled, per the paper.
pub const SAMPLE_SIZE: usize = 20;

/// Decision produced by [`plan_filter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterPlan {
    /// Average degree below `c`: single phase over all edges.
    SinglePhase,
    /// Two phases split at this weight: phase 1 takes `weight < threshold`,
    /// phase 2 takes the rest.
    TwoPhase {
        /// The estimated weight of the `c·|V|`-th lightest edge.
        threshold: Weight,
    },
}

/// Samples 20 edge weights and estimates the phase-1 threshold.
///
/// Returns [`FilterPlan::SinglePhase`] when the graph's average degree is
/// below `c` (the paper: "no filtering occurs for graphs with an average
/// degree below 4") or when the quantile estimate covers every edge anyway.
pub fn plan_filter(g: &CsrGraph, c: u32, seed: u64) -> FilterPlan {
    // Host-side work: traced on the wall clock (the GPU path calls this
    // between device phases, where the simulated clock stands still).
    let _r = ecl_trace::range!(wall: "plan_filter");
    let n = g.num_vertices();
    let m = g.num_edges();
    // Guard the sample draw directly on the arc count (the range sampled
    // below): vertex-only and empty graphs must never reach `gen_range`.
    // `c == 0` would make the quantile target meaningless, so it also skips.
    if g.num_arcs() == 0 || c == 0 || g.average_degree() < c as f64 {
        return FilterPlan::SinglePhase;
    }
    // Target quantile: the c·|V| lightest of the m undirected edges.
    let q = (c as f64 * n as f64) / m as f64;
    if q >= 1.0 {
        return FilterPlan::SinglePhase;
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // 20 draws land in a stack array read straight off the CSR weight slice
    // — no heap allocation or per-draw accessor indirection on this path,
    // which runs once per solve.
    let wts = g.arc_weights();
    let mut samples = [0 as Weight; SAMPLE_SIZE];
    for s in samples.iter_mut() {
        // Sample an undirected edge uniformly by drawing an arc: every
        // edge has exactly two arcs, so arc-uniform = edge-uniform.
        *s = wts[rng.gen_range(0..wts.len())];
    }
    samples.sort_unstable();
    // The ceil(q·20)-th smallest sample estimates the q-quantile.
    let idx = ((q * SAMPLE_SIZE as f64).ceil() as usize).clamp(1, SAMPLE_SIZE) - 1;
    let threshold = samples[idx];
    // Degenerate estimates fall back to a single phase. When every sample
    // ties (uniform-weight graphs), phase 1's strict `weight < threshold`
    // predicate selects nothing and the two-phase path silently does double
    // work — one full populate pass that admits zero edges plus a second
    // pass over everything. A zero threshold selects nothing for the same
    // reason (weights are unsigned).
    if threshold == 0 || samples[0] == samples[SAMPLE_SIZE - 1] {
        return FilterPlan::SinglePhase;
    }
    FilterPlan::TwoPhase { threshold }
}

/// Measures how far the sampled threshold lands from the `target·|V|`
/// lightest edges (Figure 7 reports the percentage distance from 3·|V|).
///
/// Returns `(edges_below_threshold, target_edges, percent_difference)`, or
/// `None` when the graph does not filter.
pub fn threshold_accuracy(
    g: &CsrGraph,
    c: u32,
    seed: u64,
    target_factor: u32,
) -> Option<(usize, usize, f64)> {
    match plan_filter(g, c, seed) {
        FilterPlan::SinglePhase => None,
        FilterPlan::TwoPhase { threshold } => {
            // Chunked scan over the raw arc weights; every edge contributes
            // exactly two equal-weight arcs, so halving the arc count gives
            // the edge count without materializing an edge iterator.
            let below = ecl_graph::simd::count_lt(g.arc_weights(), threshold) / 2;
            let target = (target_factor as usize) * g.num_vertices();
            if target == 0 {
                // A zero target (target_factor == 0) has no meaningful
                // percentage distance — avoid the division by zero.
                return None;
            }
            let pct = 100.0 * (below as f64 - target as f64) / target as f64;
            Some((below, target, pct))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::generators::{copapers, grid2d, uniform_random};

    #[test]
    fn sparse_graphs_skip_filtering() {
        let g = grid2d(30, 1); // avg degree < 4
        assert_eq!(plan_filter(&g, 4, 1), FilterPlan::SinglePhase);
    }

    #[test]
    fn dense_graphs_filter() {
        let g = copapers(2000, 30, 2); // avg degree >> 4
        match plan_filter(&g, 4, 1) {
            FilterPlan::TwoPhase { threshold } => assert!(threshold > 0),
            other => panic!("expected TwoPhase, got {other:?}"),
        }
    }

    #[test]
    fn threshold_is_deterministic_per_seed() {
        let g = copapers(1000, 20, 3);
        assert_eq!(plan_filter(&g, 4, 7), plan_filter(&g, 4, 7));
    }

    #[test]
    fn different_seeds_can_differ() {
        let g = copapers(1000, 20, 3);
        let distinct: std::collections::HashSet<_> = (0..20)
            .map(|s| match plan_filter(&g, 4, s) {
                FilterPlan::TwoPhase { threshold } => threshold,
                _ => 0,
            })
            .collect();
        assert!(
            distinct.len() > 1,
            "20 seeds should produce varied thresholds"
        );
    }

    #[test]
    fn quantile_estimate_is_sane() {
        // On a large uniform-random graph the 20-sample estimate should land
        // within a factor of ~4 of the target count (Fig. 7 shows rarely
        // more than 2x off; leave slack for sampling noise).
        let g = uniform_random(5000, 16.0, 5);
        let (below, target, _) = threshold_accuracy(&g, 4, 1, 4).unwrap();
        assert!(below > target / 5, "below={below}, target={target}");
        assert!(below < target * 5, "below={below}, target={target}");
    }

    #[test]
    fn accuracy_none_when_not_filtering() {
        let g = grid2d(20, 1);
        assert!(threshold_accuracy(&g, 4, 1, 3).is_none());
    }

    #[test]
    fn uniform_weights_fall_back_to_single_phase() {
        // All weights equal: every sample ties, so phase 1's strict
        // `weight < threshold` would select zero edges. The plan must fall
        // back to SinglePhase instead of silently doing double work.
        let mut b = ecl_graph::GraphBuilder::new(12);
        for u in 0..12u32 {
            for v in (u + 1)..12 {
                b.add_edge(u, v, 42);
            }
        }
        let g = b.build();
        assert!(g.average_degree() >= 4.0, "test graph must be dense");
        assert_eq!(plan_filter(&g, 4, 1), FilterPlan::SinglePhase);
    }

    #[test]
    fn zero_weights_fall_back_to_single_phase() {
        // A zero threshold can never admit an edge in phase 1.
        let mut b = ecl_graph::GraphBuilder::new(10);
        for u in 0..10u32 {
            for v in (u + 1)..10 {
                b.add_edge(u, v, 0);
            }
        }
        assert_eq!(plan_filter(&b.build(), 4, 3), FilterPlan::SinglePhase);
    }

    #[test]
    fn vertex_only_graph_never_samples() {
        // num_arcs() == 0 with vertices present: must not reach gen_range.
        let g = ecl_graph::GraphBuilder::new(50).build();
        assert_eq!(plan_filter(&g, 4, 1), FilterPlan::SinglePhase);
        assert!(threshold_accuracy(&g, 4, 1, 3).is_none());
    }

    #[test]
    fn zero_c_is_single_phase() {
        let g = copapers(500, 16, 2);
        assert_eq!(plan_filter(&g, 0, 1), FilterPlan::SinglePhase);
    }

    #[test]
    fn zero_target_factor_yields_none() {
        // target_factor == 0 makes the percentage distance a division by
        // zero; the accuracy probe must decline instead of returning ±inf.
        let g = copapers(2000, 30, 2);
        assert!(threshold_accuracy(&g, 4, 1, 0).is_none());
    }

    #[test]
    fn single_phase_when_quantile_covers_everything() {
        // avg degree exactly c=4 on a graph where c*n >= m.
        let g = uniform_random(500, 5.0, 2);
        // c*n = 2000 >= m = 1250: quantile >= 1 -> single phase.
        assert_eq!(plan_filter(&g, 4, 1), FilterPlan::SinglePhase);
    }
}
