//! GPU-simulator ECL-MST backend.
//!
//! A faithful translation of the CUDA kernels in Algs. 1–2 onto the
//! [`ecl_gpu_sim`] device: the heavy **init** kernel populates the worklist
//! with hybrid warp/thread parallelism (launched twice when filtering),
//! **kernel1** performs cycle checks, implicit path compression and 64-bit
//! `atomicMin` reservations, **kernel2** includes reserved edges and unions
//! their sets with `atomicCAS`, **kernel3** clears the touched reservation
//! words. The host reads the worklist size between iterations — the
//! `cudaMemcpy`-inside-`while` pattern §2 discusses — and every kernel
//! launch pays the profile's launch overhead.
//!
//! All eight [`OptConfig`] toggles change the *kernels themselves* (not just
//! cost-model constants), so the Table 5 ladder re-runs real alternative
//! implementations.

use crate::config::OptConfig;
use crate::filter::{plan_filter, FilterPlan};
use crate::result::{pack, MstResult, EMPTY};
use crate::upload::{derived_const, DeviceCsr};
use ecl_gpu_sim::{
    sanitize, with_scratch, BufU32, BufU64, Device, DeviceArena, GpuProfile, KernelRecord, TaskCtx,
    WarpCtx, WARP_SIZE,
};
use ecl_graph::{CsrGraph, Weight};

/// Result of a simulated GPU run, with the simulated clock readings.
#[derive(Debug)]
pub struct GpuRun {
    /// The computed MST/MSF.
    pub result: MstResult,
    /// Simulated seconds spent in kernels (the paper's baseline "ECL-MST"
    /// column excludes transfers).
    pub kernel_seconds: f64,
    /// Simulated seconds for graph H2D + result D2H + loop-control reads
    /// (add to kernel time for the "ECL-MST memcpy" column).
    pub memcpy_seconds: f64,
    /// Kernel-1 executions across phases (paper: 4–15 on its inputs).
    pub iterations: usize,
    /// 1 without filtering, 2 with.
    pub phases: usize,
    /// Per-launch log for the §5.1 kernel-time breakdown.
    pub records: Vec<KernelRecord>,
}

/// Sentinel marking an empty reservation slot.
const FREE: u64 = EMPTY;

struct GpuState<'g> {
    g: &'g CsrGraph,
    cfg: OptConfig,
    // Graph arrays (device-resident CSR, cached per graph across runs).
    csr: DeviceCsr,
    // Algorithm state (arena-pooled; every word is written by the setup /
    // populate kernels before any kernel reads it, so the buffers are
    // acquired uninitialized like a real `cudaMalloc`).
    parent: BufU32,
    min_edge: BufU64,
    in_mst: BufU32,
    // Double-buffered worklists (AoS: stride-4 u32; SoA: 4 arrays).
    wl: [WlBuf; 2],
    wl_size: BufU32,
    iterations: usize,
}

/// Worklist storage honoring the tuples toggle.
struct WlBuf {
    aos: Option<BufU32>,
    soa: Option<[BufU32; 4]>,
}

impl WlBuf {
    /// Acquires worklist storage from the arena. Contents start
    /// unspecified: slots are always written (populate / kernel1) before
    /// they are read, and only up to the size counter.
    fn new(arena: &mut DeviceArena, cap: usize, tuples: bool) -> Self {
        if tuples {
            Self {
                aos: Some(arena.acquire_u32_uninit(4 * cap)),
                soa: None,
            }
        } else {
            Self {
                aos: None,
                soa: Some([
                    arena.acquire_u32_uninit(cap),
                    arena.acquire_u32_uninit(cap),
                    arena.acquire_u32_uninit(cap),
                    arena.acquire_u32_uninit(cap),
                ]),
            }
        }
    }

    /// Returns the storage to the arena.
    fn release(self, arena: &mut DeviceArena) {
        if let Some(b) = self.aos {
            arena.release_u32(b);
        }
        if let Some(bufs) = self.soa {
            for b in bufs {
                arena.release_u32(b);
            }
        }
    }

    /// Metered read of entry `i` — one 16-byte vectorized access for AoS,
    /// four scalar accesses for SoA (the "No Tuples" penalty).
    #[inline]
    fn read(&self, ctx: &mut TaskCtx, i: usize) -> [u32; 4] {
        match (&self.aos, &self.soa) {
            (Some(b), _) => b.ld4(ctx, 4 * i),
            (_, Some(c)) => [
                c[0].ld(ctx, i),
                c[1].ld(ctx, i),
                c[2].ld(ctx, i),
                c[3].ld(ctx, i),
            ],
            _ => unreachable!(),
        }
    }

    /// Metered write of entry `i`.
    #[inline]
    fn write(&self, ctx: &mut TaskCtx, i: usize, item: [u32; 4]) {
        match (&self.aos, &self.soa) {
            (Some(b), _) => b.st4(ctx, 4 * i, item),
            (_, Some(c)) => {
                for k in 0..4 {
                    c[k].st(ctx, i, item[k]);
                }
            }
            _ => unreachable!(),
        }
    }
}

impl<'g> GpuState<'g> {
    fn new(g: &'g CsrGraph, cfg: OptConfig) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let cap = if cfg.one_direction { m } else { 2 * m }.max(1);
        with_scratch(|s| {
            let csr = DeviceCsr::get_with(s, g);
            let a = &mut s.arena;
            let st = Self {
                g,
                cfg,
                csr,
                parent: a.acquire_u32_uninit(n),
                min_edge: a.acquire_u64_uninit(n.max(1)),
                in_mst: a.acquire_u32_uninit(m.max(1)),
                wl: [
                    WlBuf::new(a, cap, cfg.tuples),
                    WlBuf::new(a, cap, cfg.tuples),
                ],
                wl_size: a.acquire_u32_uninit(2),
                iterations: 0,
            };
            sanitize::label(&st.parent, "parent");
            sanitize::label(&st.min_edge, "min_edge");
            sanitize::label(&st.in_mst, "in_mst");
            sanitize::label(&st.wl_size, "wl_size");
            st
        })
    }

    /// Returns every pooled buffer to the arena (the cached CSR stays
    /// resident for the next run on this graph).
    fn release(self) {
        with_scratch(|s| {
            let a = &mut s.arena;
            a.release_u32(self.parent);
            a.release_u64(self.min_edge);
            a.release_u32(self.in_mst);
            let [w0, w1] = self.wl;
            w0.release(a);
            w1.release(a);
            a.release_u32(self.wl_size);
        });
    }

    /// Device-side `find`: each parent hop is a dependent gather. With
    /// implicit compression the structure is never written; the de-optimized
    /// variant path-halves as it walks (extra scattered stores).
    ///
    /// The chain length is kept in a register and reported to the tracer's
    /// hop histogram at the end — one thread-local read per call when
    /// tracing is off, nothing on the metered counters either way.
    #[inline]
    fn find(&self, ctx: &mut TaskCtx, mut x: u32) -> u32 {
        let mut hops = 0u32;
        let root = if self.cfg.implicit_compression {
            loop {
                let p = self.parent.ld_gather(ctx, x as usize);
                if p == x {
                    break x;
                }
                hops += 1;
                x = p;
            }
        } else {
            loop {
                let p = self.parent.ld_gather(ctx, x as usize);
                if p == x {
                    break x;
                }
                hops += 1;
                let gp = self.parent.ld_gather(ctx, p as usize);
                if gp != p {
                    self.parent.st_scatter(ctx, x as usize, gp);
                }
                x = gp;
            }
        };
        ecl_trace::record_find_hops(hops);
        root
    }

    /// Device-side lock-free union (Line 30: the `atomicCAS`).
    fn union(&self, ctx: &mut TaskCtx, x: u32, y: u32) -> bool {
        let mut rx = self.find(ctx, x);
        let mut ry = self.find(ctx, y);
        loop {
            if rx == ry {
                return false;
            }
            let (lo, hi) = (rx.min(ry), rx.max(ry));
            match self.parent.atomic_cas(ctx, lo as usize, lo, hi) {
                Ok(_) => return true,
                Err(_) => {
                    rx = self.find(ctx, lo);
                    ry = self.find(ctx, hi);
                }
            }
        }
    }

    /// Guarded 64-bit atomicMin reservation (Lines 19–21). The guard is a
    /// plain (L2-hot) load that skips the atomic when it cannot lower the
    /// value — the paper's "No Atomic Guards" ablation removes it.
    #[inline]
    fn reserve(&self, ctx: &mut TaskCtx, slot: u32, val: u64) {
        if self.cfg.atomic_guards {
            let cur = self.min_edge.ld_cached(ctx, slot as usize);
            if cur <= val {
                return;
            }
        }
        self.min_edge.atomic_min(ctx, slot as usize, val);
    }

    /// Alg. 1 state initialization: parents to self, reservations to ∞,
    /// MST flags to false.
    fn setup_kernel(&mut self, dev: &mut Device) {
        let n = self.g.num_vertices();
        let m = self.g.num_edges();
        let parent = &self.parent;
        let min_edge = &self.min_edge;
        let in_mst = &self.in_mst;
        let _ = dev.launch("setup", n.max(m), |i, ctx| {
            if i < n {
                parent.st(ctx, i, i as u32);
                min_edge.st(ctx, i, FREE);
            }
            if i < m {
                in_mst.st(ctx, i, 0);
            }
        });
    }

    /// The heavy **init** kernel (Lines 1–11 + Alg. 1's graph scan): builds
    /// the worklist from the CSR arrays with hybrid warp/thread
    /// parallelization. `phase2` inverts the threshold condition and maps
    /// endpoints through `set()` (the filtering step).
    fn populate_kernel(
        &mut self,
        dev: &mut Device,
        threshold: Option<Weight>,
        phase2: bool,
        which: usize,
    ) {
        let n = self.g.num_vertices();
        self.wl_size.host_write(which, 0);
        let st = &*self;
        let _ = dev.launch_warps("init", n, |v, w| {
            // Consecutive tasks load consecutive row offsets: coalesced.
            let lo = st.csr.row_starts.ld(&mut w.serial, v) as usize;
            let hi = st.csr.row_starts.ld(&mut w.serial, v + 1) as usize;
            let deg = hi - lo;
            if deg == 0 {
                return;
            }
            let warp_mode = st.cfg.hybrid_warp && deg >= st.cfg.warp_degree_threshold;
            if warp_mode {
                st.populate_vertex_warp(w, v as u32, lo, hi, threshold, phase2, which);
            } else {
                st.populate_vertex_thread(
                    &mut w.serial,
                    v as u32,
                    lo,
                    hi,
                    threshold,
                    phase2,
                    which,
                );
            }
        });
    }

    #[inline]
    fn admits(&self, w: Weight, threshold: Option<Weight>, phase2: bool) -> bool {
        match (threshold, phase2) {
            (None, _) => true,
            (Some(t), false) => w < t,
            (Some(t), true) => w >= t,
        }
    }

    /// Warp-granularity population of one vertex: lanes stride the
    /// adjacency in coalesced 32-wide rounds, a ballot aggregates the
    /// admitted lanes, and the leader allocates all slots with a single
    /// `atomicAdd`.
    // The argument list mirrors the CUDA kernel's parameter list 1:1.
    #[allow(clippy::too_many_arguments)]
    fn populate_vertex_warp(
        &self,
        w: &mut WarpCtx,
        v: u32,
        lo: usize,
        hi: usize,
        threshold: Option<Weight>,
        phase2: bool,
        which: usize,
    ) {
        // Per-round lane registers: fixed-size, no heap traffic in the hot
        // loop (the spans below borrow device memory directly).
        let mut lane_item: [Option<(u32, u32)>; WARP_SIZE] = [None; WARP_SIZE];
        for (start, len) in w.rounds(hi - lo) {
            let base = lo + start;
            let ctx = &mut w.parallel;
            let dsts = self.csr.adjacency.ld_span(ctx, base, len);
            let weights = self.csr.arc_weights.ld_span(ctx, base, len);
            // Each lane evaluates its full predicate (direction, threshold,
            // and in phase 2 the representative check that performs the
            // filtering) so the ballot mask counts exactly the writes.
            for k in 0..len {
                let d = dsts[k];
                lane_item[k] = if (self.cfg.one_direction && v >= d)
                    || !self.admits(weights[k], threshold, phase2)
                {
                    None
                } else if phase2 {
                    let a = self.find(ctx, v);
                    let b = self.find(ctx, d);
                    (a != b).then_some((a, b))
                } else {
                    Some((v, d))
                };
            }
            let mask = w.ballot(lane_item.iter().take(len).map(Option::is_some));
            if mask == 0 {
                continue;
            }
            let ctx = &mut w.parallel;
            let count = mask.count_ones();
            // Lane-parallel id loads for the round's admitted lanes.
            let ids = self.csr.arc_edge_ids.ld_span(ctx, base, len);
            // Warp-aggregated slot allocation: one atomic for the round.
            let mut slot = self.wl_size.atomic_add(ctx, which, count) as usize;
            for k in 0..len {
                if let Some((a, b)) = lane_item[k] {
                    self.wl[which].write(ctx, slot, [a, b, weights[k], ids[k]]);
                    slot += 1;
                }
            }
        }
    }

    /// Thread-granularity population: one lane walks the whole row, paying
    /// a sector fetch per 8 words and one `atomicAdd` per admitted edge.
    #[allow(clippy::too_many_arguments)]
    fn populate_vertex_thread(
        &self,
        ctx: &mut TaskCtx,
        v: u32,
        lo: usize,
        hi: usize,
        threshold: Option<Weight>,
        phase2: bool,
        which: usize,
    ) {
        for a in lo..hi {
            let d = self.csr.adjacency.ld_row(ctx, a, lo);
            if self.cfg.one_direction && v >= d {
                continue;
            }
            let wgt = self.csr.arc_weights.ld_row(ctx, a, lo);
            if !self.admits(wgt, threshold, phase2) {
                continue;
            }
            let id = self.csr.arc_edge_ids.ld_row(ctx, a, lo);
            let (mut x, mut y) = (v, d);
            if phase2 {
                x = self.find(ctx, x);
                y = self.find(ctx, y);
                if x == y {
                    continue;
                }
            }
            let slot = self.wl_size.atomic_add_aggregated(ctx, which, 1) as usize;
            self.wl[which].write(ctx, slot, [x, y, wgt, id]);
        }
    }

    /// **Kernel 1** (Lines 14–23): cycle check, implicit path compression
    /// into the next worklist, deterministic reservations.
    fn kernel1(&mut self, dev: &mut Device, src: usize, dst: usize, src_len: usize) {
        self.iterations += 1;
        self.wl_size.host_write(dst, 0);
        let st = &*self;
        let _ = dev.launch("kernel1", src_len, |i, ctx| {
            let [v, n, wgt, id] = st.wl[src].read(ctx, i);
            let p = st.find(ctx, v);
            let q = st.find(ctx, n);
            if p == q {
                return; // discard: would close a cycle
            }
            let slot = st.wl_size.atomic_add_aggregated(ctx, dst, 1) as usize;
            let item = if st.cfg.implicit_compression {
                [p, q, wgt, id] // implicit path compression
            } else {
                [v, n, wgt, id]
            };
            st.wl[dst].write(ctx, slot, item);
            let val = pack(wgt, id);
            st.reserve(ctx, p, val);
            st.reserve(ctx, q, val);
        });
    }

    /// **Kernel 2** (Lines 27–33): reserved edges join the MST; their sets
    /// are merged with `atomicCAS`.
    fn kernel2(&mut self, dev: &mut Device, which: usize, len: usize) {
        let st = &*self;
        let _ = dev.launch("kernel2", len, |i, ctx| {
            let [v, n, wgt, id] = st.wl[which].read(ctx, i);
            let (p, q) = if st.cfg.implicit_compression {
                (v, n)
            } else {
                (st.find(ctx, v), st.find(ctx, n))
            };
            let val = pack(wgt, id);
            if st.min_edge.ld_gather(ctx, p as usize) == val
                || st.min_edge.ld_gather(ctx, q as usize) == val
            {
                st.union(ctx, v, n);
                st.in_mst.st_scatter(ctx, id as usize, 1);
            }
        });
    }

    /// **Kernel 3** (Lines 34–37): reset the touched reservation words.
    fn kernel3(&mut self, dev: &mut Device, which: usize, len: usize) {
        let st = &*self;
        let _ = dev.launch("kernel3", len, |i, ctx| {
            let [v, n, _, _] = st.wl[which].read(ctx, i);
            let (p, q) = if st.cfg.implicit_compression {
                (v, n)
            } else {
                (st.find(ctx, v), st.find(ctx, n))
            };
            st.min_edge.st_scatter(ctx, p as usize, FREE);
            st.min_edge.st_scatter(ctx, q as usize, FREE);
        });
    }

    /// Data-driven main loop over one phase (Lines 12–39).
    fn run_loop(&mut self, dev: &mut Device) {
        let mut src = 0usize;
        // Host reads the freshly populated worklist size (loop condition).
        dev.sync_read();
        let mut len = self.wl_size.host_read(src) as usize;
        while len > 0 {
            let _round = ecl_trace::range!(sim: "round");
            ecl_trace::attach("worklist_in", len as f64);
            let dst = 1 - src;
            self.kernel1(dev, src, dst, len);
            dev.sync_read(); // while-loop condition via cudaMemcpy
            let next = self.wl_size.host_read(dst) as usize;
            ecl_trace::attach("worklist_out", next as f64);
            if next == 0 {
                break;
            }
            self.kernel2(dev, dst, next);
            self.kernel3(dev, dst, next);
            src = dst;
            len = next;
        }
    }

    /// Topology-driven variant: every iteration rescans all edges.
    fn run_topology_driven(&mut self, dev: &mut Device) {
        let n = self.g.num_vertices();
        // Edge-centric assignment needs arc → source; built at most once
        // per graph (cached upload). The *cost* of building it is still
        // metered per run by the launch below, as a real topology-driven
        // code pays it every time.
        let arc_src = derived_const(self.g, "core/arc_src", || {
            let mut src = vec![0u32; self.g.num_arcs()];
            for v in 0..n as u32 {
                for a in self.g.arc_range(v) {
                    src[a] = v;
                }
            }
            src
        });
        {
            let rs = &self.csr.row_starts;
            let _ = dev.launch("build_arc_src", n, |v, ctx| {
                let lo = rs.ld(ctx, v) as usize;
                let hi = rs.ld(ctx, v + 1) as usize;
                ctx.charge_coalesced(4 * (hi - lo) as u64);
            });
        }
        let live = with_scratch(|s| s.arena.acquire_u32_uninit(1));
        sanitize::label(&live, "live");
        loop {
            let _round = ecl_trace::range!(sim: "round");
            self.iterations += 1;
            live.host_write(0, 0);
            let st = &*self;
            let reserve_body = |v: u32, a: usize, ctx: &mut TaskCtx| {
                let d = st.csr.adjacency.ld(ctx, a);
                if st.cfg.one_direction && v >= d {
                    return;
                }
                let p = st.find(ctx, v);
                let q = st.find(ctx, d);
                if p != q {
                    live.st(ctx, 0, 1);
                    let val = pack(
                        st.csr.arc_weights.ld(ctx, a),
                        st.csr.arc_edge_ids.ld(ctx, a),
                    );
                    st.reserve(ctx, p, val);
                    st.reserve(ctx, q, val);
                }
            };
            let select_body = |v: u32, a: usize, ctx: &mut TaskCtx| {
                let d = st.csr.adjacency.ld(ctx, a);
                if st.cfg.one_direction && v >= d {
                    return;
                }
                let p = st.find(ctx, v);
                let q = st.find(ctx, d);
                if p == q {
                    return;
                }
                let id = st.csr.arc_edge_ids.ld(ctx, a);
                let val = pack(st.csr.arc_weights.ld(ctx, a), id);
                if st.min_edge.ld_gather(ctx, p as usize) == val
                    || st.min_edge.ld_gather(ctx, q as usize) == val
                {
                    st.union(ctx, v, d);
                    st.in_mst.st_scatter(ctx, id as usize, 1);
                }
            };
            if self.cfg.edge_centric {
                let _ = dev.launch("kernel1", self.g.num_arcs(), |a, ctx| {
                    let v = arc_src.ld(ctx, a);
                    reserve_body(v, a, ctx);
                });
            } else {
                let rs = &self.csr.row_starts;
                let _ = dev.launch("kernel1", n, |v, ctx| {
                    let lo = rs.ld(ctx, v) as usize;
                    let hi = rs.ld(ctx, v + 1) as usize;
                    for a in lo..hi {
                        reserve_body(v as u32, a, ctx);
                    }
                });
            }
            dev.sync_read();
            if live.host_read(0) == 0 {
                break;
            }
            if self.cfg.edge_centric {
                let _ = dev.launch("kernel2", self.g.num_arcs(), |a, ctx| {
                    let v = arc_src.ld(ctx, a);
                    select_body(v, a, ctx);
                });
            } else {
                let rs = &self.csr.row_starts;
                let _ = dev.launch("kernel2", n, |v, ctx| {
                    let lo = rs.ld(ctx, v) as usize;
                    let hi = rs.ld(ctx, v + 1) as usize;
                    for a in lo..hi {
                        select_body(v as u32, a, ctx);
                    }
                });
            }
            let min_edge = &self.min_edge;
            let _ = dev.launch("kernel3", n, |v, ctx| {
                min_edge.st(ctx, v, FREE);
            });
        }
        with_scratch(|s| s.arena.release_u32(live));
    }

    fn graph_bytes(&self) -> u64 {
        self.csr.size_bytes()
    }
}

/// Runs ECL-MST on a simulated GPU with an explicit configuration.
pub fn ecl_mst_gpu_with(g: &CsrGraph, cfg: &OptConfig, profile: GpuProfile) -> GpuRun {
    let mut dev = Device::new(profile);
    run_on(&mut dev, g, cfg)
}

/// Runs ECL-MST with the simulator forced into sequential (single-lane)
/// execution — deterministic task order regardless of the host thread pool,
/// useful for micro-benchmarks and counter comparisons.
pub fn ecl_mst_gpu_sequential(g: &CsrGraph, cfg: &OptConfig, profile: GpuProfile) -> GpuRun {
    let mut dev = Device::new(profile);
    dev.set_sequential(true);
    run_on(&mut dev, g, cfg)
}

/// The full Alg. 1–2 driver on an existing device.
fn run_on(dev: &mut Device, g: &CsrGraph, cfg: &OptConfig) -> GpuRun {
    let _run = ecl_trace::range!(sim: "ecl_mst_gpu");
    let mut st = GpuState::new(g, *cfg);
    let mut phases = 1;

    // Graph upload (reported separately, like the paper's memcpy column).
    dev.memcpy_h2d(st.graph_bytes());

    st.setup_kernel(dev);
    if !cfg.data_driven || !cfg.edge_centric {
        let _p = ecl_trace::range!(sim: "topology_driven");
        st.run_topology_driven(dev);
    } else {
        let plan = if cfg.filtering {
            plan_filter(g, cfg.filter_c, cfg.seed)
        } else {
            FilterPlan::SinglePhase
        };
        match plan {
            FilterPlan::SinglePhase => {
                let _p = ecl_trace::range!(sim: "phase1");
                st.populate_kernel(dev, None, false, 0);
                st.run_loop(dev);
            }
            FilterPlan::TwoPhase { threshold } => {
                phases = 2;
                {
                    let _p = ecl_trace::range!(sim: "phase1");
                    st.populate_kernel(dev, Some(threshold), false, 0);
                    st.run_loop(dev);
                }
                {
                    let _p = ecl_trace::range!(sim: "phase2");
                    st.populate_kernel(dev, Some(threshold), true, 0);
                    st.run_loop(dev);
                }
            }
        }
    }

    // Result download.
    dev.memcpy_d2h(st.in_mst.size_bytes());

    // `in_mst` is allocated with a minimum length of 1; trim to the real
    // edge count for edgeless graphs.
    let in_mst: Vec<bool> = st
        .in_mst
        .to_vec()
        .into_iter()
        .take(g.num_edges())
        .map(|x| x != 0)
        .collect();
    let iterations = st.iterations;
    st.release();
    GpuRun {
        result: MstResult::from_bitmap(g, in_mst),
        kernel_seconds: dev.kernel_seconds(),
        memcpy_seconds: dev.memcpy_seconds(),
        iterations,
        phases,
        records: dev.records().to_vec(),
    }
}

/// Runs fully-optimized ECL-MST on a simulated GPU.
pub fn ecl_mst_gpu(g: &CsrGraph, profile: GpuProfile) -> MstResult {
    ecl_mst_gpu_with(g, &OptConfig::full(), profile).result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::deopt_ladder;
    use crate::serial::serial_kruskal;
    use ecl_graph::generators::*;
    use ecl_graph::GraphBuilder;

    fn check(g: &CsrGraph, cfg: &OptConfig) -> GpuRun {
        let expected = serial_kruskal(g);
        let run = ecl_mst_gpu_with(g, cfg, GpuProfile::TITAN_V);
        assert_eq!(
            run.result.total_weight, expected.total_weight,
            "weight mismatch"
        );
        assert_eq!(run.result.in_mst, expected.in_mst, "edge set mismatch");
        run
    }

    #[test]
    fn triangle() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 2);
        b.add_edge(0, 2, 3);
        check(&b.build(), &OptConfig::full());
    }

    #[test]
    fn empty_and_isolated() {
        check(&GraphBuilder::new(0).build(), &OptConfig::full());
        check(&GraphBuilder::new(5).build(), &OptConfig::full());
    }

    #[test]
    fn grid_correct_and_clocked() {
        let run = check(&grid2d(16, 1), &OptConfig::full());
        assert!(run.kernel_seconds > 0.0);
        assert!(run.memcpy_seconds > 0.0);
        assert!(run.iterations >= 1);
    }

    #[test]
    fn dense_graph_two_phases() {
        let g = copapers(500, 16, 2);
        let run = check(&g, &OptConfig::full());
        assert_eq!(run.phases, 2);
    }

    #[test]
    fn msf_input() {
        check(&rmat(9, 4, 3), &OptConfig::full());
    }

    #[test]
    fn scale_free_hubs() {
        check(&preferential_attachment(800, 8, 1, 4), &OptConfig::full());
    }

    #[test]
    fn every_deopt_rung_is_correct() {
        let graphs = [grid2d(10, 1), rmat(8, 5, 2), copapers(250, 10, 3)];
        for g in &graphs {
            let expected = serial_kruskal(g);
            for (name, cfg) in deopt_ladder() {
                let run = ecl_mst_gpu_with(g, &cfg, GpuProfile::TITAN_V);
                assert_eq!(
                    run.result.in_mst, expected.in_mst,
                    "rung '{name}' wrong edge set"
                );
            }
        }
    }

    #[test]
    fn kernel_log_has_expected_names() {
        let g = grid2d(12, 5);
        let run = check(&g, &OptConfig::full());
        let names: std::collections::HashSet<_> =
            run.records.iter().map(|r| r.name.as_str()).collect();
        for k in ["setup", "init", "kernel1", "kernel2", "kernel3"] {
            assert!(names.contains(k), "missing kernel {k}");
        }
    }

    #[test]
    fn init_launched_twice_with_filtering() {
        let g = copapers(400, 16, 6);
        let run = check(&g, &OptConfig::full());
        let inits = run.records.iter().filter(|r| r.name == "init").count();
        assert_eq!(inits, 2, "filtering should launch the init kernel twice");
    }

    #[test]
    fn rtx_profile_is_faster() {
        let g = grid2d(24, 2);
        let t_titan = ecl_mst_gpu_with(&g, &OptConfig::full(), GpuProfile::TITAN_V);
        let t_rtx = ecl_mst_gpu_with(&g, &OptConfig::full(), GpuProfile::RTX_3080_TI);
        assert!(t_rtx.kernel_seconds < t_titan.kernel_seconds);
    }

    #[test]
    fn memcpy_dwarfs_kernels_at_scale() {
        // The paper: transfers take significantly longer than the MST
        // computation itself (ECL-MST memcpy ~4-6x slower). The effect is
        // asymptotic — launch/sync overheads mask it on tiny graphs.
        // High-average-degree input: filtering keeps the compute on ~4|V|
        // edges while the transfer moves all 2|E| arcs.
        let g = copapers(8_000, 30, 1);
        let run = check(&g, &OptConfig::full());
        assert!(
            run.memcpy_seconds > run.kernel_seconds,
            "memcpy {:.1}us vs kernel {:.1}us",
            run.memcpy_seconds * 1e6,
            run.kernel_seconds * 1e6
        );
    }
}
