//! Sharded out-of-core MSF (DESIGN.md §19).
//!
//! The paper's filtering insight — most edges never matter to the MST —
//! applied one level up the memory hierarchy. The pipeline never holds the
//! whole edge list:
//!
//! 1. **Stage 1 (shard solve).** The edge stream arrives as K shards
//!    through [`ecl_graph::shard::EdgeShards`]; each shard is solved
//!    independently (the existing CPU backend, or the triple-Kruskal merge
//!    kernel below) and only its ≤ n−1 MSF survivor edges are kept —
//!    handed to stage 2 *sorted by the global total order*.
//! 2. **Stage 2 (hierarchical merge).** Survivor sets are unioned pairwise
//!    and re-solved, Borůvka-style, until one forest remains. Because every
//!    set arrives sorted, a level merge is a linear two-way merge followed
//!    by one greedy DSU scan over global vertex ids — no re-sort, no
//!    endpoint remap, O(|a| + |b|) plus the scan.
//!
//! Correctness rests on the cycle property under the workspace's total
//! order: an edge discarded by a shard solve is the maximum of a cycle in
//! its shard, hence of a cycle in the full graph, hence not in the global
//! MSF — so `MSF(E) = MSF(MSF(E₁) ∪ … ∪ MSF(E_K))` and every merge level
//! preserves the forest. The total order itself is `(weight, u, v)`:
//! a monolithic build assigns edge ids by `(u, v)` rank, so its packed
//! `(weight, id)` order *is* `(weight, u, v)` — and each local solve here
//! ranks its own edge subset by `(u, v)` too, which preserves relative
//! global order on any subset. The final forest is therefore bit-identical
//! to `GraphBuilder + serial_kruskal` on the union (parity-tested across
//! the whole suite in `tests/sharded_parity.rs`).
//!
//! **External-memory mode.** With a spill directory configured, stage 1
//! runs shards sequentially and writes each survivor set to disk
//! (tmp+rename, the simcache discipline), and every merge loads exactly two
//! sets at a time — peak residency is one shard's working set plus the
//! merge pair, never the input graph. `crates/bench` measures the resulting
//! peak RSS (VmHWM) and asserts the budget in `bench_snapshot`.

use crate::config::OptConfig;
use crate::result::{pack, unpack, MstResult};
use ecl_dsu::SeqDsu;
use ecl_graph::shard::{EdgeShards, ShardTriple};
use ecl_graph::{par, simd, CsrGraph, GraphBuilder, VertexId, Weight};
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::path::{Path, PathBuf};

/// Fixed seed for the merge-kernel filter-threshold sample. A constant, not
/// a config knob: the pipeline must be bit-identical run to run, and the
/// sample only steers performance (the split never changes the result).
const FILTER_SAMPLE_SEED: u64 = 0x5AAD_0001;

/// Filter constant from the paper (§3.2): the light side targets the
/// `FILTER_C·|V|`-th lightest edge.
const FILTER_C: usize = 4;

/// Below this edge count the filter split costs more than it saves.
const FILTER_MIN_EDGES: usize = 4096;

/// A triple keyed for the global total order: `(weight, u, v)` compares
/// exactly like the monolith's packed `(weight, id)` keys (ids are `(u, v)`
/// ranks), so a plain tuple sort *is* the tie-breaking order every backend
/// agrees on. Survivor sets flow between pipeline stages in this form.
type Wuv = (Weight, VertexId, VertexId);

/// Per-shard solver choice for stage 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardBackend {
    /// Pick per host: the full CPU backend when a thread pool is available
    /// (its parallel phases pay off), the triple-Kruskal kernel on
    /// single-thread hosts (no per-shard CSR build overhead). Both produce
    /// the same bits, so this is a pure performance choice.
    Auto,
    /// `ecl_mst_cpu_with(OptConfig::full())` on a densely remapped shard.
    EclCpu,
    /// The merge kernel itself ([`solve_triples`] path): one sort in the
    /// total order plus a greedy DSU scan on global ids; genuinely dense
    /// shards detour through the packed SWAR filter split.
    Kruskal,
}

impl ShardBackend {
    fn use_cpu_backend(self) -> bool {
        match self {
            // ecl-lint: allow(thread-count-dependence) pure performance fork: both backends produce bit-identical forests
            ShardBackend::Auto => par::max_threads() > 1,
            ShardBackend::EclCpu => true,
            ShardBackend::Kruskal => false,
        }
    }
}

/// Configuration for [`sharded_msf`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Shard count K (clamped to ≥ 1).
    pub shards: usize,
    /// When set, survivor sets spill to this directory and stage 1 runs
    /// sequentially — the bounded-RSS external-memory mode. When `None`,
    /// everything stays in memory and shards solve in parallel.
    pub spill_dir: Option<PathBuf>,
    /// Stage-1 solver.
    pub backend: ShardBackend,
}

impl ShardedConfig {
    /// In-memory pipeline with `shards` shards.
    pub fn in_memory(shards: usize) -> Self {
        Self {
            shards,
            spill_dir: None,
            backend: ShardBackend::Auto,
        }
    }

    /// External-memory pipeline spilling survivor sets under `dir`.
    pub fn spilling(shards: usize, dir: &Path) -> Self {
        Self {
            shards,
            spill_dir: Some(dir.to_path_buf()),
            backend: ShardBackend::Auto,
        }
    }
}

/// The merged forest: the global MSF of the sharded edge stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedForest {
    /// Vertex count of the full graph.
    pub num_vertices: usize,
    /// Forest edges in canonical `(u, v, w)` order.
    pub edges: Vec<ShardTriple>,
    /// Sum of forest edge weights.
    pub total_weight: u64,
}

impl ShardedForest {
    /// Number of forest edges (`n − #components` of the full graph).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Converts the forest into an [`MstResult`] over a monolithic build of
    /// the same graph, for bit-exact comparison against the in-core codes.
    ///
    /// Panics if a forest edge is missing from `g` or carries a different
    /// weight than `g`'s deduped edge — either means the shard source and
    /// the graph disagree, which parity tests and the fuzz harness treat as
    /// a divergence.
    pub fn to_mst_result(&self, g: &CsrGraph) -> MstResult {
        let list = g.edge_list();
        debug_assert!(
            list.windows(2).all(|p| (p[0].0, p[0].1) < (p[1].0, p[1].1)),
            "edge_list must come back in (u, v) order for id binary search"
        );
        let mut in_mst = vec![false; list.len()];
        for &(u, v, w) in &self.edges {
            let id = list.partition_point(|&(a, b, _)| (a, b) < (u, v));
            assert!(
                id < list.len() && list[id].0 == u && list[id].1 == v,
                "forest edge ({u},{v}) not present in the monolithic graph"
            );
            assert_eq!(
                list[id].2, w,
                "forest edge ({u},{v}) weight diverges from the deduped graph edge"
            );
            in_mst[id] = true;
        }
        MstResult::from_bitmap(g, in_mst)
    }
}

/// Everything [`sharded_msf`] observed, for benches and assertions.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// The merged global forest.
    pub forest: ShardedForest,
    /// Shard count actually used.
    pub shards: usize,
    /// Total stage-1 survivor edges across all shards (the working-set
    /// bound the merge tree starts from; ≤ K·(n−1)).
    pub survivor_edges: u64,
    /// Hierarchical merge levels until one forest remained (⌈log₂ K⌉).
    pub merge_rounds: u32,
    /// Bytes written to survivor spill files (0 in memory mode).
    pub spill_bytes: u64,
}

/// Runs the sharded out-of-core MSF pipeline over `src`.
pub fn sharded_msf(src: &dyn EdgeShards, cfg: &ShardedConfig) -> ShardedRun {
    let k = cfg.shards.max(1);
    if let Some(dir) = &cfg.spill_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("create spill dir {}: {e}", dir.display()));
    }
    ecl_metrics::counter!(SHARD_SHARDS, k as u64);

    let mut spill_bytes = 0u64;
    let mut survivor_edges = 0u64;

    let mut sets: Vec<Survivors> = {
        let _span = ecl_trace::range!(wall: "shard/solve");
        if let Some(dir) = &cfg.spill_dir {
            // Sequential on purpose: the RSS budget admits one shard's
            // working set at a time.
            let mut out = Vec::with_capacity(k);
            for i in 0..k {
                let survivors = solve_shard(src.shard(i, k), cfg.backend);
                survivor_edges += survivors.len() as u64;
                out.push(store(dir, 0, i, &survivors, &mut spill_bytes));
            }
            out
        } else {
            let idx: Vec<usize> = (0..k).collect();
            par::par_map(&idx, |_, &i| solve_shard(src.shard(i, k), cfg.backend))
                .into_iter()
                .map(|s| {
                    survivor_edges += s.len() as u64;
                    Survivors::Mem(s)
                })
                .collect()
        }
    };
    ecl_metrics::counter!(SHARD_SURVIVOR_EDGES, survivor_edges);

    let mut merge_rounds = 0u32;
    {
        let _span = ecl_trace::range!(wall: "shard/merge");
        let mut level = 1usize;
        while sets.len() > 1 {
            merge_rounds += 1;
            let mut inputs = sets.into_iter();
            let mut pairs = Vec::new();
            while let Some(a) = inputs.next() {
                pairs.push((a, inputs.next()));
            }
            sets = if let Some(dir) = &cfg.spill_dir {
                // Two survivor sets resident at a time, nothing more.
                let mut out = Vec::with_capacity(pairs.len());
                for (i, (a, b)) in pairs.into_iter().enumerate() {
                    let merged = merge_pair(a, b);
                    out.push(store(dir, level, i, &merged, &mut spill_bytes));
                }
                out
            } else {
                pairs
                    .into_par_iter()
                    .map(|(a, b)| Survivors::Mem(merge_pair(a, b)))
                    .collect()
            };
            level += 1;
        }
    }
    ecl_metrics::counter!(SHARD_MERGE_ROUNDS, merge_rounds as u64);
    ecl_metrics::counter!(SHARD_SPILL_BYTES, spill_bytes);

    // Survivors flow in total order; the public forest is canonical.
    let mut edges: Vec<ShardTriple> = sets
        .pop()
        .map_or_else(Vec::new, load)
        .into_iter()
        .map(|(w, u, v)| (u, v, w))
        .collect();
    edges.par_sort_unstable();
    let total_weight = edges.iter().map(|e| e.2 as u64).sum();
    ShardedRun {
        forest: ShardedForest {
            num_vertices: src.num_vertices(),
            edges,
            total_weight,
        },
        shards: k,
        survivor_edges,
        merge_rounds,
        spill_bytes,
    }
}

/// Solves one shard with the configured backend. Survivors come back
/// sorted by the total order, ready for linear level merges.
fn solve_shard(triples: Vec<ShardTriple>, backend: ShardBackend) -> Vec<Wuv> {
    if backend.use_cpu_backend() {
        solve_shard_cpu(triples)
    } else {
        solve_triples(triples)
    }
}

/// Stage-1 solve through the existing CPU backend: densely remap the
/// shard's endpoints (the sorted vertex table is monotone, so local ids
/// preserve `(u, v)` order and with it the global total order), build a
/// CSR, run `ecl_mst_cpu_with`, and map the survivors back.
fn solve_shard_cpu(triples: Vec<ShardTriple>) -> Vec<Wuv> {
    let verts = endpoint_table(&triples);
    let lid_of = scatter_table(&verts);
    let mut b = GraphBuilder::new(verts.len());
    for &(u, v, w) in &triples {
        b.add_edge(lid_of[u as usize], lid_of[v as usize], w);
    }
    drop(triples);
    drop(lid_of);
    let g = b.build();
    let run = crate::cpu::ecl_mst_cpu_with(&g, &OptConfig::full());
    let list = g.edge_list();
    let mut out: Vec<Wuv> = run
        .result
        .edge_ids()
        .into_iter()
        .map(|id| {
            let (lu, lv, w) = list[id as usize];
            (w, verts[lu as usize], verts[lv as usize])
        })
        .collect();
    out.par_sort_unstable();
    out
}

/// Merges a survivor-set pair into one forest (the odd set of a level
/// passes through untouched — it is already an MSF in total order).
///
/// Both inputs arrive sorted by the total order, so the union is a linear
/// two-way merge and the re-solve is a single greedy scan — the level
/// costs O(|a| + |b|) plus the DSU work, with no sort anywhere.
fn merge_pair(a: Survivors, b: Option<Survivors>) -> Vec<Wuv> {
    let edges = load(a);
    let Some(b) = b else { return edges };
    let merged = merge_sorted(edges, load(b));
    let Some(max_id) = merged.iter().map(|&(_, x, y)| x.max(y)).max() else {
        return merged;
    };
    scan_forest(&merged, max_id as usize + 1)
}

/// Linear two-way merge of survivor sets already sorted by the total
/// order. `<=` keeps the merge stable; equal keys are identical triples,
/// so either side first is the same scan.
fn merge_sorted(a: Vec<Wuv>, b: Vec<Wuv>) -> Vec<Wuv> {
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]));
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    while let (Some(x), Some(y)) = (ia.peek(), ib.peek()) {
        if x <= y {
            out.push(ia.next().expect("peeked"));
        } else {
            out.push(ib.next().expect("peeked"));
        }
    }
    out.extend(ia);
    out.extend(ib);
    out
}

/// The merge kernel: MSF of a global-endpoint triple multiset under the
/// global `(weight, u, v)` total order, survivors returned sorted by that
/// same order.
///
/// The default route is one tuple sort in the total order plus a greedy
/// scan on global vertex ids — no endpoint table, no remap. Genuinely
/// dense inputs (where the paper's §3.2 filter can pay off) detour through
/// [`solve_dense`], which reuses the SWAR machinery. The density test uses
/// the cheap endpoint-count bound `min(max_id + 1, 2m)`: it can only
/// under-fire relative to the exact count (skipping the filter is a
/// performance choice, never a correctness one), and it avoids paying an
/// endpoint sort on sparse shards just to learn the filter is off.
fn solve_triples(mut edges: Vec<ShardTriple>) -> Vec<Wuv> {
    // Self-loops can never join a forest. Parallel (u, v) duplicates stay:
    // the scan unions each pair once, so the heavier duplicate is skipped
    // exactly as the builder's keep-lightest dedup would drop it.
    edges.retain(|e| e.0 != e.1);
    let Some(max_id) = edges.iter().map(|&(u, v, _)| u.max(v)).max() else {
        return Vec::new();
    };
    let dsu_n = max_id as usize + 1;

    let nloc_bound = dsu_n.min(2 * edges.len());
    if edges.len() >= FILTER_MIN_EDGES && FILTER_C * nloc_bound < edges.len() {
        return solve_dense(edges);
    }

    let mut keyed: Vec<Wuv> = edges.iter().map(|&(u, v, w)| (w, u, v)).collect();
    drop(edges);
    keyed.par_sort_unstable();
    scan_forest(&keyed, dsu_n)
}

/// Greedy Kruskal scan over triples already sorted by the total order,
/// unioning global vertex ids directly. Duplicate `(u, v)` pairs need no
/// dedup pass (the heavier one closes a 2-cycle and its union is a no-op),
/// and the early exit only fires for a spanning connected input — the
/// scan is correct without it.
fn scan_forest(sorted: &[Wuv], dsu_n: usize) -> Vec<Wuv> {
    let mut dsu = SeqDsu::new(dsu_n);
    let target = dsu_n.saturating_sub(1);
    let mut picked = Vec::new();
    // ecl-lint: allow(builder-serial-hot-path) Kruskal's greedy scan is order-dependent — serial by nature
    for &(w, u, v) in sorted {
        if picked.len() == target {
            break;
        }
        if dsu.union(u, v) {
            picked.push((w, u, v));
        }
    }
    picked
}

/// The dense route: canonical sort + keep-lightest dedup, dense remap
/// through a scatter table, then the paper's filter split over packed SWAR
/// keys — [`simd::pack_into`] builds the 64-bit `(weight, rank)` sort
/// keys, a 20-sample threshold (§3.2) splits the scan into a light phase
/// plus a forest-filtered heavy phase, and [`simd::count_lt`] sizes the
/// split and rejects degenerate thresholds, mirroring
/// [`crate::filter::plan_filter`]'s fallbacks.
///
/// Only reachable when `FILTER_C · nloc_bound < m`, so the scatter table
/// is at most `m / FILTER_C` entries — never a memory hazard.
fn solve_dense(mut edges: Vec<ShardTriple>) -> Vec<Wuv> {
    // Canonical order doubles as dedup order: among parallel (u, v)
    // duplicates the lightest sorts first and survives — the 2-cycle
    // special case of the cycle property.
    edges.par_sort_unstable();
    edges.dedup_by(|a, b| (a.0, a.1) == (b.0, b.1));

    let verts = endpoint_table(&edges);
    let lid_of = scatter_table(&verts);
    // Chunk-parallel dense remap (two O(1) table reads per edge);
    // `lids[i]` are the local endpoints of `edges[i]`.
    let lids: Vec<(u32, u32)> = par::run_chunks(edges.len(), 1 << 16, |r| {
        edges[r]
            .iter()
            .map(|&(u, v, _)| (lid_of[u as usize], lid_of[v as usize]))
            .collect::<Vec<_>>()
    })
    .concat();
    drop(lid_of);

    let nloc = verts.len();
    let target = nloc.saturating_sub(1);
    let ws: Vec<Weight> = edges.iter().map(|e| e.2).collect();
    let ranks: Vec<u32> = (0..edges.len() as u32).collect();
    let mut packed = Vec::new();
    simd::pack_into(&ws, &ranks, &mut packed);

    // Light/heavy split at the sampled threshold. `packed < pack(t, 0)`
    // is exactly `w < t`, so the two sorted phases concatenate into the
    // full sorted order and the greedy scan result cannot change.
    let (mut light, mut heavy) = match filter_threshold(&ws, nloc) {
        Some(t) => packed.into_iter().partition(|&p| p < pack(t, 0)),
        None => (packed, Vec::new()),
    };
    drop(ws);

    let mut dsu = SeqDsu::new(nloc);
    let mut picked: Vec<u32> = Vec::with_capacity(target.min(edges.len()));
    let scan = |sorted: &[u64], dsu: &mut SeqDsu, picked: &mut Vec<u32>| {
        // ecl-lint: allow(builder-serial-hot-path) Kruskal's greedy scan is order-dependent — serial by nature
        for &val in sorted {
            if picked.len() == target {
                break;
            }
            let rank = unpack(val).1;
            let (lu, lv) = lids[rank as usize];
            if dsu.union(lu, lv) {
                picked.push(rank);
            }
        }
    };
    light.par_sort_unstable();
    scan(&light, &mut dsu, &mut picked);
    if picked.len() < target && !heavy.is_empty() {
        // Filter the heavy remainder through the partial forest before
        // paying to sort it: intra-component edges are cycle edges.
        heavy.retain(|&p| {
            let (lu, lv) = lids[unpack(p).1 as usize];
            dsu.find(lu) != dsu.find(lv)
        });
        heavy.par_sort_unstable();
        scan(&heavy, &mut dsu, &mut picked);
    }

    let mut out: Vec<Wuv> = picked
        .into_iter()
        .map(|r| {
            let (u, v, w) = edges[r as usize];
            (w, u, v)
        })
        .collect();
    out.par_sort_unstable();
    out
}

/// Sorted dense endpoint table of a triple list.
fn endpoint_table(edges: &[ShardTriple]) -> Vec<VertexId> {
    let mut verts: Vec<VertexId> = edges.iter().flat_map(|&(u, v, _)| [u, v]).collect();
    verts.par_sort_unstable();
    verts.dedup();
    verts
}

/// Global-id → local-rank scatter table over `[0, max_vertex]`. Slots for
/// ids absent from `verts` stay zero and are never read: every lookup key
/// is an endpoint of the same edge list the table was built from.
fn scatter_table(verts: &[VertexId]) -> Vec<u32> {
    let n_table = verts.last().map_or(0, |&v| v as usize + 1);
    let mut lid_of = vec![0u32; n_table];
    // ecl-lint: allow(builder-serial-hot-path) O(nloc) scatter fill, not an O(m) hot loop
    for (i, &v) in verts.iter().enumerate() {
        lid_of[v as usize] = i as u32;
    }
    lid_of
}

/// 20-sample threshold estimate targeting the `4·|V|`-th lightest edge —
/// the paper's filter heuristic applied to a triple list. `None` on sparse
/// (average degree < 4), tiny, or degenerate-sample inputs.
fn filter_threshold(ws: &[Weight], nloc: usize) -> Option<Weight> {
    const SAMPLE_SIZE: usize = crate::filter::SAMPLE_SIZE;
    let m = ws.len();
    if m < FILTER_MIN_EDGES || FILTER_C * nloc >= m {
        return None;
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(FILTER_SAMPLE_SEED);
    let mut samples = [0 as Weight; SAMPLE_SIZE];
    for s in samples.iter_mut() {
        *s = ws[rng.gen_range(0..m)];
    }
    samples.sort_unstable();
    let q = (FILTER_C * nloc) as f64 / m as f64;
    let idx = ((q * SAMPLE_SIZE as f64).ceil() as usize).clamp(1, SAMPLE_SIZE) - 1;
    let t = samples[idx];
    if t == 0 || samples[0] == samples[SAMPLE_SIZE - 1] {
        return None;
    }
    // SWAR count of the split: an empty or total light side means the
    // threshold degenerated — fall back to the single sorted scan.
    let nlight = simd::count_lt(ws, t);
    if nlight == 0 || nlight == m {
        return None;
    }
    Some(t)
}

/// One survivor set between pipeline stages (always sorted by the total
/// order): resident or spilled.
enum Survivors {
    Mem(Vec<Wuv>),
    File { path: PathBuf, triples: usize },
}

/// Persists a survivor set under `dir` with the simcache write discipline
/// (write to a pid-suffixed temp name, then rename into place) so a
/// crashed run never leaves a torn file behind. The on-disk layout is
/// 12-byte LE `(u, v, w)` records; the file keeps the set's total order.
fn store(
    dir: &Path,
    level: usize,
    index: usize,
    triples: &[Wuv],
    spill_bytes: &mut u64,
) -> Survivors {
    let path = dir.join(format!("shard-l{level}-{index}.tri"));
    let mut bytes = Vec::with_capacity(12 * triples.len());
    for &(w, u, v) in triples {
        bytes.extend_from_slice(&u.to_le_bytes());
        bytes.extend_from_slice(&v.to_le_bytes());
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    let tmp = path.with_extension(format!("tmp{}", std::process::id()));
    std::fs::write(&tmp, &bytes)
        .unwrap_or_else(|e| panic!("write spill file {}: {e}", tmp.display()));
    std::fs::rename(&tmp, &path)
        .unwrap_or_else(|e| panic!("rename spill file into {}: {e}", path.display()));
    *spill_bytes += bytes.len() as u64;
    Survivors::File {
        path,
        triples: triples.len(),
    }
}

/// Loads a survivor set, consuming it (spill files are deleted once read,
/// so disk usage stays bounded by two live levels).
fn load(s: Survivors) -> Vec<Wuv> {
    match s {
        Survivors::Mem(v) => v,
        Survivors::File { path, triples } => {
            let bytes = std::fs::read(&path)
                .unwrap_or_else(|e| panic!("read spill file {}: {e}", path.display()));
            assert_eq!(
                bytes.len(),
                12 * triples,
                "spill file {} truncated",
                path.display()
            );
            let out = bytes
                .chunks_exact(12)
                .map(|c| {
                    let word = |i: usize| {
                        u32::from_le_bytes(c[4 * i..4 * i + 4].try_into().expect("12-byte chunk"))
                    };
                    (word(2), word(0), word(1))
                })
                .collect();
            std::fs::remove_file(&path).ok();
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::serial_kruskal;
    use ecl_graph::generators::{copapers, uniform_random, UniformRandomShards};
    use ecl_graph::shard::InMemoryShards;

    fn parity(g: &CsrGraph, cfg: &ShardedConfig) {
        let src = InMemoryShards::new(g.num_vertices(), g.edge_list());
        let run = sharded_msf(&src, cfg);
        let expected = serial_kruskal(g);
        let got = run.forest.to_mst_result(g);
        assert_eq!(got.in_mst, expected.in_mst, "edge sets diverge");
        assert_eq!(run.forest.total_weight, expected.total_weight);
        assert_eq!(run.forest.num_edges(), expected.num_edges);
    }

    #[test]
    fn parity_against_serial_kruskal_both_backends() {
        let g = uniform_random(1500, 8.0, 3);
        for backend in [ShardBackend::EclCpu, ShardBackend::Kruskal] {
            let mut cfg = ShardedConfig::in_memory(5);
            cfg.backend = backend;
            parity(&g, &cfg);
        }
    }

    #[test]
    fn dense_input_exercises_filter_split() {
        // copapers is dense enough for `filter_threshold` to fire in the
        // stage-1 Kruskal path.
        let g = copapers(700, 14, 4);
        let mut cfg = ShardedConfig::in_memory(3);
        cfg.backend = ShardBackend::Kruskal;
        parity(&g, &cfg);
    }

    #[test]
    fn spill_mode_bit_identical_and_cleans_up() {
        let g = uniform_random(1200, 8.0, 9);
        let dir = std::env::temp_dir().join(format!("ecl-sharded-test-{}", std::process::id()));
        let cfg = ShardedConfig::spilling(4, &dir);
        let src = InMemoryShards::new(g.num_vertices(), g.edge_list());
        let run = sharded_msf(&src, &cfg);
        assert_eq!(
            run.forest.to_mst_result(&g).in_mst,
            serial_kruskal(&g).in_mst
        );
        assert!(run.spill_bytes > 0, "spill mode must write survivor files");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .map(|d| d.filter_map(|e| e.ok()).collect())
            .unwrap_or_default();
        assert!(
            leftovers.is_empty(),
            "consumed spill files must be deleted: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generator_source_matches_monolith() {
        let src = UniformRandomShards::new(2000, 8.0, 5);
        let g = uniform_random(2000, 8.0, 5);
        let run = sharded_msf(&src, &ShardedConfig::in_memory(6));
        assert_eq!(
            run.forest.to_mst_result(&g).in_mst,
            serial_kruskal(&g).in_mst
        );
    }

    #[test]
    fn single_shard_skips_merging() {
        let g = uniform_random(400, 6.0, 2);
        let src = InMemoryShards::new(g.num_vertices(), g.edge_list());
        let run = sharded_msf(&src, &ShardedConfig::in_memory(1));
        assert_eq!(run.merge_rounds, 0);
        assert_eq!(run.shards, 1);
        assert_eq!(
            run.forest.to_mst_result(&g).in_mst,
            serial_kruskal(&g).in_mst
        );
    }

    #[test]
    fn empty_and_trivial_sources() {
        let src = InMemoryShards::new(0, Vec::new());
        let run = sharded_msf(&src, &ShardedConfig::in_memory(4));
        assert_eq!(run.forest.num_edges(), 0);
        assert_eq!(run.forest.total_weight, 0);

        let lonely = InMemoryShards::new(3, Vec::new());
        let run = sharded_msf(&lonely, &ShardedConfig::in_memory(2));
        assert_eq!(run.forest.num_edges(), 0);
    }
}
