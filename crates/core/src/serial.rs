//! Serial Kruskal — the paper's verification reference ("The ECL-MST
//! implementation verifies the solution at the end of each run by comparing
//! it to the solution of a serial implementation of Kruskal's algorithm").
//!
//! Ties are broken by edge id, i.e. edges are ordered by the same packed
//! `weight:edge_id` word the parallel code reserves with. Under this total
//! order the MST/MSF is **unique**, so all codes in this workspace can be
//! compared edge-set-for-edge-set, not just weight-for-weight.

use crate::result::{pack, MstResult};
use ecl_dsu::SeqDsu;
use ecl_graph::CsrGraph;

/// Computes the unique MSF of `g` by sorting all edges and growing a forest.
pub fn serial_kruskal(g: &CsrGraph) -> MstResult {
    let mut edges: Vec<(u64, u32, u32)> = g
        .edges()
        .map(|e| (pack(e.weight, e.id), e.src, e.dst))
        .collect();
    edges.sort_unstable_by_key(|&(val, _, _)| val);

    let mut dsu = SeqDsu::new(g.num_vertices());
    let mut in_mst = vec![false; g.num_edges()];
    let mut picked = 0usize;
    let target = g.num_vertices().saturating_sub(1);
    for (val, u, v) in edges {
        if dsu.union(u, v) {
            let (_, id) = crate::result::unpack(val);
            in_mst[id as usize] = true;
            picked += 1;
            if picked == target {
                break; // forest complete (single component fast path)
            }
        }
    }
    MstResult::from_bitmap(g, in_mst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::generators::{grid2d, rmat};
    use ecl_graph::stats::connected_components;
    use ecl_graph::GraphBuilder;

    #[test]
    fn triangle_mst() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 2);
        b.add_edge(0, 2, 3);
        let g = b.build();
        let r = serial_kruskal(&g);
        assert_eq!(r.num_edges, 2);
        assert_eq!(r.total_weight, 3);
    }

    #[test]
    fn figure1_example() {
        // The paper's Fig. 2 worked example: A-B:4(a), A-C:1(b), B-D:3(c),
        // C-D:2(d), B-C:5(e)... weights chosen to match the iteration trace.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 4); // A-B
        b.add_edge(0, 2, 1); // A-C
        b.add_edge(1, 3, 3); // B-D
        b.add_edge(2, 3, 2); // C-D
        b.add_edge(1, 2, 5); // B-C
        let g = b.build();
        let r = serial_kruskal(&g);
        assert_eq!(r.num_edges, 3);
        assert_eq!(r.total_weight, 1 + 2 + 3);
    }

    #[test]
    fn forest_has_n_minus_ccs_edges() {
        let g = rmat(10, 4, 3);
        let ccs = connected_components(&g);
        let r = serial_kruskal(&g);
        assert_eq!(r.num_edges, g.num_vertices() - ccs);
    }

    #[test]
    fn spanning_tree_on_grid() {
        let g = grid2d(12, 5);
        let r = serial_kruskal(&g);
        assert_eq!(r.num_edges, g.num_vertices() - 1);
        // MST weight is at most the weight of any spanning structure; sanity
        // check: strictly less than total edge weight.
        let total: u64 = g.edges().map(|e| e.weight as u64).sum();
        assert!(r.total_weight < total);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let empty = GraphBuilder::new(0).build();
        let r = serial_kruskal(&empty);
        assert_eq!(r.num_edges, 0);
        assert_eq!(r.total_weight, 0);

        let singleton = GraphBuilder::new(1).build();
        let r = serial_kruskal(&singleton);
        assert_eq!(r.num_edges, 0);
    }

    #[test]
    fn tie_break_by_id_is_deterministic() {
        // All equal weights: the MST must pick the lowest-id edges.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 7);
        b.add_edge(1, 2, 7);
        b.add_edge(0, 2, 7);
        let g = b.build();
        let r = serial_kruskal(&g);
        let ids = r.edge_ids();
        assert_eq!(ids, vec![0, 1]);
    }
}
