//! Incremental/dynamic MSF maintenance over batched edge updates.
//!
//! ROADMAP item 2 applies the paper's core insight — most edges never
//! matter to the MSF — over *time*: when a resident graph mutates, only
//! replacement-edge maintenance should run, not a full rebuild. This
//! module keeps a full adjacency plus the current minimum spanning forest
//! under batched insertions and deletions:
//!
//! * **Insert** — a cycle check via the DSU labels decides tree edge vs
//!   candidate; an edge that closes a cycle still enters the forest when
//!   it beats the maximum tree edge on the u–v tree path (cycle property).
//! * **Delete** — removing a non-tree edge is local; removing a tree edge
//!   floods the smaller side of the cut and picks the lightest surviving
//!   crossing edge as the replacement (cut property), reusing the
//!   filter-partition idea from [`crate::filter`] to prune the candidate
//!   scan. When no replacement exists the component genuinely splits and
//!   the DSU is rebuilt lazily at the next quiescent point.
//!
//! # The edge order, and why rebuild-equivalence holds
//!
//! Every static code in this workspace breaks weight ties by *builder
//! edge id*, and [`ecl_graph::GraphBuilder`] assigns ids by sorted
//! `(u, v)` rank — so the packed `(weight, id)` total order is exactly the
//! lexicographic `(weight, u, v)` order, which is stable under mutation.
//! The engine maintains its forest under that same `(w, u, v)` key, so
//! after any update sequence its tree-edge set is **bit-identical** to
//! rebuilding the surviving edge set from scratch and running
//! [`crate::serial_kruskal`] (the `ecl-fuzz --updates` campaign enforces
//! this after every batch via [`crate::verify_msf`]).
//!
//! Batches are the quiescence unit: [`DynamicMsf::apply_batch`] applies
//! ops in order, then rebuilds the DSU if a split dirtied it and refreshes
//! the reused flat-label buffer ([`ecl_dsu::AtomicDsu::flat_labels_into`]
//! is only legal at such points). Each batch records one
//! `dynamic/apply_batch` trace span and feeds the `ecl.dynamic.*` metrics.
//!
//! See DESIGN.md §18 for the full contract.

use crate::serial::serial_kruskal;
use ecl_dsu::{AtomicDsu, FindPolicy};
use ecl_graph::CsrGraph;
use std::collections::{BTreeMap, VecDeque};

/// Find policy used for all engine-internal DSU queries: the engine is
/// single-writer, so halving's relaxed compression stores are uncontended
/// and keep amortized find cost near-constant across batches.
const POLICY: FindPolicy = FindPolicy::Halving;

/// Candidate-set size below which the replacement search key-compares
/// directly instead of partitioning first (a threshold pass cannot pay for
/// itself on tiny scans).
const FILTER_MIN_CANDIDATES: usize = 64;

/// One edge update. Endpoints must be below the engine's vertex count;
/// self-loops are accepted and ignored (mirroring builder cleaning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert the undirected edge `{u, v}` with weight `w`. If the edge
    /// already exists the lighter weight wins (builder dedup semantics);
    /// inserting a heavier duplicate is a no-op.
    Insert {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
        /// Edge weight.
        w: u32,
    },
    /// Delete the undirected edge `{u, v}` (no-op when absent).
    Delete {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
}

/// What one [`DynamicMsf::apply_batch`] call did, for callers and tests;
/// the same numbers feed the `ecl.dynamic.*` metrics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Ops in the batch (including no-ops).
    pub ops: usize,
    /// Edges actually added to the graph (self-loops and heavier
    /// duplicates excluded).
    pub inserted: usize,
    /// Edges actually removed from the graph.
    pub deleted: usize,
    /// Inserts that joined two components (new tree edge, DSU union).
    pub links: usize,
    /// Inserts that displaced a heavier tree edge on their cycle.
    pub swaps: usize,
    /// Deletes that removed a tree edge.
    pub cuts: usize,
    /// Cuts healed by a replacement edge (partition unchanged).
    pub replacements: usize,
    /// Crossing-edge candidates examined across all replacement searches.
    pub candidates_scanned: usize,
    /// Total tree-edge additions plus removals (the churn gauge).
    pub tree_churn: usize,
}

/// A resident graph plus its minimum spanning forest, maintained under
/// batched edge updates.
///
/// ```
/// use ecl_mst::dynamic::{DynamicMsf, UpdateOp};
/// let mut m = DynamicMsf::new(4);
/// m.apply_batch(&[
///     UpdateOp::Insert { u: 0, v: 1, w: 5 },
///     UpdateOp::Insert { u: 1, v: 2, w: 7 },
///     UpdateOp::Insert { u: 0, v: 2, w: 6 }, // closes a cycle, displaces 1-2
/// ]);
/// assert_eq!(m.num_tree_edges(), 2);
/// assert_eq!(m.total_weight(), 11);
/// assert!(!m.is_tree_edge(1, 2));
/// ```
#[derive(Debug)]
pub struct DynamicMsf {
    n: usize,
    /// Full adjacency: `nbrs[u][v] = w` for every live edge, both
    /// directions. BTreeMaps keep iteration deterministic.
    nbrs: Vec<BTreeMap<u32, u32>>,
    /// Forest adjacency, a subset of `nbrs`.
    tree: Vec<BTreeMap<u32, u32>>,
    num_edges: usize,
    num_tree_edges: usize,
    total_weight: u64,
    /// Component structure of the forest. Kept current by insert-side
    /// unions; a delete that splits a component marks it stale (union-find
    /// cannot un-union) and it is rebuilt lazily from the tree edges.
    dsu: AtomicDsu,
    dsu_stale: bool,
    /// Flat component labels, refreshed from the DSU at each batch
    /// boundary (the quiescent point `flat_labels_into` requires). The
    /// buffer is reused across batches — zero steady-state allocation.
    labels: Vec<u32>,
    // Reusable search scratch: visit stamps, BFS parents (+ edge weight to
    // parent), the two flood queues, and the replacement-filter weights.
    mark: Vec<u32>,
    stamp: u32,
    par: Vec<u32>,
    parw: Vec<u32>,
    qa: Vec<u32>,
    qb: Vec<u32>,
    wscratch: Vec<u32>,
}

impl DynamicMsf {
    /// Creates an engine over `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 range");
        Self {
            n,
            nbrs: vec![BTreeMap::new(); n],
            tree: vec![BTreeMap::new(); n],
            num_edges: 0,
            num_tree_edges: 0,
            total_weight: 0,
            dsu: AtomicDsu::new(n),
            dsu_stale: false,
            labels: (0..n as u32).collect(),
            mark: vec![0; n],
            stamp: 0,
            par: vec![0; n],
            parw: vec![0; n],
            qa: Vec::new(),
            qb: Vec::new(),
            wscratch: Vec::new(),
        }
    }

    /// Seeds an engine from a resident CSR graph: the adjacency comes from
    /// the mutation-friendly [`CsrGraph::edge_list`] view and the initial
    /// forest from one [`serial_kruskal`] run (construction *is* the
    /// rebuild the engine is later measured against).
    pub fn from_graph(g: &CsrGraph) -> Self {
        let mut m = Self::new(g.num_vertices());
        for (u, v, w) in g.edge_list() {
            m.nbrs[u as usize].insert(v, w);
            m.nbrs[v as usize].insert(u, w);
        }
        m.num_edges = g.num_edges();
        let msf = serial_kruskal(g);
        for e in g.edges() {
            if msf.in_mst[e.id as usize] {
                m.tree[e.src as usize].insert(e.dst, e.weight);
                m.tree[e.dst as usize].insert(e.src, e.weight);
            }
        }
        m.num_tree_edges = msf.num_edges;
        m.total_weight = msf.total_weight;
        m.dsu_stale = true;
        m.ensure_dsu();
        let mut labels = std::mem::take(&mut m.labels);
        m.dsu.flat_labels_into(&mut labels);
        m.labels = labels;
        m
    }

    /// Number of vertices (fixed for the engine's lifetime).
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of live undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of edges currently in the forest.
    pub fn num_tree_edges(&self) -> usize {
        self.num_tree_edges
    }

    /// Total weight of the forest.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Weight of the live edge `{u, v}`, if present.
    pub fn edge_weight(&self, u: u32, v: u32) -> Option<u32> {
        let (a, b) = canon(u, v)?;
        self.nbrs[a as usize].get(&b).copied()
    }

    /// True when `{u, v}` is currently a forest edge.
    pub fn is_tree_edge(&self, u: u32, v: u32) -> bool {
        match canon(u, v) {
            Some((a, b)) => self.tree[a as usize].contains_key(&b),
            None => false,
        }
    }

    /// Every forest edge as a canonical `(u, v, w)` triple with `u < v`,
    /// in vertex order — directly comparable against a rebuilt
    /// [`serial_kruskal`] edge set.
    pub fn tree_edges(&self) -> Vec<(u32, u32, u32)> {
        let mut out = Vec::with_capacity(self.num_tree_edges);
        for u in 0..self.n as u32 {
            for (&v, &w) in &self.tree[u as usize] {
                if u < v {
                    out.push((u, v, w));
                }
            }
        }
        out
    }

    /// Component labels as of the last batch boundary (every entry is the
    /// DSU root of its vertex). Mid-batch mutations are not reflected
    /// until the next [`DynamicMsf::apply_batch`] returns.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Applies `ops` in order, then restores quiescence: the DSU is
    /// rebuilt if a split dirtied it and the flat-label buffer refreshed.
    /// Records one `dynamic/apply_batch` trace span and the
    /// `ecl.dynamic.*` metrics.
    pub fn apply_batch(&mut self, ops: &[UpdateOp]) -> BatchStats {
        let _span = ecl_trace::range!(wall: "dynamic/apply_batch");
        let mut stats = BatchStats {
            ops: ops.len(),
            ..BatchStats::default()
        };
        for op in ops {
            match *op {
                UpdateOp::Insert { u, v, w } => self.do_insert(u, v, w, &mut stats),
                UpdateOp::Delete { u, v } => self.do_delete(u, v, &mut stats),
            }
        }
        // Quiescent point: the reused label buffer is only refreshed here,
        // where every label flat_labels_into produces is a settled root.
        self.ensure_dsu();
        let mut labels = std::mem::take(&mut self.labels);
        self.dsu.flat_labels_into(&mut labels);
        self.labels = labels;
        ecl_metrics::counter!(DYNAMIC_BATCHES);
        ecl_metrics::gauge!(DYNAMIC_TREE_CHURN, stats.tree_churn as f64);
        stats
    }

    /// Rebuilds the DSU from the tree edges when a split left it stale.
    fn ensure_dsu(&mut self) {
        if !self.dsu_stale {
            return;
        }
        self.dsu.reset();
        for u in 0..self.n as u32 {
            for &v in self.tree[u as usize].keys() {
                if u < v {
                    self.dsu.union(u, v, POLICY);
                }
            }
        }
        self.dsu_stale = false;
    }

    fn do_insert(&mut self, u: u32, v: u32, w: u32, stats: &mut BatchStats) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "endpoint out of range"
        );
        let Some((a, b)) = canon(u, v) else {
            return; // self-loop, dropped exactly as the builder drops it
        };
        if let Some(&old) = self.nbrs[a as usize].get(&b) {
            if w >= old {
                return; // heavier duplicate: the lightest wins, as in dedup
            }
            self.nbrs[a as usize].insert(b, w);
            self.nbrs[b as usize].insert(a, w);
            if let std::collections::btree_map::Entry::Occupied(mut e) =
                self.tree[a as usize].entry(b)
            {
                // Decreasing a tree edge's weight can never evict it.
                e.insert(w);
                self.tree[b as usize].insert(a, w);
                self.total_weight -= (old - w) as u64;
            } else {
                // A lighter non-tree edge may now displace its cycle max.
                self.try_swap(a, b, w, stats);
            }
            return;
        }
        self.nbrs[a as usize].insert(b, w);
        self.nbrs[b as usize].insert(a, w);
        self.num_edges += 1;
        stats.inserted += 1;
        // Cycle check via the DSU labels: distinct roots mean the edge
        // bridges two components and joins the forest unconditionally.
        self.ensure_dsu();
        if self.dsu.find(a, POLICY) != self.dsu.find(b, POLICY) {
            self.tree[a as usize].insert(b, w);
            self.tree[b as usize].insert(a, w);
            self.num_tree_edges += 1;
            self.total_weight += w as u64;
            self.dsu.union(a, b, POLICY);
            stats.links += 1;
            stats.tree_churn += 1;
        } else {
            self.try_swap(a, b, w, stats);
        }
    }

    /// Cycle-property step for a non-tree edge `(a, b, w)` whose endpoints
    /// are connected: if its key beats the maximum-key edge on the a–b
    /// tree path, swap them (the displaced edge stays in the graph).
    fn try_swap(&mut self, a: u32, b: u32, w: u32, stats: &mut BatchStats) {
        let (mw, mu, mv) = self.path_max(a, b);
        if (w, a, b) < (mw, mu, mv) {
            self.tree[mu as usize].remove(&mv);
            self.tree[mv as usize].remove(&mu);
            self.tree[a as usize].insert(b, w);
            self.tree[b as usize].insert(a, w);
            self.total_weight = self.total_weight - mw as u64 + w as u64;
            stats.swaps += 1;
            stats.tree_churn += 2;
            // The partition is unchanged: the DSU stays valid as-is.
        }
    }

    /// Maximum-key edge on the tree path between `a` and `b` (which must
    /// be in the same component), as a canonical `(w, u, v)` key.
    fn path_max(&mut self, a: u32, b: u32) -> (u32, u32, u32) {
        let s = self.bump_stamp(1);
        self.qa.clear();
        self.qa.push(a);
        self.mark[a as usize] = s;
        self.par[a as usize] = a;
        let mut head = 0;
        'bfs: while head < self.qa.len() {
            let x = self.qa[head];
            head += 1;
            for (&y, &wxy) in &self.tree[x as usize] {
                if self.mark[y as usize] != s {
                    self.mark[y as usize] = s;
                    self.par[y as usize] = x;
                    self.parw[y as usize] = wxy;
                    if y == b {
                        break 'bfs;
                    }
                    self.qa.push(y);
                }
            }
        }
        debug_assert_eq!(self.mark[b as usize], s, "path_max endpoints disconnected");
        let mut best = (0u32, 0u32, 0u32);
        let mut cur = b;
        let mut first = true;
        while cur != a {
            let p = self.par[cur as usize];
            let w = self.parw[cur as usize];
            let key = (w, p.min(cur), p.max(cur));
            if first || key > best {
                best = key;
                first = false;
            }
            cur = p;
        }
        best
    }

    fn do_delete(&mut self, u: u32, v: u32, stats: &mut BatchStats) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "endpoint out of range"
        );
        let Some((a, b)) = canon(u, v) else {
            return;
        };
        let Some(w) = self.nbrs[a as usize].remove(&b) else {
            return; // absent edge: no-op
        };
        self.nbrs[b as usize].remove(&a);
        self.num_edges -= 1;
        stats.deleted += 1;
        if self.tree[a as usize].remove(&b).is_none() {
            return; // non-tree edge: the forest is untouched
        }
        self.tree[b as usize].remove(&a);
        self.num_tree_edges -= 1;
        self.total_weight -= w as u64;
        stats.cuts += 1;
        stats.tree_churn += 1;
        if let Some((rw, ra, rb)) = self.replacement(a, b, stats) {
            self.tree[ra as usize].insert(rb, rw);
            self.tree[rb as usize].insert(ra, rw);
            self.num_tree_edges += 1;
            self.total_weight += rw as u64;
            stats.replacements += 1;
            stats.tree_churn += 1;
            // Replacement reconnects the cut: the partition is unchanged.
        } else {
            // The component genuinely split; rebuild the DSU lazily.
            self.dsu_stale = true;
        }
    }

    /// Cut-property step after deleting tree edge `(a, b)`: floods both
    /// sides of the cut in lockstep (cost bounded by the *smaller* side),
    /// then scans the finished side's incident edges for the lightest
    /// surviving crossing edge. Returns its canonical `(w, u, v)` triple.
    fn replacement(&mut self, a: u32, b: u32, stats: &mut BatchStats) -> Option<(u32, u32, u32)> {
        let sa = self.bump_stamp(2);
        let sb = sa + 1;
        self.qa.clear();
        self.qa.push(a);
        self.mark[a as usize] = sa;
        self.qb.clear();
        self.qb.push(b);
        self.mark[b as usize] = sb;
        let (mut ha, mut hb) = (0usize, 0usize);
        // Alternate single-vertex expansions; the first flood to exhaust
        // has fully covered its side of the cut.
        let side_stamp = loop {
            if ha >= self.qa.len() {
                break sa;
            }
            let x = self.qa[ha];
            ha += 1;
            for &y in self.tree[x as usize].keys() {
                if self.mark[y as usize] != sa {
                    self.mark[y as usize] = sa;
                    self.qa.push(y);
                }
            }
            if hb >= self.qb.len() {
                break sb;
            }
            let x = self.qb[hb];
            hb += 1;
            for &y in self.tree[x as usize].keys() {
                if self.mark[y as usize] != sb {
                    self.mark[y as usize] = sb;
                    self.qb.push(y);
                }
            }
        };
        let side = if side_stamp == sa { &self.qa } else { &self.qb };
        // Every non-tree edge connects vertices of one component, so an
        // incident edge leaving the finished side must cross the cut.
        let mut cands: Vec<(u32, u32, u32)> = Vec::new();
        for &x in side {
            for (&y, &wxy) in &self.nbrs[x as usize] {
                if self.mark[y as usize] == side_stamp || self.tree[x as usize].contains_key(&y) {
                    continue;
                }
                cands.push((wxy, x.min(y), x.max(y)));
            }
        }
        stats.candidates_scanned += cands.len();
        ecl_metrics::histogram!(DYNAMIC_REPLACEMENT_CANDIDATES, cands.len() as f64);
        pick_lightest(&cands, &mut self.wscratch)
    }

    /// Advances the visit stamp by `by`, recycling the mark array on
    /// wraparound (once per ~4 billion searches).
    fn bump_stamp(&mut self, by: u32) -> u32 {
        if self.stamp > u32::MAX - by {
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.stamp = 0;
        }
        self.stamp += by;
        self.stamp - by + 1
    }
}

/// Canonical `(min, max)` endpoint pair; `None` for self-loops.
fn canon(u: u32, v: u32) -> Option<(u32, u32)> {
    if u == v {
        None
    } else {
        Some((u.min(v), u.max(v)))
    }
}

/// Picks the minimum `(w, u, v)` key among `cands`, reusing the
/// filter-partition idea from [`crate::filter::plan_filter`] on large
/// scans: sample a weight threshold, count the light partition with the
/// shared SWAR kernel ([`ecl_graph::simd::count_lt`]), and key-compare
/// only inside it — the partition contains the global minimum whenever it
/// is non-empty, by construction of the threshold.
fn pick_lightest(cands: &[(u32, u32, u32)], ws: &mut Vec<u32>) -> Option<(u32, u32, u32)> {
    if cands.len() < FILTER_MIN_CANDIDATES {
        return cands.iter().copied().min();
    }
    ws.clear();
    ws.extend(cands.iter().map(|c| c.0));
    // Threshold just above the lightest of ~20 evenly spaced samples: any
    // weight strictly below it includes the global minimum.
    let step = (cands.len() / 20).max(1);
    let sample_min = ws.iter().step_by(step).copied().min().expect("non-empty");
    let t = sample_min.saturating_add(1);
    if ecl_graph::simd::count_lt(ws, t) > 0 {
        cands.iter().copied().filter(|c| c.0 < t).min()
    } else {
        // All sampled weights saturate u32::MAX: partitioning is moot.
        cands.iter().copied().min()
    }
}

/// Sliding-window streaming over a [`DynamicMsf`]: each pushed stream item
/// enters the window and, once the window is full, the oldest item leaves.
/// The engine edge weight for a pair is always the minimum weight among
/// the pair's live items, so duplicate stream items behave like the
/// builder's keep-the-lightest dedup over the current window.
#[derive(Debug)]
pub struct SlidingWindow {
    engine: DynamicMsf,
    capacity: usize,
    /// Live stream items, oldest first (self-loops are dropped on push).
    items: VecDeque<(u32, u32, u32)>,
    /// Pair -> weight -> multiplicity for the live items.
    live: BTreeMap<(u32, u32), BTreeMap<u32, usize>>,
}

impl SlidingWindow {
    /// Creates a window of at most `capacity` stream items over `n`
    /// vertices.
    pub fn new(n: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            engine: DynamicMsf::new(n),
            capacity,
            items: VecDeque::new(),
            live: BTreeMap::new(),
        }
    }

    /// The engine maintaining the window's MSF.
    pub fn engine(&self) -> &DynamicMsf {
        &self.engine
    }

    /// Number of live stream items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no stream item is live.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Pushes one stream item, evicting the oldest once the window is
    /// over capacity, and applies the resulting updates as one batch.
    /// Self-loops are dropped without occupying a window slot.
    pub fn push(&mut self, u: u32, v: u32, w: u32) -> BatchStats {
        let Some((a, b)) = canon(u, v) else {
            return self.engine.apply_batch(&[]);
        };
        let mut ops = Vec::new();
        self.items.push_back((a, b, w));
        *self.live.entry((a, b)).or_default().entry(w).or_insert(0) += 1;
        ops.push(UpdateOp::Insert { u: a, v: b, w });
        while self.items.len() > self.capacity {
            let (oa, ob, ow) = self.items.pop_front().expect("over-capacity window");
            let weights = self.live.get_mut(&(oa, ob)).expect("live entry for item");
            let m = weights.get_mut(&ow).expect("live weight for item");
            *m -= 1;
            if *m == 0 {
                weights.remove(&ow);
            }
            match weights.keys().next().copied() {
                None => {
                    self.live.remove(&(oa, ob));
                    ops.push(UpdateOp::Delete { u: oa, v: ob });
                }
                Some(min_w) if min_w > ow => {
                    // The evicted item held the pair's minimum: raise the
                    // engine edge to the surviving minimum.
                    ops.push(UpdateOp::Delete { u: oa, v: ob });
                    ops.push(UpdateOp::Insert {
                        u: oa,
                        v: ob,
                        w: min_w,
                    });
                }
                Some(_) => {} // an equal-or-lighter copy survives
            }
        }
        self.engine.apply_batch(&ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::MstResult;
    use crate::verify::verify_msf;
    use ecl_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds the CSR graph of a live-edge model.
    fn rebuild(n: usize, model: &BTreeMap<(u32, u32), u32>) -> CsrGraph {
        let mut b = GraphBuilder::with_capacity(n, model.len());
        for (&(u, v), &w) in model {
            b.add_edge(u, v, w);
        }
        b.build()
    }

    /// Asserts the engine's forest is bit-identical to rebuilding `model`
    /// from scratch, via the full `verify_msf` gauntlet.
    fn assert_rebuild_equivalent(m: &DynamicMsf, model: &BTreeMap<(u32, u32), u32>) {
        assert_eq!(m.num_edges(), model.len());
        let g = rebuild(m.num_vertices(), model);
        let mut in_mst = vec![false; g.num_edges()];
        for e in g.edges() {
            in_mst[e.id as usize] = m.is_tree_edge(e.src, e.dst);
        }
        let r = MstResult::from_bitmap(&g, in_mst);
        assert_eq!(r.num_edges, m.num_tree_edges());
        assert_eq!(r.total_weight, m.total_weight());
        verify_msf(&g, &r).unwrap();
        // Labels must partition exactly like the forest.
        let labels = m.labels();
        for (u, v, _) in m.tree_edges() {
            assert_eq!(labels[u as usize], labels[v as usize]);
        }
    }

    /// Applies an op to the model with the engine's exact semantics.
    fn model_apply(model: &mut BTreeMap<(u32, u32), u32>, op: UpdateOp) {
        match op {
            UpdateOp::Insert { u, v, w } => {
                if u != v {
                    let key = (u.min(v), u.max(v));
                    let e = model.entry(key).or_insert(w);
                    *e = (*e).min(w);
                }
            }
            UpdateOp::Delete { u, v } => {
                model.remove(&(u.min(v), u.max(v)));
            }
        }
    }

    #[test]
    fn insert_links_and_swaps() {
        let mut m = DynamicMsf::new(4);
        let s = m.apply_batch(&[
            UpdateOp::Insert { u: 0, v: 1, w: 4 },
            UpdateOp::Insert { u: 1, v: 2, w: 9 },
            UpdateOp::Insert { u: 2, v: 3, w: 2 },
            UpdateOp::Insert { u: 0, v: 2, w: 3 }, // displaces 1-2 (w=9)
        ]);
        assert_eq!(s.links, 3);
        assert_eq!(s.swaps, 1);
        assert_eq!(m.num_tree_edges(), 3);
        assert_eq!(m.total_weight(), 4 + 2 + 3);
        assert!(!m.is_tree_edge(1, 2));
        assert_eq!(m.edge_weight(1, 2), Some(9), "displaced edge stays live");
    }

    #[test]
    fn delete_finds_replacement() {
        let mut m = DynamicMsf::new(4);
        m.apply_batch(&[
            UpdateOp::Insert { u: 0, v: 1, w: 1 },
            UpdateOp::Insert { u: 1, v: 2, w: 2 },
            UpdateOp::Insert { u: 0, v: 2, w: 5 },
            UpdateOp::Insert { u: 2, v: 3, w: 3 },
        ]);
        assert!(!m.is_tree_edge(0, 2));
        let s = m.apply_batch(&[UpdateOp::Delete { u: 1, v: 2 }]);
        assert_eq!(s.cuts, 1);
        assert_eq!(s.replacements, 1);
        assert!(
            m.is_tree_edge(0, 2),
            "0-2 is the only surviving crossing edge"
        );
        assert_eq!(m.total_weight(), 1 + 5 + 3);
    }

    #[test]
    fn delete_without_replacement_splits() {
        let mut m = DynamicMsf::new(4);
        m.apply_batch(&[
            UpdateOp::Insert { u: 0, v: 1, w: 1 },
            UpdateOp::Insert { u: 1, v: 2, w: 2 },
        ]);
        let s = m.apply_batch(&[UpdateOp::Delete { u: 0, v: 1 }]);
        assert_eq!(s.cuts, 1);
        assert_eq!(s.replacements, 0);
        assert_eq!(m.num_tree_edges(), 1);
        let l = m.labels();
        assert_ne!(l[0], l[1], "component must have split");
        assert_eq!(l[1], l[2]);
        // Re-linking works after the lazy DSU rebuild.
        let s = m.apply_batch(&[UpdateOp::Insert { u: 0, v: 2, w: 7 }]);
        assert_eq!(s.links, 1);
        assert_eq!(m.labels()[0], m.labels()[1]);
    }

    #[test]
    fn duplicate_keeps_lightest_and_self_loops_drop() {
        let mut m = DynamicMsf::new(3);
        let mut model = BTreeMap::new();
        let ops = [
            UpdateOp::Insert { u: 0, v: 1, w: 9 },
            UpdateOp::Insert { u: 1, v: 0, w: 4 }, // lighter duplicate wins
            UpdateOp::Insert { u: 0, v: 1, w: 7 }, // heavier duplicate: no-op
            UpdateOp::Insert { u: 2, v: 2, w: 1 }, // self-loop: dropped
            UpdateOp::Delete { u: 2, v: 2 },       // self-loop delete: no-op
        ];
        for op in ops {
            model_apply(&mut model, op);
        }
        m.apply_batch(&ops);
        assert_eq!(m.edge_weight(0, 1), Some(4));
        assert_eq!(m.num_edges(), 1);
        assert_rebuild_equivalent(&m, &model);
    }

    #[test]
    fn lighter_duplicate_can_enter_the_tree() {
        // Triangle where the non-tree edge becomes the lightest.
        let mut m = DynamicMsf::new(3);
        m.apply_batch(&[
            UpdateOp::Insert { u: 0, v: 1, w: 2 },
            UpdateOp::Insert { u: 1, v: 2, w: 3 },
            UpdateOp::Insert { u: 0, v: 2, w: 9 }, // non-tree
        ]);
        assert!(!m.is_tree_edge(0, 2));
        m.apply_batch(&[UpdateOp::Insert { u: 0, v: 2, w: 1 }]);
        assert!(m.is_tree_edge(0, 2));
        assert_eq!(m.total_weight(), 1 + 2);
    }

    #[test]
    fn deleting_absent_and_non_tree_edges_is_cheap() {
        let mut m = DynamicMsf::new(3);
        m.apply_batch(&[
            UpdateOp::Insert { u: 0, v: 1, w: 1 },
            UpdateOp::Insert { u: 1, v: 2, w: 2 },
            UpdateOp::Insert { u: 0, v: 2, w: 3 },
        ]);
        let s = m.apply_batch(&[
            UpdateOp::Delete { u: 2, v: 0 }, // non-tree
            UpdateOp::Delete { u: 2, v: 0 }, // now absent
        ]);
        assert_eq!(s.deleted, 1);
        assert_eq!(s.cuts, 0);
        assert_eq!(m.num_tree_edges(), 2);
    }

    #[test]
    fn randomized_batches_stay_rebuild_equivalent() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 40usize;
        let mut m = DynamicMsf::new(n);
        let mut model: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        for _batch in 0..30 {
            let mut ops = Vec::new();
            for _ in 0..12 {
                if model.is_empty() || rng.gen_range(0..10u32) < 6 {
                    ops.push(UpdateOp::Insert {
                        u: rng.gen_range(0..n as u32),
                        v: rng.gen_range(0..n as u32),
                        w: rng.gen_range(0..20u32),
                    });
                } else {
                    // Delete a uniformly random live edge (or miss).
                    let i = rng.gen_range(0..model.len());
                    let (&(u, v), _) = model.iter().nth(i).expect("non-empty");
                    ops.push(UpdateOp::Delete { u, v });
                }
            }
            for &op in &ops {
                model_apply(&mut model, op);
            }
            m.apply_batch(&ops);
            assert_rebuild_equivalent(&m, &model);
        }
    }

    #[test]
    fn from_graph_matches_serial_kruskal() {
        let g = ecl_graph::generators::rmat(8, 4, 3);
        let m = DynamicMsf::from_graph(&g);
        let r = serial_kruskal(&g);
        assert_eq!(m.num_tree_edges(), r.num_edges);
        assert_eq!(m.total_weight(), r.total_weight);
        let mut model = BTreeMap::new();
        for (u, v, w) in g.edge_list() {
            model.insert((u, v), w);
        }
        assert_rebuild_equivalent(&m, &model);
    }

    #[test]
    fn replacement_filter_partition_agrees_with_plain_min() {
        // Force the filtered path (>= FILTER_MIN_CANDIDATES candidates):
        // a long path 0-1-...-k plus many crossing edges over one cut.
        let n = 200usize;
        let mut m = DynamicMsf::new(n);
        let mut ops: Vec<UpdateOp> = (0..n as u32 - 1)
            .map(|i| UpdateOp::Insert {
                u: i,
                v: i + 1,
                w: 0,
            })
            .collect();
        // Crossing edges over the 99-100 cut, all heavier than the path.
        for i in 0..90u32 {
            ops.push(UpdateOp::Insert {
                u: i,
                v: n as u32 - 1 - i,
                w: 1000 - i,
            });
        }
        m.apply_batch(&ops);
        let s = m.apply_batch(&[UpdateOp::Delete { u: 99, v: 100 }]);
        assert_eq!(s.replacements, 1);
        assert!(s.candidates_scanned >= FILTER_MIN_CANDIDATES);
        // Lightest crossing edge is (89, 110, 911).
        assert!(m.is_tree_edge(89, 110));
        let mut model = BTreeMap::new();
        for (u, v, w) in m.tree_edges() {
            model.insert((u, v), w);
        }
        // Sanity: the engine still verifies against its own edge set.
        assert_eq!(m.num_tree_edges(), n - 1);
        drop(model);
    }

    #[test]
    fn sliding_window_tracks_the_live_suffix() {
        // Window of 4 over a stream with duplicates: the engine must
        // always equal a rebuild of the last-4-items edge multiset.
        let stream: Vec<(u32, u32, u32)> = vec![
            (0, 1, 5),
            (1, 2, 3),
            (0, 1, 2), // lighter duplicate of 0-1
            (2, 3, 4),
            (0, 1, 9), // heavier duplicate; evicts (0,1,5)
            (3, 4, 1), // evicts (1,2,3)
            (1, 2, 8), // evicts (0,1,2): 0-1 weight must *raise* to 9
        ];
        let mut w = SlidingWindow::new(5, 4);
        let mut window: VecDeque<(u32, u32, u32)> = VecDeque::new();
        for &(u, v, wt) in &stream {
            w.push(u, v, wt);
            window.push_back((u.min(v), u.max(v), wt));
            while window.len() > 4 {
                window.pop_front();
            }
            // Model: min weight per pair over the live window items.
            let mut model: BTreeMap<(u32, u32), u32> = BTreeMap::new();
            for &(a, b, x) in &window {
                let e = model.entry((a, b)).or_insert(x);
                *e = (*e).min(x);
            }
            assert_eq!(w.len(), window.len());
            super::tests::assert_rebuild_equivalent(w.engine(), &model);
        }
        assert_eq!(w.engine().edge_weight(0, 1), Some(9));
    }

    #[test]
    fn batch_metrics_feed_the_registry() {
        let ((), snap) = ecl_metrics::with_metrics(|| {
            let mut m = DynamicMsf::new(4);
            m.apply_batch(&[
                UpdateOp::Insert { u: 0, v: 1, w: 1 },
                UpdateOp::Insert { u: 1, v: 2, w: 2 },
                UpdateOp::Insert { u: 0, v: 2, w: 3 },
            ]);
            m.apply_batch(&[UpdateOp::Delete { u: 0, v: 1 }]);
        });
        assert_eq!(snap.counter("ecl.dynamic.batches"), 2);
        let hist = snap
            .entries
            .iter()
            .find(|e| e.name == "ecl.dynamic.replacement_candidates")
            .expect("histogram exported");
        assert_eq!(hist.count, 1, "one replacement search ran");
        let churn = snap
            .entries
            .iter()
            .find(|e| e.name == "ecl.dynamic.tree_churn")
            .expect("gauge exported");
        assert_eq!(churn.gauge, 2.0, "cut + replacement in the last batch");
    }

    #[test]
    fn apply_batch_emits_a_trace_span() {
        let ((), session) = ecl_trace::with_trace(|| {
            let mut m = DynamicMsf::new(2);
            m.apply_batch(&[UpdateOp::Insert { u: 0, v: 1, w: 1 }]);
        });
        assert!(
            session.chrome_trace().contains("dynamic/apply_batch"),
            "batch span missing from trace"
        );
    }
}
