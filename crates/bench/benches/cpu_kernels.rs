//! Criterion micro-benchmarks of the chunked CPU kernels behind the
//! wall-clock MST path: weight packing, threshold counting/partitioning,
//! and the DSU find/labeling variants. Each group sets
//! `Throughput::Elements` so the report carries an elements-per-second rate
//! column, which is the number the cache-blocking parameters were tuned on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ecl_dsu::{AtomicDsu, FindPolicy};
use ecl_graph::simd;
use rand::{Rng, SeedableRng};

const N: usize = 1 << 20;

fn weights_and_ids(seed: u64) -> (Vec<u32>, Vec<u32>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let ws: Vec<u32> = (0..N).map(|_| rng.gen_range(1..100_000_000)).collect();
    let ids: Vec<u32> = (0..N as u32).collect();
    (ws, ids)
}

fn bench_pack(c: &mut Criterion) {
    let (ws, ids) = weights_and_ids(1);
    let mut group = c.benchmark_group("cpu_kernels/pack");
    group.throughput(Throughput::Elements(N as u64));
    let mut out = Vec::new();
    group.bench_function("pack_into_scalar", |b| {
        b.iter(|| {
            simd::pack_into_scalar(&ws, &ids, &mut out);
            out.last().copied()
        })
    });
    group.bench_function("pack_into_chunked", |b| {
        b.iter(|| {
            simd::pack_into_chunked(&ws, &ids, &mut out);
            out.last().copied()
        })
    });
    group.finish();
}

fn bench_count_and_partition(c: &mut Criterion) {
    let (ws, ids) = weights_and_ids(2);
    let threshold = 50_000_000;
    let mut group = c.benchmark_group("cpu_kernels/filter");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("count_lt_scalar", |b| {
        b.iter(|| simd::count_lt_scalar(&ws, threshold))
    });
    group.bench_function("count_lt_swar", |b| {
        b.iter(|| simd::count_lt_swar(&ws, threshold))
    });
    group.bench_function("has_empty_pack_scalar", |b| {
        b.iter(|| simd::has_empty_pack_scalar(&ws, &ids))
    });
    group.bench_function("has_empty_pack_swar", |b| {
        b.iter(|| simd::has_empty_pack_swar(&ws, &ids))
    });
    // The fused pack+partition pattern the PBBS path runs: one pass that
    // packs and splits into light/heavy without an intermediate edge list.
    group.bench_function("fused_pack_partition", |b| {
        let t = (threshold as u64) << 32;
        let (mut light, mut heavy) = (Vec::new(), Vec::new());
        b.iter(|| {
            light.clear();
            heavy.clear();
            for i in 0..N {
                let val = ((ws[i] as u64) << 32) | ids[i] as u64;
                if val <= t {
                    light.push(val);
                } else {
                    heavy.push(val);
                }
            }
            (light.len(), heavy.len())
        })
    });
    group.finish();
}

fn bench_dsu_find(c: &mut Criterion) {
    // A realistic mid-solve forest: random unions over n vertices, then a
    // find storm in locality order vs random order under each policy.
    let n = 1 << 18;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let dsu = AtomicDsu::new(n);
    for _ in 0..n {
        let x = rng.gen_range(0..n as u32);
        let y = rng.gen_range(0..n as u32);
        dsu.union(x, y, FindPolicy::Halving);
    }
    let random_q: Vec<u32> = (0..n as u32).map(|_| rng.gen_range(0..n as u32)).collect();
    let mut group = c.benchmark_group("cpu_kernels/dsu_find");
    group.throughput(Throughput::Elements(n as u64));
    for policy in [
        FindPolicy::NoCompression,
        FindPolicy::Halving,
        FindPolicy::BlockedHalving,
    ] {
        group.bench_with_input(
            BenchmarkId::new("find_random_order", format!("{policy:?}")),
            &random_q,
            |b, qs| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for &q in qs {
                        acc = acc.wrapping_add(dsu.find(q, policy) as u64);
                    }
                    acc
                })
            },
        );
    }
    group.bench_function("flat_labels_into", |b| {
        let mut labels = Vec::new();
        b.iter(|| {
            dsu.flat_labels_into(&mut labels);
            labels.last().copied()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pack,
    bench_count_and_partition,
    bench_dsu_find
);
criterion_main!(benches);
