//! Criterion micro-benchmarks of every MST code on representative twins —
//! statistically robust wall-clock for the CPU codes plus host-side cost of
//! driving the simulated GPU codes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecl_baselines::*;
use ecl_gpu_sim::GpuProfile;
use ecl_graph::generators::{copapers, grid2d, preferential_attachment, road_map};
use ecl_graph::CsrGraph;
use ecl_mst::{ecl_mst_cpu, serial_kruskal};

fn inputs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("grid-64", grid2d(64, 1)),
        ("road-64", road_map(64, 2.4, 2)),
        ("scale-free-4k", preferential_attachment(4096, 8, 1, 3)),
        ("copapers-2k", copapers(2048, 24, 4)),
    ]
}

fn bench_cpu_codes(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_codes");
    for (name, g) in inputs() {
        group.bench_with_input(BenchmarkId::new("ecl_mst_cpu", name), &g, |b, g| {
            b.iter(|| ecl_mst_cpu(g))
        });
        group.bench_with_input(BenchmarkId::new("serial_kruskal", name), &g, |b, g| {
            b.iter(|| serial_kruskal(g))
        });
        group.bench_with_input(BenchmarkId::new("pbbs_parallel", name), &g, |b, g| {
            b.iter(|| pbbs_parallel(g))
        });
        group.bench_with_input(BenchmarkId::new("filter_kruskal", name), &g, |b, g| {
            b.iter(|| filter_kruskal(g))
        });
        group.bench_with_input(BenchmarkId::new("lonestar_cpu", name), &g, |b, g| {
            b.iter(|| lonestar_cpu(g))
        });
        group.bench_with_input(BenchmarkId::new("uminho_cpu", name), &g, |b, g| {
            b.iter(|| uminho_cpu(g))
        });
        group.bench_with_input(BenchmarkId::new("serial_prim", name), &g, |b, g| {
            b.iter(|| serial_prim(g))
        });
    }
    group.finish();
}

fn bench_gpu_sim_host_cost(c: &mut Criterion) {
    // Host-side cost of executing the simulator (not simulated time): keeps
    // the simulation itself fast enough for the sweep binaries.
    let g = grid2d(48, 5);
    c.bench_function("gpu_sim_ecl_mst_grid48", |b| {
        b.iter(|| ecl_mst::ecl_mst_gpu(&g, GpuProfile::TITAN_V))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_cpu_codes, bench_gpu_sim_host_cost
}
criterion_main!(benches);
