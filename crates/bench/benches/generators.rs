//! Criterion micro-benchmarks of the graph substrate: generator throughput
//! and CSR construction cost (the experiment binaries regenerate the suite
//! per run, so this cost bounds their turnaround).

use criterion::{criterion_group, criterion_main, Criterion};
use ecl_graph::generators::*;
use ecl_graph::io;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.bench_function("grid2d_128", |b| b.iter(|| grid2d(128, 1)));
    group.bench_function("uniform_random_16k_d8", |b| {
        b.iter(|| uniform_random(16_384, 8.0, 2))
    });
    group.bench_function("rmat_s14_e8", |b| b.iter(|| rmat(14, 8, 3)));
    group.bench_function("kronecker_s12_e16", |b| b.iter(|| kronecker(12, 16, 4)));
    group.bench_function("road_map_128", |b| b.iter(|| road_map(128, 2.4, 5)));
    group.bench_function("preferential_16k_m8", |b| {
        b.iter(|| preferential_attachment(16_384, 8, 1, 6))
    });
    group.bench_function("copapers_8k", |b| b.iter(|| copapers(8_192, 28, 7)));
    group.finish();
}

fn bench_io(c: &mut Criterion) {
    let g = uniform_random(16_384, 8.0, 1);
    let bytes = io::to_binary(&g).unwrap();
    let mut group = c.benchmark_group("io");
    group.bench_function("to_binary_16k", |b| b.iter(|| io::to_binary(&g)));
    group.bench_function("from_binary_16k", |b| {
        b.iter(|| io::from_binary(&bytes).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_generators, bench_io
}
criterion_main!(benches);
