//! Criterion micro-benchmarks of the disjoint-set substrates: the paper's
//! find/union mix under the different compression policies (§3.2 studies
//! exactly this design space).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecl_dsu::{AtomicDsu, Compression, FindPolicy, SeqDsu, UnionPolicy};
use rand::{Rng, SeedableRng};

fn random_ops(n: usize, m: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
        .collect()
}

fn bench_seq(c: &mut Criterion) {
    let n = 100_000;
    let ops = random_ops(n, 200_000, 1);
    let mut group = c.benchmark_group("seq_dsu");
    for compression in [
        Compression::Full,
        Compression::Halving,
        Compression::Splitting,
        Compression::None,
    ] {
        group.bench_with_input(
            BenchmarkId::new("union_find", format!("{compression:?}")),
            &ops,
            |b, ops| {
                b.iter(|| {
                    let mut d = SeqDsu::with_policies(n, compression, UnionPolicy::ByRank);
                    for &(x, y) in ops {
                        d.union(x, y);
                    }
                    d.num_sets()
                })
            },
        );
    }
    group.finish();
}

fn bench_atomic(c: &mut Criterion) {
    let n = 100_000;
    let ops = random_ops(n, 200_000, 2);
    let mut group = c.benchmark_group("atomic_dsu");
    for policy in [
        FindPolicy::NoCompression,
        FindPolicy::Halving,
        FindPolicy::IntermediatePointerJumping,
    ] {
        group.bench_with_input(
            BenchmarkId::new("union_find", format!("{policy:?}")),
            &ops,
            |b, ops| {
                b.iter(|| {
                    let d = AtomicDsu::new(n);
                    for &(x, y) in ops {
                        d.union(x, y, policy);
                    }
                    d.num_sets()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_seq, bench_atomic
}
criterion_main!(benches);
