//! Criterion micro-benchmarks of the gpu-sim metering hot paths this PR
//! optimized: zero-copy span loads vs per-element loads, device-arena
//! acquire/release vs fresh allocation, and warp-aggregated vs per-task
//! atomics. These are host-cost benchmarks — the simulated clocks they
//! charge are identical either way; what differs is the wall-clock price of
//! charging them.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ecl_gpu_sim::{with_scratch, BufU32, ConstBuf, Device, GpuProfile, TaskCtx};

const N: usize = 1 << 16;
const ROW: usize = 16;

/// Per-element `ld` vs one `ld_span` borrow per row: same metered bytes,
/// but the span path returns a borrowed slice instead of copying.
fn bench_span_loads(c: &mut Criterion) {
    let buf = ConstBuf::from_vec((0..N as u32).collect());
    let mut group = c.benchmark_group("span_loads");
    group.bench_function("per_element_ld", |b| {
        b.iter(|| {
            let mut ctx = TaskCtx::default();
            let mut acc = 0u64;
            for row in 0..N / ROW {
                for i in 0..ROW {
                    acc += u64::from(buf.ld(&mut ctx, row * ROW + i));
                }
            }
            black_box((acc, ctx))
        })
    });
    group.bench_function("ld_span", |b| {
        b.iter(|| {
            let mut ctx = TaskCtx::default();
            let mut acc = 0u64;
            for row in 0..N / ROW {
                let span = buf.ld_span(&mut ctx, row * ROW, ROW);
                acc += span.iter().map(|&x| u64::from(x)).sum::<u64>();
            }
            black_box((acc, ctx))
        })
    });
    group.finish();
}

/// Pooled arena acquire/release vs allocating a fresh buffer every round —
/// the per-round cost the `DeviceArena` removes from kernel hot loops.
fn bench_arena(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena");
    group.bench_function("fresh_alloc", |b| {
        b.iter(|| {
            let buf = BufU32::new(N, 0);
            buf.host_write(N - 1, 1);
            black_box(buf.host_read(N - 1))
        })
    });
    group.bench_function("acquire_release", |b| {
        b.iter(|| {
            with_scratch(|s| {
                let buf = s.arena.acquire_u32(N, 0);
                buf.host_write(N - 1, 1);
                let v = buf.host_read(N - 1);
                s.arena.release_u32(buf);
                black_box(v)
            })
        })
    });
    // What the kernel hot loops actually use: pooled reuse with no fill
    // (the kernel fully writes the buffer before reading it).
    group.bench_function("acquire_release_uninit", |b| {
        b.iter(|| {
            with_scratch(|s| {
                let buf = s.arena.acquire_u32_uninit(N);
                buf.host_write(N - 1, 1);
                let v = buf.host_read(N - 1);
                s.arena.release_u32(buf);
                black_box(v)
            })
        })
    });
    group.finish();
}

/// Per-task `atomic_add` vs `atomic_add_aggregated` inside a real launch:
/// aggregation charges one atomic per warp instead of one per task.
fn bench_atomics(c: &mut Criterion) {
    let mut group = c.benchmark_group("atomics");
    group.bench_function("per_task_add", |b| {
        b.iter(|| {
            let mut dev = Device::new(GpuProfile::TITAN_V);
            let counter = BufU32::new(1, 0);
            let _ = dev.launch("count", N, |_, ctx| {
                counter.atomic_add(ctx, 0, 1);
            });
            black_box(counter.host_read(0))
        })
    });
    group.bench_function("aggregated_add", |b| {
        b.iter(|| {
            let mut dev = Device::new(GpuProfile::TITAN_V);
            let counter = BufU32::new(1, 0);
            let _ = dev.launch("count", N, |_, ctx| {
                counter.atomic_add_aggregated(ctx, 0, 1);
            });
            black_box(counter.host_read(0))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_span_loads, bench_arena, bench_atomics);
criterion_main!(benches);
