//! Criterion micro-benchmark of CSR construction throughput (edges/second):
//! the chunk-parallel [`GraphBuilder::build_chunked`] against the reference
//! [`GraphBuilder::build_serial`], on the Small-scale uniform-random input
//! (`build` itself dispatches between them on the pool size).
//! This is the cost the pipelined suite build fans out, so its throughput
//! bounds every experiment binary's prepare phase.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ecl_graph::generators::uniform_random;
use ecl_graph::GraphBuilder;

fn bench_builder(c: &mut Criterion) {
    let g = uniform_random(1 << 15, 8.0, 42);
    // One direction per undirected edge, as the builder ingests them.
    let triples: Vec<(u32, u32, u32)> = g
        .edges()
        .filter(|e| e.src < e.dst)
        .map(|e| (e.src, e.dst, e.weight))
        .collect();
    let num_vertices = 1usize << 15;

    let filled = || {
        let mut b = GraphBuilder::with_capacity(num_vertices, triples.len());
        for &(u, v, w) in &triples {
            b.add_edge(u, v, w);
        }
        b
    };

    let mut group = c.benchmark_group("builder");
    group.throughput(Throughput::Elements(triples.len() as u64));
    group.bench_function("build_chunked_32k_d8", |b| {
        b.iter_batched(filled, |b| b.build_chunked(), BatchSize::LargeInput)
    });
    group.bench_function("build_serial_32k_d8", |b| {
        b.iter_batched(filled, |b| b.build_serial(), BatchSize::LargeInput)
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_builder
}
criterion_main!(benches);
