//! Experiment harness for the ECL-MST reproduction.
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index); this library holds the shared machinery: code registry, repeated
//! timing with median selection ("We repeated each experiment 9 times ...
//! and report the median computation time"), geometric means over MSF/MST
//! inputs, and plain-text table/chart rendering.

pub mod chart;
pub mod dynamic;
pub mod experiments;
pub mod registry;
pub mod runner;
pub mod sharded;
pub mod simcache;
pub mod snapshot;
pub mod table;

pub use dynamic::{measure_dynamic_updates, DynamicUpdatesReport};
pub use experiments::{
    measure_matrix, run_system_table, run_throughput_figure, Matrix, SystemTableArgs,
};
pub use registry::{all_codes, CodeKind, MstCode, Timing};
pub use runner::{
    geomean, median_time, profile_path, trace_from_args, wall, with_optional_trace,
    with_optional_trace_profile, Repeats,
};
pub use sharded::{measure_sharded, sharded_scales_from_args, ShardedCell};
