//! Timing helpers.

use std::time::Instant;

/// How many repetitions to run per (code, input) cell. The paper uses 9;
/// the binaries accept `--repeats N` to trade accuracy for turnaround.
#[derive(Debug, Clone, Copy)]
pub struct Repeats(pub usize);

impl Default for Repeats {
    fn default() -> Self {
        Repeats(9)
    }
}

impl Repeats {
    /// Parses `--repeats N` from an argument list (defaults to 9).
    pub fn from_args(args: &[String]) -> Self {
        args.iter()
            .position(|a| a == "--repeats")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .map(Repeats)
            .unwrap_or_default()
    }
}

/// Parses `--scale tiny|small|medium` (default small) from arguments.
pub fn scale_from_args(args: &[String]) -> ecl_graph::SuiteScale {
    use ecl_graph::SuiteScale::*;
    match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("tiny") => Tiny,
        Some("medium") => Medium,
        Some("small") | None => Small,
        Some(other) => panic!("unknown --scale '{other}' (tiny|small|medium)"),
    }
}

/// True when `--sanitize` is present in the argument list.
pub fn sanitize_from_args(args: &[String]) -> bool {
    args.iter().any(|a| a == "--sanitize")
}

/// Runs `f` under a gpu-sim sanitizer session when `enabled`; otherwise
/// calls it directly. The report is printed to stderr afterwards and the
/// process exits nonzero if any violation was recorded, so `--sanitize`
/// runs double as a correctness gate in CI.
pub fn with_optional_sanitizer<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    if !enabled {
        return f();
    }
    let (out, report) = ecl_gpu_sim::with_sanitizer(f);
    eprintln!("{report}");
    if !report.is_clean() {
        eprintln!(
            "--sanitize: {} violation(s) detected; failing the run",
            report.violations().len()
        );
        std::process::exit(1);
    }
    out
}

/// Wall-clock seconds of one invocation (for the real CPU codes).
pub fn wall<T>(f: impl FnOnce() -> T) -> f64 {
    let start = Instant::now();
    let out = f();
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(out);
    secs
}

/// Runs `f` `repeats` times and returns the median of the reported seconds
/// (the paper's protocol), or `None` if any run declines (NC).
pub fn median_time(repeats: Repeats, mut f: impl FnMut() -> Option<f64>) -> Option<f64> {
    let mut times = Vec::with_capacity(repeats.0);
    for _ in 0..repeats.0.max(1) {
        times.push(f()?);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    Some(times[times.len() / 2])
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Geometric mean of positive values; `None` when empty.
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_picks_middle() {
        let mut seq = [5.0, 1.0, 3.0].into_iter();
        let m = median_time(Repeats(3), || seq.next());
        assert_eq!(m, Some(3.0));
    }

    #[test]
    fn median_propagates_nc() {
        let mut calls = 0;
        let m = median_time(Repeats(5), || {
            calls += 1;
            None
        });
        assert_eq!(m, None);
        assert_eq!(calls, 1, "should stop on first NC");
    }

    #[test]
    fn geomean_of_known_values() {
        let g = geomean(&[1.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-9);
        assert!(geomean(&[]).is_none());
    }

    #[test]
    fn wall_measures_something() {
        let t = wall(|| std::thread::sleep(std::time::Duration::from_millis(5)));
        assert!(t >= 0.004);
    }

    #[test]
    fn repeats_parses_args() {
        let args: Vec<String> = ["--repeats", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(Repeats::from_args(&args).0, 3);
        assert_eq!(Repeats::from_args(&[]).0, 9);
    }
}
