//! Timing helpers.

use std::path::{Path, PathBuf};
use std::time::Instant;

/// How many repetitions to run per (code, input) cell. The paper uses 9;
/// the binaries accept `--repeats N` to trade accuracy for turnaround.
#[derive(Debug, Clone, Copy)]
pub struct Repeats(pub usize);

impl Default for Repeats {
    fn default() -> Self {
        Repeats(9)
    }
}

impl Repeats {
    /// Parses `--repeats N` from an argument list (defaults to 9).
    pub fn from_args(args: &[String]) -> Self {
        args.iter()
            .position(|a| a == "--repeats")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .map(Repeats)
            .unwrap_or_default()
    }
}

/// Parses `--scale tiny|small|medium|large|huge` (default small) from
/// arguments. Unknown values — including a trailing `--scale` with no
/// value — are a hard error naming the valid scales, never a silent
/// default.
pub fn scale_from_args(args: &[String]) -> ecl_graph::SuiteScale {
    use ecl_graph::SuiteScale::*;
    match args.iter().position(|a| a == "--scale") {
        None => Small,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("tiny") => Tiny,
            Some("small") => Small,
            Some("medium") => Medium,
            Some("large") => Large,
            Some("huge") => Huge,
            other => {
                eprintln!(
                    "error: unknown --scale '{}' (valid scales: tiny|small|medium|large|huge)",
                    other.unwrap_or("<missing>")
                );
                std::process::exit(2);
            }
        },
    }
}

/// True when `--sanitize` is present in the argument list.
pub fn sanitize_from_args(args: &[String]) -> bool {
    args.iter().any(|a| a == "--sanitize")
}

/// Runs `f` under a gpu-sim sanitizer session when `enabled`; otherwise
/// calls it directly. The report is printed to stderr afterwards and the
/// process exits nonzero if any violation was recorded, so `--sanitize`
/// runs double as a correctness gate in CI.
pub fn with_optional_sanitizer<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    if !enabled {
        return f();
    }
    let (out, report) = ecl_gpu_sim::with_sanitizer(f);
    eprintln!("{report}");
    if !report.is_clean() {
        eprintln!(
            "--sanitize: {} violation(s) detected; failing the run",
            report.violations().len()
        );
        std::process::exit(1);
    }
    out
}

/// Parses `--trace [PATH]` into the Chrome-trace output path. `--trace`
/// without a path (or the ambient `ECL_TRACE=1`) defaults to `trace.json`.
/// `None` means tracing stays off.
pub fn trace_from_args(args: &[String]) -> Option<PathBuf> {
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let path = args
            .get(i + 1)
            .filter(|s| !s.starts_with("--"))
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("trace.json"));
        return Some(path);
    }
    match std::env::var("ECL_TRACE") {
        Ok(v) if !v.is_empty() && v != "0" => Some(PathBuf::from("trace.json")),
        _ => None,
    }
}

/// Sibling profile-JSON path for a trace path: `out.json` →
/// `out.profile.json`.
pub fn profile_path(trace: &Path) -> PathBuf {
    let stem = trace
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("trace");
    trace.with_file_name(format!("{stem}.profile.json"))
}

/// Runs `f` under an ecl-trace session when `path` is set; otherwise calls
/// it directly. On a traced run, writes the Chrome trace JSON to `path` and
/// the machine-readable profile next to it, prints the per-round and
/// per-kernel tables to stderr (stdout stays parseable for `--csv` pipes),
/// and returns the profile alongside `f`'s result.
pub fn with_optional_trace_profile<R>(
    path: Option<&Path>,
    f: impl FnOnce() -> R,
) -> (R, Option<ecl_trace::Profile>) {
    let (out, pb) = with_optional_trace_breakdown(path, f);
    (out, pb.map(|(p, _)| p))
}

/// [`with_optional_trace_profile`] that also returns the session's
/// wall-clock span breakdown (per-kernel self/total host seconds) — the
/// per-kernel cost table the bench snapshot embeds for the CPU codes.
pub fn with_optional_trace_breakdown<R>(
    path: Option<&Path>,
    f: impl FnOnce() -> R,
) -> (R, Option<(ecl_trace::Profile, Vec<ecl_trace::WallKernel>)>) {
    let Some(path) = path else { return (f(), None) };
    let (out, session) = ecl_trace::with_trace(f);
    let profile = session.profile();
    let breakdown = session.wall_breakdown();
    eprint!("{}", profile.round_table());
    eprint!("{}", profile.kernel_table());
    std::fs::write(path, session.chrome_trace())
        .unwrap_or_else(|e| panic!("--trace: cannot write {}: {e}", path.display()));
    let pp = profile_path(path);
    std::fs::write(&pp, profile.to_json())
        .unwrap_or_else(|e| panic!("--trace: cannot write {}: {e}", pp.display()));
    eprintln!("--trace: wrote {} and {}", path.display(), pp.display());
    (out, Some((profile, breakdown)))
}

/// [`with_optional_trace_profile`] for callers that don't need the profile.
pub fn with_optional_trace<R>(path: Option<&Path>, f: impl FnOnce() -> R) -> R {
    with_optional_trace_profile(path, f).0
}

/// Parses `--metrics [PATH]` into the metrics JSON output path. `--metrics`
/// without a path (or the ambient `ECL_METRICS=1`) defaults to
/// `metrics.json`. `None` means the telemetry registry stays off.
pub fn metrics_from_args(args: &[String]) -> Option<PathBuf> {
    if let Some(i) = args.iter().position(|a| a == "--metrics") {
        let path = args
            .get(i + 1)
            .filter(|s| !s.starts_with("--"))
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("metrics.json"));
        return Some(path);
    }
    match std::env::var("ECL_METRICS") {
        Ok(v) if !v.is_empty() && v != "0" => Some(PathBuf::from("metrics.json")),
        _ => None,
    }
}

/// Sibling Prometheus text path for a metrics path: `out/metrics.json` →
/// `out/metrics.prom`.
pub fn prom_path(metrics: &Path) -> PathBuf {
    metrics.with_extension("prom")
}

/// Runs `f` under an ecl-metrics session when `path` is set; otherwise
/// calls it directly. On a metered run, writes the byte-stable
/// `ecl-metrics/1` JSON export to `path`, the Prometheus text exposition
/// next to it, and returns the snapshot alongside `f`'s result.
pub fn with_optional_metrics<R>(
    path: Option<&Path>,
    f: impl FnOnce() -> R,
) -> (R, Option<ecl_metrics::Snapshot>) {
    let Some(path) = path else { return (f(), None) };
    let (out, snap) = ecl_metrics::with_metrics(f);
    std::fs::write(path, ecl_metrics::json::to_json(&snap))
        .unwrap_or_else(|e| panic!("--metrics: cannot write {}: {e}", path.display()));
    let pp = prom_path(path);
    std::fs::write(&pp, ecl_metrics::prom::to_text(&snap))
        .unwrap_or_else(|e| panic!("--metrics: cannot write {}: {e}", pp.display()));
    eprintln!("--metrics: wrote {} and {}", path.display(), pp.display());
    (out, Some(snap))
}

/// Wall-clock seconds of one invocation (for the real CPU codes).
pub fn wall<T>(f: impl FnOnce() -> T) -> f64 {
    let start = Instant::now();
    let out = f();
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(out);
    secs
}

/// Runs `f` `repeats` times and returns the median of the reported seconds
/// (the paper's protocol), or `None` if any run declines (NC).
pub fn median_time(repeats: Repeats, mut f: impl FnMut() -> Option<f64>) -> Option<f64> {
    let mut times = Vec::with_capacity(repeats.0);
    for _ in 0..repeats.0.max(1) {
        times.push(f()?);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    Some(times[times.len() / 2])
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Resets the kernel's `VmHWM` high-water mark (writes `5` to
/// `/proc/self/clear_refs`), so a following [`peak_rss_bytes`] read
/// reflects only work done after this call. Returns `false` where the
/// kernel interface is unavailable — callers must then treat the next
/// peak reading as process-lifetime, not per-measurement.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Geometric mean of positive values; `None` when empty.
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_picks_middle() {
        let mut seq = [5.0, 1.0, 3.0].into_iter();
        let m = median_time(Repeats(3), || seq.next());
        assert_eq!(m, Some(3.0));
    }

    #[test]
    fn median_propagates_nc() {
        let mut calls = 0;
        let m = median_time(Repeats(5), || {
            calls += 1;
            None
        });
        assert_eq!(m, None);
        assert_eq!(calls, 1, "should stop on first NC");
    }

    #[test]
    fn geomean_of_known_values() {
        let g = geomean(&[1.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-9);
        assert!(geomean(&[]).is_none());
    }

    #[test]
    fn wall_measures_something() {
        let t = wall(|| std::thread::sleep(std::time::Duration::from_millis(5)));
        assert!(t >= 0.004);
    }

    #[test]
    fn trace_flag_parses_with_and_without_path() {
        let to_args = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            trace_from_args(&to_args(&["--trace", "out.json"])),
            Some(PathBuf::from("out.json"))
        );
        // A following flag is not a path.
        assert_eq!(
            trace_from_args(&to_args(&["--trace", "--csv"])),
            Some(PathBuf::from("trace.json"))
        );
        assert_eq!(
            trace_from_args(&to_args(&["--trace"])),
            Some(PathBuf::from("trace.json"))
        );
        // (No --trace and no ECL_TRACE in the test env: off.)
        if std::env::var("ECL_TRACE").is_err() {
            assert_eq!(trace_from_args(&[]), None);
        }
    }

    #[test]
    fn profile_path_keeps_directory_and_stem() {
        assert_eq!(
            profile_path(Path::new("out/t3.json")),
            PathBuf::from("out/t3.profile.json")
        );
        assert_eq!(
            profile_path(Path::new("trace.json")),
            PathBuf::from("trace.profile.json")
        );
    }

    #[test]
    fn untraced_call_returns_no_profile() {
        let (v, p) = with_optional_trace_profile(None, || 7);
        assert_eq!(v, 7);
        assert!(p.is_none());
    }

    #[test]
    fn metrics_flag_parses_with_and_without_path() {
        let to_args = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            metrics_from_args(&to_args(&["--metrics", "m.json"])),
            Some(PathBuf::from("m.json"))
        );
        assert_eq!(
            metrics_from_args(&to_args(&["--metrics", "--csv"])),
            Some(PathBuf::from("metrics.json"))
        );
        if std::env::var("ECL_METRICS").is_err() {
            assert_eq!(metrics_from_args(&[]), None);
        }
        assert_eq!(
            prom_path(Path::new("out/metrics.json")),
            PathBuf::from("out/metrics.prom")
        );
    }

    #[test]
    fn unmetered_call_returns_no_snapshot() {
        let (v, s) = with_optional_metrics(None, || 7);
        assert_eq!(v, 7);
        assert!(s.is_none());
    }

    #[test]
    fn repeats_parses_args() {
        let args: Vec<String> = ["--repeats", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(Repeats::from_args(&args).0, 3);
        assert_eq!(Repeats::from_args(&[]).0, 9);
    }
}
