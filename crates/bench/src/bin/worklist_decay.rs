//! Worklist-decay analysis: §3.1 motivates the unified parallelization with
//! Borůvka's "exponentially decreasing parallelism" and argues ECL-MST's
//! chunked processing "either includes many edges in the MST or discards
//! many edges from consideration in each iteration". This binary prints the
//! per-iteration worklist sizes (the kernel-1 task counts from the device's
//! kernel log) so that decay is visible input by input.
//!
//! Usage: `worklist_decay [--scale tiny|small|medium|large]`

use ecl_gpu_sim::GpuProfile;
use ecl_graph::suite;
use ecl_mst::{ecl_mst_gpu_with, OptConfig};
use ecl_mst_bench::chart::bar_chart;
use ecl_mst_bench::runner::scale_from_args;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    println!("Worklist size per kernel-1 iteration (scale {scale:?})\n");
    for e in suite(scale) {
        let run = ecl_mst_gpu_with(&e.graph, &OptConfig::full(), GpuProfile::RTX_3080_TI);
        let sizes: Vec<u64> = run
            .records
            .iter()
            .filter(|r| r.name == "kernel1")
            .map(|r| r.stats.tasks)
            .collect();
        println!(
            "== {} ({} edges, {} phase{}) ==",
            e.name,
            e.graph.num_edges(),
            run.phases,
            if run.phases == 1 { "" } else { "s" }
        );
        let series: Vec<(String, f64)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (format!("iter {:>2}", i + 1), s as f64))
            .collect();
        print!("{}", bar_chart(&series, 46, "edges"));
        // Per-iteration survival ratio: how much of the list lives on.
        let ratios: Vec<String> = sizes
            .windows(2)
            .map(|w| format!("{:.0}%", 100.0 * w[1] as f64 / w[0].max(1) as f64))
            .collect();
        println!("survival per step: {}\n", ratios.join(" "));
    }
}
