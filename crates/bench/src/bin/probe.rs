//! Cost-model calibration probe: prints simulated times per code and the
//! per-kernel breakdown for a few suite graphs. Not part of the paper's
//! experiment set — a development tool.

use ecl_baselines::*;
use ecl_gpu_sim::GpuProfile;
use ecl_graph::{suite, SuiteScale};
use ecl_mst::{deopt_ladder, ecl_mst_gpu_with, OptConfig};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("small") => SuiteScale::Small,
        _ => SuiteScale::Tiny,
    };
    let prof = GpuProfile::TITAN_V;
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "graph", "ecl_us", "memcpy", "jucele", "gunrock", "cugraph", "uminho", "iters"
    );
    for e in suite(scale) {
        let ecl = ecl_mst_gpu_with(&e.graph, &OptConfig::full(), prof);
        let jucele = jucele_gpu(&e.graph, prof)
            .map(|r| r.kernel_seconds)
            .unwrap_or(f64::NAN);
        let gunrock = gunrock_gpu(&e.graph, prof)
            .map(|r| r.kernel_seconds)
            .unwrap_or(f64::NAN);
        let cg = cugraph_gpu(&e.graph, prof).kernel_seconds;
        let um = uminho_gpu(&e.graph, prof).kernel_seconds;
        println!(
            "{:<18} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9}",
            e.name,
            ecl.kernel_seconds * 1e6,
            ecl.memcpy_seconds * 1e6,
            jucele * 1e6,
            gunrock * 1e6,
            cg * 1e6,
            um * 1e6,
            ecl.iterations,
        );
    }
    // Kernel breakdown on one filtered + one unfiltered graph.
    for pick in ["coPapersDBLP", "2d-2e20.sym", "r4-2e23.sym"] {
        let e = suite(scale).into_iter().find(|e| e.name == pick).unwrap();
        let run = ecl_mst_gpu_with(&e.graph, &OptConfig::full(), prof);
        let total: f64 = run.records.iter().map(|r| r.sim_seconds).sum();
        print!("{pick}: ");
        let mut acc: Vec<(String, f64)> = Vec::new();
        for r in &run.records {
            match acc.iter_mut().find(|(n, _)| *n == r.name) {
                Some((_, t)) => *t += r.sim_seconds,
                None => acc.push((r.name.clone(), r.sim_seconds)),
            }
        }
        for (name, t) in acc {
            print!("{name}={:.0}% ", 100.0 * t / total);
        }
        println!();
    }
    // Deopt ladder geomean on MST inputs.
    let entries: Vec<_> = suite(scale)
        .into_iter()
        .filter(|e| e.paper.ccs == 1)
        .collect();
    for (name, cfg) in deopt_ladder() {
        let times: Vec<f64> = entries
            .iter()
            .map(|e| ecl_mst_gpu_with(&e.graph, &cfg, prof).kernel_seconds)
            .collect();
        let gm = (times.iter().map(|t| t.ln()).sum::<f64>() / times.len() as f64).exp();
        println!("{name:<22} geomean {:.1} us", gm * 1e6);
    }
}
