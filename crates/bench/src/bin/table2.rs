//! Regenerates **Table 2** (information about the input graphs): the
//! properties of the synthetic twins side by side with the paper's
//! reference values for the originals.
//!
//! Usage: `table2 [--scale tiny|small|medium|large]`

use ecl_graph::stats::GraphStats;
use ecl_graph::suite;
use ecl_mst_bench::runner::scale_from_args;
use ecl_mst_bench::table::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let mut t = Table::new([
        "Graph Name",
        "Edges",
        "Vertices",
        "Type",
        "CCs",
        "d-avg",
        "d-max",
        "paper-Edges",
        "paper-CCs",
        "paper-d-avg",
    ]);
    for e in suite(scale) {
        let s = GraphStats::compute(&e.graph);
        t.row([
            e.name.to_string(),
            s.arcs.to_string(),
            s.vertices.to_string(),
            e.kind.to_string(),
            s.connected_components.to_string(),
            format!("{:.1}", s.avg_degree),
            s.max_degree.to_string(),
            e.paper.arcs.to_string(),
            e.paper.ccs.to_string(),
            format!("{:.1}", e.paper.d_avg),
        ]);
    }
    println!("Table 2: input graphs at scale {scale:?} (twin vs paper original)\n");
    print!("{}", t.render());
}
