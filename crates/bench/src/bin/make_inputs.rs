//! Writes the 17-graph twin suite to disk in the ECL binary CSR format —
//! the analogue of the artifact's `set_up.sh`, which downloads the inputs
//! "and converts them into the various needed formats". Reads each file
//! back and re-validates it before reporting success.
//!
//! Usage: `make_inputs [--scale tiny|small|medium|large] [--dir PATH]`

use ecl_graph::{io, suite};
use ecl_mst_bench::runner::scale_from_args;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let dir: PathBuf = args
        .iter()
        .position(|a| a == "--dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("inputs"));
    std::fs::create_dir_all(&dir).expect("create output directory");

    let mut total_bytes = 0u64;
    for e in suite(scale) {
        let path = dir.join(format!("{}.eclg", e.name));
        io::write_binary(&e.graph, &path).expect("write");
        let back = io::read_binary(&path).expect("read back");
        assert_eq!(back, e.graph, "{} round-trip", e.name);
        let bytes = std::fs::metadata(&path).expect("stat").len();
        total_bytes += bytes;
        println!(
            "{:<20} {:>12} bytes  ({} vertices, {} edges)",
            e.name,
            bytes,
            e.graph.num_vertices(),
            e.graph.num_edges()
        );
    }
    println!(
        "\nwrote 17 inputs at scale {scale:?} to {} ({:.1} MiB total), all verified",
        dir.display(),
        total_bytes as f64 / (1 << 20) as f64
    );
}
