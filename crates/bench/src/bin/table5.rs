//! Regenerates **Table 5** (computation times when gradually removing
//! performance optimizations): the nine-rung cumulative de-optimization
//! ladder on the single-component inputs, System 2 profile (the paper only
//! presents System 2 "as it has the faster GPU").
//!
//! Usage: `table5 [--scale tiny|small|medium|large] [--csv]`
//!
//! Every cell is a simulated clock — a bit-deterministic pure function of
//! (graph, config, profile) — so each is evaluated exactly once; there is
//! no repeat/median protocol to configure here.

use ecl_gpu_sim::GpuProfile;
use ecl_graph::suite;
use ecl_mst::{deopt_ladder, ecl_mst_gpu_with};
use ecl_mst_bench::runner::{geomean, scale_from_args, trace_from_args, with_optional_trace};
use ecl_mst_bench::simcache;
use ecl_mst_bench::table::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let profile = GpuProfile::RTX_3080_TI;
    let ladder = deopt_ladder();

    let entries: Vec<_> = suite(scale)
        .into_iter()
        .filter(|e| e.is_mst_input()) // Table 5 shows only single-CC inputs
        .collect();

    let mut header = vec!["Input".to_string()];
    header.extend(ladder.iter().map(|(name, _)| name.to_string()));
    let mut t = Table::new(header);

    let mut per_rung: Vec<Vec<f64>> = vec![Vec::new(); ladder.len()];
    let trace = trace_from_args(&args);
    with_optional_trace(trace.as_deref(), || {
        for e in &entries {
            eprintln!("measuring {} ...", e.name);
            let mut cells = vec![e.name.to_string()];
            for (r, (_, cfg)) in ladder.iter().enumerate() {
                // Simulated clocks are bit-deterministic, so each ladder
                // cell is evaluated once (and replayed across binaries
                // when the ECL_SIM_CACHE store is on — fig5 retimes these
                // exact cells).
                let s = simcache::sim_cell(
                    "eclmst",
                    &format!("{cfg:?}|{}", profile.name),
                    &e.graph,
                    || ecl_mst_gpu_with(&e.graph, cfg, profile).kernel_seconds,
                );
                per_rung[r].push(s);
                cells.push(format!("{s:.6}"));
            }
            t.row(cells);
        }
    });
    let mut cells = vec!["MST GeoMean".to_string()];
    for times in &per_rung {
        cells.push(format!("{:.6}", geomean(times).expect("non-empty")));
    }
    t.row(cells);

    println!(
        "Table 5: de-optimization ladder, simulated {} (scale {scale:?}, deterministic)\n",
        profile.name
    );
    if args.iter().any(|x| x == "--csv") {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }

    // §5.3-style per-step percentage summary.
    println!("\nAdded runtime per removed optimization (geomean):");
    let gm: Vec<f64> = per_rung.iter().map(|ts| geomean(ts).unwrap()).collect();
    for i in 1..gm.len() {
        println!(
            "  {:<22} {:>+6.0}%",
            ladder[i].0,
            100.0 * (gm[i] / gm[i - 1] - 1.0)
        );
    }
    println!(
        "  all optimizations together: {:.1}x speedup",
        gm[gm.len() - 1] / gm[0]
    );
}
