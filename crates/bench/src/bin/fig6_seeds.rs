//! Regenerates **Figure 6** (throughput variability of ECL-MST with
//! different random seeds): runs the full code under many filter-sampling
//! seeds per input and prints the box-and-whisker five-number summary.
//! §5.4 runs 99 seeds; `--seeds N` overrides.
//!
//! Usage: `fig6_seeds [--scale tiny|small|medium|large] [--seeds N]`

use ecl_gpu_sim::GpuProfile;
use ecl_graph::suite;
use ecl_mst::filter::{plan_filter, FilterPlan};
use ecl_mst::{ecl_mst_gpu_with, OptConfig};
use ecl_mst_bench::chart::{box_row, five_num};
use ecl_mst_bench::runner::{scale_from_args, trace_from_args, with_optional_trace};
use ecl_mst_bench::simcache;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let seeds: u64 = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(99);
    let profile = GpuProfile::RTX_3080_TI;

    println!(
        "Figure 6: throughput variability over {seeds} filter-sampling seeds (scale {scale:?})\n"
    );
    let trace = trace_from_args(&args);
    with_optional_trace(trace.as_deref(), || {
        for e in suite(scale) {
            eprintln!("measuring {} ...", e.name);
            let arcs = e.graph.num_arcs() as f64;
            // The seed's entire influence on a run is the filter plan it
            // samples (`plan_filter` is its only consumer), so the run is a
            // pure function of (graph, plan, profile): seeds that draw the
            // same 20-sample threshold replay the same bit-deterministic
            // simulation. The 99 seeds collapse to one simulation per
            // distinct plan — on average-degree < 4 inputs that is a single
            // SinglePhase cell (§3.2: no filtering), matching the closing
            // note's zero spread.
            let c = OptConfig::full().filter_c;
            let mut by_plan: Vec<(FilterPlan, f64)> = Vec::new();
            let mut tputs: Vec<f64> = Vec::with_capacity(seeds as usize);
            for seed in 0..seeds {
                let plan = plan_filter(&e.graph, c, seed);
                let t = match by_plan.iter().find(|(p, _)| *p == plan) {
                    Some((_, t)) => *t,
                    None => {
                        let cfg = OptConfig::full().with_seed(seed);
                        let s = simcache::sim_cell(
                            "eclmst-plan",
                            &format!("{plan:?}|{}", profile.name),
                            &e.graph,
                            || ecl_mst_gpu_with(&e.graph, &cfg, profile).kernel_seconds,
                        );
                        let t = arcs / s / 1e6;
                        by_plan.push((plan, t));
                        t
                    }
                };
                tputs.push(t);
            }
            let f = five_num(&tputs);
            let spread = 100.0 * (f.max - f.min) / f.median;
            println!(
                "{}   (spread {spread:.1}% of median)",
                box_row(e.name, &f, "Medges/s")
            );
        }
    });
    println!(
        "\nInputs with average degree < 4 never use the filter threshold, so\n\
         their spread is zero (the simulation is otherwise deterministic);\n\
         the wide boxes belong to the dense and scale-free inputs, led by\n\
         the kron/coPapersDBLP twins — the paper's Figure 6 pattern."
    );
}
