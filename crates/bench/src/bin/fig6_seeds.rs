//! Regenerates **Figure 6** (throughput variability of ECL-MST with
//! different random seeds): runs the full code under many filter-sampling
//! seeds per input and prints the box-and-whisker five-number summary.
//! §5.4 runs 99 seeds; `--seeds N` overrides.
//!
//! Usage: `fig6_seeds [--scale tiny|small|medium] [--seeds N]`

use ecl_gpu_sim::GpuProfile;
use ecl_graph::suite;
use ecl_mst::{ecl_mst_gpu_with, OptConfig};
use ecl_mst_bench::chart::{box_row, five_num};
use ecl_mst_bench::runner::{scale_from_args, trace_from_args, with_optional_trace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let seeds: u64 = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(99);
    let profile = GpuProfile::RTX_3080_TI;

    println!(
        "Figure 6: throughput variability over {seeds} filter-sampling seeds (scale {scale:?})\n"
    );
    let trace = trace_from_args(&args);
    with_optional_trace(trace.as_deref(), || {
        for e in suite(scale) {
            eprintln!("measuring {} ...", e.name);
            let arcs = e.graph.num_arcs() as f64;
            let tputs: Vec<f64> = (0..seeds)
                .map(|seed| {
                    let run =
                        ecl_mst_gpu_with(&e.graph, &OptConfig::full().with_seed(seed), profile);
                    arcs / run.kernel_seconds / 1e6
                })
                .collect();
            let f = five_num(&tputs);
            let spread = 100.0 * (f.max - f.min) / f.median;
            println!(
                "{}   (spread {spread:.1}% of median)",
                box_row(e.name, &f, "Medges/s")
            );
        }
    });
    println!(
        "\nInputs with average degree < 4 never use the filter threshold, so\n\
         their spread is zero (the simulation is otherwise deterministic);\n\
         the wide boxes belong to the dense and scale-free inputs, led by\n\
         the kron/coPapersDBLP twins — the paper's Figure 6 pattern."
    );
}
