//! Regenerates the **§5.1 profiling claims**: per-kernel share of the total
//! simulated runtime (the paper: init ≈ 40%, kernel 1 ≈ 35%, kernels 2–3
//! ≈ 12% each) and per-input iteration counts (the paper: 4–15 launches of
//! the computation kernels; init launched twice when filtering).
//!
//! Usage: `kernel_profile [--scale tiny|small|medium]`

use ecl_gpu_sim::GpuProfile;
use ecl_graph::suite;
use ecl_mst::{ecl_mst_gpu_with, OptConfig};
use ecl_mst_bench::runner::scale_from_args;
use ecl_mst_bench::table::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let profile = GpuProfile::RTX_3080_TI;
    let kernels = ["setup", "init", "kernel1", "kernel2", "kernel3"];

    let mut t = Table::new([
        "Input", "setup%", "init%", "kernel1%", "kernel2%", "kernel3%", "iters", "phases",
    ]);
    let mut sums = [0.0f64; 5];
    let mut count = 0usize;
    for e in suite(scale) {
        let run = ecl_mst_gpu_with(&e.graph, &OptConfig::full(), profile);
        let total: f64 = run.records.iter().map(|r| r.sim_seconds).sum();
        let mut cells = vec![e.name.to_string()];
        for (k, kernel) in kernels.iter().enumerate() {
            let kt: f64 = run
                .records
                .iter()
                .filter(|r| r.name == *kernel)
                .map(|r| r.sim_seconds)
                .sum();
            let pct = 100.0 * kt / total;
            sums[k] += pct;
            cells.push(format!("{pct:.0}"));
        }
        cells.push(run.iterations.to_string());
        cells.push(run.phases.to_string());
        t.row(cells);
        count += 1;
    }
    let mut mean_cells = vec!["MEAN".to_string()];
    for s in sums {
        mean_cells.push(format!("{:.0}", s / count as f64));
    }
    mean_cells.push("".to_string());
    mean_cells.push("".to_string());
    t.row(mean_cells);

    println!(
        "Kernel-time breakdown of ECL-MST, simulated {} (scale {scale:?})\n",
        profile.name
    );
    print!("{}", t.render());
    println!("\nPaper (§5.1): init ~40%, kernel1 ~35%, kernels 2 and 3 ~12% each;");
    println!("4-15 computation-kernel launches; init launched twice when filtering.");
}
