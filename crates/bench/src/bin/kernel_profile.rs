//! Regenerates the **§5.1 profiling claims**: per-kernel share of the total
//! simulated runtime (the paper: init ≈ 40%, kernel 1 ≈ 35%, kernels 2–3
//! ≈ 12% each) and per-input iteration counts (the paper: 4–15 launches of
//! the computation kernels; init launched twice when filtering).
//!
//! Each input runs under its own ecl-trace session and the shares are read
//! from the resulting [`ecl_trace::Profile`] — the same aggregates the
//! `--trace` exporters ship — rather than by re-scanning
//! `Device::records()`. `tests/trace_profile.rs` pins the two paths to
//! bit-identical seconds.
//!
//! Usage: `kernel_profile [--scale tiny|small|medium|large] [--trace STEM.json]`
//!
//! With `--trace STEM.json`, every input additionally writes a
//! Perfetto-loadable Chrome trace to `STEM-<input>.json` and its profile to
//! `STEM-<input>.profile.json`.

use ecl_gpu_sim::GpuProfile;
use ecl_graph::suite;
use ecl_mst::{ecl_mst_gpu_with, OptConfig};
use ecl_mst_bench::runner::{profile_path, scale_from_args, trace_from_args};
use ecl_mst_bench::table::Table;

/// Input names double as file-name fragments (`USA-road-d.NY`,
/// `2d-2e20.sym`): keep them path-safe.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let trace_stem = trace_from_args(&args);
    let profile = GpuProfile::RTX_3080_TI;
    let kernels = ["setup", "init", "kernel1", "kernel2", "kernel3"];

    let mut t = Table::new([
        "Input", "setup%", "init%", "kernel1%", "kernel2%", "kernel3%", "iters", "phases",
    ]);
    let mut sums = [0.0f64; 5];
    let mut count = 0usize;
    for e in suite(scale) {
        let (run, session) =
            ecl_trace::with_trace(|| ecl_mst_gpu_with(&e.graph, &OptConfig::full(), profile));
        let p = session.profile();
        let mut cells = vec![e.name.to_string()];
        for (k, kernel) in kernels.iter().enumerate() {
            let pct = p.kernel(kernel).map_or(0.0, |k| 100.0 * k.share);
            sums[k] += pct;
            cells.push(format!("{pct:.0}"));
        }
        cells.push(run.iterations.to_string());
        cells.push(run.phases.to_string());
        t.row(cells);
        count += 1;
        if let Some(stem) = &trace_stem {
            let base = stem.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
            let path = stem.with_file_name(format!("{base}-{}.json", sanitize(e.name)));
            std::fs::write(&path, session.chrome_trace())
                .unwrap_or_else(|err| panic!("--trace: cannot write {}: {err}", path.display()));
            let pp = profile_path(&path);
            std::fs::write(&pp, p.to_json())
                .unwrap_or_else(|err| panic!("--trace: cannot write {}: {err}", pp.display()));
            eprintln!("--trace: wrote {} and {}", path.display(), pp.display());
        }
    }
    let mut mean_cells = vec!["MEAN".to_string()];
    for s in sums {
        mean_cells.push(format!("{:.0}", s / count as f64));
    }
    mean_cells.push("".to_string());
    mean_cells.push("".to_string());
    t.row(mean_cells);

    println!(
        "Kernel-time breakdown of ECL-MST, simulated {} (scale {scale:?})\n",
        profile.name
    );
    print!("{}", t.render());
    println!("\nPaper (§5.1): init ~40%, kernel1 ~35%, kernels 2 and 3 ~12% each;");
    println!("4-15 computation-kernel launches; init launched twice when filtering.");
}
