//! Ablation of the hybrid-parallelization degree threshold (the paper's
//! `d(v) < 4` branch in the init kernel): sweeps the warp hand-off degree
//! over {2, 4, 8, 16, 32, thread-only} and reports simulated runtimes.
//! The paper fixes 4; the benefit concentrates on high-skew inputs ("not
//! all inputs benefit from this optimization", §5.3).
//!
//! Usage: `warp_threshold_sweep [--scale tiny|small|medium|large]`
//!
//! Simulated cells are bit-deterministic, so each is evaluated once.

use ecl_gpu_sim::GpuProfile;
use ecl_graph::suite;
use ecl_mst::{ecl_mst_gpu_with, OptConfig};
use ecl_mst_bench::runner::{geomean, scale_from_args};
use ecl_mst_bench::simcache;
use ecl_mst_bench::table::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let profile = GpuProfile::RTX_3080_TI;
    let thresholds: [(Option<usize>, &str); 6] = [
        (Some(2), "warp>=2"),
        (Some(4), "warp>=4 (paper)"),
        (Some(8), "warp>=8"),
        (Some(16), "warp>=16"),
        (Some(32), "warp>=32"),
        (None, "thread-only"),
    ];

    let entries = suite(scale);
    let mut header = vec!["Input".to_string()];
    header.extend(thresholds.iter().map(|(_, l)| l.to_string()));
    let mut t = Table::new(header);
    let mut per: Vec<Vec<f64>> = vec![Vec::new(); thresholds.len()];
    for e in &entries {
        eprintln!("measuring {} ...", e.name);
        let mut cells = vec![e.name.to_string()];
        for (k, &(thr, _)) in thresholds.iter().enumerate() {
            let cfg = match thr {
                Some(d) => OptConfig {
                    warp_degree_threshold: d,
                    ..OptConfig::full()
                },
                None => OptConfig {
                    hybrid_warp: false,
                    ..OptConfig::full()
                },
            };
            let s = simcache::sim_cell(
                "eclmst",
                &format!("{cfg:?}|{}", profile.name),
                &e.graph,
                || ecl_mst_gpu_with(&e.graph, &cfg, profile).kernel_seconds,
            );
            per[k].push(s);
            cells.push(format!("{:.1}", s * 1e6));
        }
        t.row(cells);
    }
    let mut cells = vec!["GeoMean (us)".to_string()];
    for times in &per {
        cells.push(format!("{:.1}", geomean(times).expect("non-empty") * 1e6));
    }
    t.row(cells);

    println!(
        "Hybrid warp-threshold ablation, simulated {} (scale {scale:?}, microseconds)\n",
        profile.name
    );
    print!("{}", t.render());
    println!("\nPaper (§3.2): the code processes each low-degree vertex (d(v) < 4) with");
    println!("a single thread and each remaining vertex with an entire warp.");
}
