//! Regenerates **Figure 3** (System 1) and **Figure 4** (System 2):
//! throughput in millions of edges per second for every code on every
//! input, as bar charts plus the §5.2 geometric-mean summary.
//!
//! Usage: `fig3_4 --system 1|2 [--scale tiny|small|medium|large] [--repeats N]`

use ecl_gpu_sim::GpuProfile;
use ecl_mst_bench::run_throughput_figure;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let system = args
        .iter()
        .position(|a| a == "--system")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("1");
    match system {
        "1" => run_throughput_figure(
            "Figure 3: System 1 (Titan V)",
            GpuProfile::TITAN_V,
            false,
            &args,
        ),
        "2" => run_throughput_figure(
            "Figure 4: System 2 (RTX 3080 Ti)",
            GpuProfile::RTX_3080_TI,
            true,
            &args,
        ),
        other => panic!("unknown --system '{other}' (1|2)"),
    }
}
