//! Ablation of the filtering constant `c` (§3.2: "Values between 2 and 4
//! seem to work well for c ... We use c = 4 in our code"): sweeps
//! `c ∈ {2, 3, 4, 5, 6, ∞}` over the inputs whose average degree admits
//! filtering and reports the simulated runtime of each choice.
//!
//! Usage: `filter_c_sweep [--scale tiny|small|medium|large]`
//!
//! Simulated cells are bit-deterministic, so each is evaluated once.

use ecl_gpu_sim::GpuProfile;
use ecl_graph::suite;
use ecl_mst::{ecl_mst_gpu_with, OptConfig};
use ecl_mst_bench::runner::{geomean, scale_from_args};
use ecl_mst_bench::simcache;
use ecl_mst_bench::table::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let profile = GpuProfile::RTX_3080_TI;
    let cs: [(u32, bool, &str); 6] = [
        (2, true, "c=2"),
        (3, true, "c=3"),
        (4, true, "c=4 (paper)"),
        (5, true, "c=5"),
        (6, true, "c=6"),
        (0, false, "no filter"),
    ];

    let entries: Vec<_> = suite(scale)
        .into_iter()
        .filter(|e| e.graph.average_degree() >= 4.0)
        .collect();

    let mut header = vec!["Input".to_string()];
    header.extend(cs.iter().map(|(_, _, label)| label.to_string()));
    let mut t = Table::new(header);

    let mut per_c: Vec<Vec<f64>> = vec![Vec::new(); cs.len()];
    for e in &entries {
        eprintln!("measuring {} ...", e.name);
        let mut cells = vec![e.name.to_string()];
        for (k, &(c, filtering, _)) in cs.iter().enumerate() {
            let cfg = OptConfig {
                filtering,
                filter_c: c.max(2),
                ..OptConfig::full()
            };
            let s = simcache::sim_cell(
                "eclmst",
                &format!("{cfg:?}|{}", profile.name),
                &e.graph,
                || ecl_mst_gpu_with(&e.graph, &cfg, profile).kernel_seconds,
            );
            per_c[k].push(s);
            cells.push(format!("{:.1}", s * 1e6));
        }
        t.row(cells);
    }
    let mut cells = vec!["GeoMean (us)".to_string()];
    for times in &per_c {
        cells.push(format!("{:.1}", geomean(times).expect("non-empty") * 1e6));
    }
    t.row(cells);

    println!(
        "Filtering-constant ablation on the filtering-eligible inputs (scale {scale:?}, microseconds)\n"
    );
    print!("{}", t.render());
    println!("\nPaper (§3.2): values between 2 and 4 work well; the code uses c = 4.");
}
