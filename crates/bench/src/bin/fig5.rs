//! Regenerates **Figure 5** (throughput when gradually removing the
//! performance optimizations, with the Jucele reference series): bar charts
//! of Medges/s per rung per single-component input.
//!
//! Usage: `fig5 [--scale tiny|small|medium|large]`
//!
//! Every bar is a simulated clock — bit-deterministic — so each cell is
//! evaluated once; with the `ECL_SIM_CACHE` store on, the ladder cells are
//! replayed straight from the Table 5 run of the same sweep.

use ecl_baselines::jucele_gpu;
use ecl_gpu_sim::GpuProfile;
use ecl_graph::suite;
use ecl_mst::{deopt_ladder, ecl_mst_gpu_with};
use ecl_mst_bench::chart::bar_chart;
use ecl_mst_bench::runner::{scale_from_args, trace_from_args, with_optional_trace};
use ecl_mst_bench::simcache;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let profile = GpuProfile::RTX_3080_TI;
    let ladder = deopt_ladder();

    println!(
        "Figure 5: ECL-MST throughput (Medges/s) while removing optimizations (scale {scale:?})\n"
    );
    let trace = trace_from_args(&args);
    with_optional_trace(trace.as_deref(), || {
        for e in suite(scale).into_iter().filter(|e| e.is_mst_input()) {
            eprintln!("measuring {} ...", e.name);
            let arcs = e.graph.num_arcs() as f64;
            let mut series: Vec<(String, f64)> = ladder
                .iter()
                .map(|(name, cfg)| {
                    let s = simcache::sim_cell(
                        "eclmst",
                        &format!("{cfg:?}|{}", profile.name),
                        &e.graph,
                        || ecl_mst_gpu_with(&e.graph, cfg, profile).kernel_seconds,
                    );
                    (name.to_string(), arcs / s / 1e6)
                })
                .collect();
            // Jucele reference bar, as in the figure.
            // Same (kind, fingerprint) the registry stores its Table 4
            // column under, so this bar replays that run from the store.
            let jucele = simcache::sim_result_cell("Jucele GPU", profile.name, &e.graph, || {
                jucele_gpu(&e.graph, profile).map(|r| r.kernel_seconds)
            })
            .expect("single-CC inputs only");
            series.push(("Jucele (ref)".to_string(), arcs / jucele / 1e6));

            println!("== {} ==", e.name);
            print!("{}", bar_chart(&series, 50, "Medges/s"));
            println!();
        }
    });
}
