//! Wall-clock snapshot of the full-suite harness path (the Table 3
//! workload): per-code host wall-clock and simulated seconds, plus process
//! peak RSS, written as JSON for regression tracking.
//!
//! Snapshots chain: each run writes the next `BENCH_<N+1>.json` beside the
//! existing links and, when the newest previous link describes the same
//! workload (scale, repeats, unsanitized), reports it as the baseline in
//! `baseline_wall_seconds` / `speedup_vs_baseline`.
//!
//! Reproduce with:
//!
//! ```text
//! cargo run --release --bin bench_snapshot -- --scale small --repeats 3
//! ```
//!
//! `--trace [PATH]` additionally records the workload under ecl-trace and
//! writes the Chrome trace plus the deterministic profile JSON;
//! `--diff BASELINE.profile.json` then compares the fresh profile against a
//! checked-in baseline and exits with status 4 when any per-kernel or total
//! simulated time regressed by more than 5% (the CI trace gate).
//!
//! `--metrics [PATH]` records the workload under an ecl-metrics session,
//! writes the byte-stable `ecl-metrics/1` JSON (plus the Prometheus text
//! next to it), and embeds the stable counters — with derived
//! `simcache_hit_rate` / `dsu_retry_total` headline keys — into the
//! snapshot; `--metrics-diff BASELINE.json` then compares the fresh export
//! against a checked-in baseline and exits with status 5 when any stable
//! metric drifted more than 5% in either direction (the CI metrics gate —
//! distinct from the trace gate's exit 4).
//!
//! `--sharded SCALE[,SCALE...]` (e.g. `--sharded large,huge`) additionally
//! measures the out-of-core sharded MSF pipeline on the r4 twin at each
//! listed scale — outside the timed table3 window, like the dynamic
//! column — embeds the cells in a `sharded` block, and exits with status 6
//! when any cell's measured peak RSS exceeds its declared budget (the CI
//! out-of-core gate). This is the only mode expected to reach
//! `--sharded huge` (2^24 vertices); the in-core workloads stop at large.

use ecl_gpu_sim::{scratch_footprint, GpuProfile};
use ecl_graph::suite;
use ecl_mst_bench::registry::{all_codes, MstCode};
use ecl_mst_bench::runner::{
    metrics_from_args, peak_rss_bytes, sanitize_from_args, scale_from_args, trace_from_args, wall,
    with_optional_metrics, with_optional_sanitizer, with_optional_trace_breakdown, Repeats,
};
use ecl_mst_bench::sharded::{measure_sharded, sharded_scales_from_args};
use ecl_mst_bench::{simcache, snapshot};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Wall-clock seconds of the Table 3 workload at the seed commit — the
/// fallback baseline when no earlier `BENCH_N.json` of the same workload
/// exists in the working directory.
///
/// Methodology: the seed commit (2727883) was rebuilt in a scratch worktree
/// (plus the vendored-dependency wiring it predates, nothing else), and its
/// `table3 --repeats 3` binary was raced against the refactored one in
/// alternating runs on the same container to cancel background load. Median
/// of 7 interleaved pairs: seed 11.174 s. Only comparable at scale Small
/// with 3 repeats, unsanitized.
const SEED_BASELINE_WALL_SECONDS: f64 = 11.174;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let repeats = Repeats::from_args(&args);
    let profile = GpuProfile::TITAN_V;
    let codes: Vec<MstCode> = all_codes(false);

    // Per-code totals over the whole suite. Suite generation runs inside
    // the timed window so `total_wall` matches what the `table3` binary
    // actually costs end to end (the baseline constant was measured that
    // way).
    let mut wall_s = vec![0.0f64; codes.len()];
    let mut sim_s = vec![0.0f64; codes.len()];
    let mut n_inputs = 0usize;
    // `--sanitize` wraps the whole timed window in a sanitizer session; the
    // resulting wall numbers measure the checked path, not the hot path, so
    // don't compare them to the baseline constant.
    let sanitize = sanitize_from_args(&args);
    let trace = trace_from_args(&args);
    let diff_baseline: Option<PathBuf> =
        args.iter()
            .position(|a| a == "--diff")
            .map(|i| match args.get(i + 1) {
                Some(p) if !p.starts_with("--") => PathBuf::from(p),
                _ => {
                    eprintln!("--diff requires a baseline profile path");
                    std::process::exit(2);
                }
            });
    if diff_baseline.is_some() && trace.is_none() {
        eprintln!("--diff needs --trace (the diff compares the fresh trace profile)");
        std::process::exit(2);
    }
    let metrics = metrics_from_args(&args);
    let metrics_diff: Option<PathBuf> =
        args.iter()
            .position(|a| a == "--metrics-diff")
            .map(|i| match args.get(i + 1) {
                Some(p) if !p.starts_with("--") => PathBuf::from(p),
                _ => {
                    eprintln!("--metrics-diff requires a baseline metrics path");
                    std::process::exit(2);
                }
            });
    if metrics_diff.is_some() && metrics.is_none() {
        eprintln!("--metrics-diff needs --metrics (the diff compares the fresh export)");
        std::process::exit(2);
    }
    // Metrics session outermost: the trace→metrics bridge publishes when
    // the trace session closes, which must happen inside it.
    let ((total_wall, trace_profile), metrics_snap) =
        with_optional_metrics(metrics.as_deref(), || {
            let r = with_optional_trace_breakdown(trace.as_deref(), || {
                with_optional_sanitizer(sanitize, || {
                    wall(|| {
                        let entries = suite(scale);
                        n_inputs = entries.len();
                        for e in &entries {
                            eprintln!("measuring {} ...", e.name);
                            for (c, code) in codes.iter().enumerate() {
                                let mut sim = 0.0;
                                wall_s[c] += wall(|| {
                                    for _ in 0..repeats.0.max(1) {
                                        if let Ok(s) = (code.run)(&e.graph, profile) {
                                            sim += s;
                                        }
                                    }
                                });
                                sim_s[c] += sim;
                            }
                            ecl_mst::evict_graph(&e.graph);
                        }
                    })
                })
            });
            simcache::publish_store_stats();
            r
        });

    // Dynamic-updates column: incremental maintenance vs rebuild-per-batch,
    // measured OUTSIDE the timed table3 window above so total_wall_seconds
    // stays comparable to earlier chain links that predate this workload.
    eprintln!("measuring dynamic updates ...");
    let dyn_report = ecl_mst_bench::dynamic::measure_dynamic_updates(scale, 1);

    // Legacy process-lifetime peak, captured BEFORE the sharded cells: each
    // cell resets the kernel high-water mark to scope its own measurement,
    // which would otherwise erase the table3 window's peak from this key.
    let process_peak_rss = peak_rss_bytes().unwrap_or(0);

    // Sharded out-of-core cells, also outside the timed window.
    let sharded_scales = sharded_scales_from_args(&args);
    let sharded_cells: Vec<_> = sharded_scales
        .iter()
        .map(|&s| {
            eprintln!("measuring sharded msf at {} ...", s.name());
            let cell = measure_sharded(s);
            eprintln!(
                "  {}: {:.2}s, peak rss {} MiB (budget {} MiB){}",
                s.name(),
                cell.wall_seconds,
                cell.peak_rss_bytes >> 20,
                cell.rss_budget_bytes >> 20,
                match cell.parity {
                    Some(true) => ", parity ok",
                    Some(false) => ", PARITY FAILED",
                    None => "",
                }
            );
            cell
        })
        .collect();

    // Chain link: the previous snapshot (same directory, highest N) is the
    // baseline whenever it describes the same workload — same scale, same
    // repeats, neither run sanitized — so speedup_vs_baseline tracks the
    // harness PR over PR. The seed-commit constant only backstops the very
    // first Small/3-repeats link.
    let dir = Path::new(".");
    let prev_index = snapshot::latest_index(dir);
    let out = format!("BENCH_{}.json", prev_index + 1);
    let scale_name = format!("{scale:?}");
    let current_repeats = repeats.0.max(1) as u64;
    let baseline: Option<(f64, String)> = snapshot::read_snapshot(dir, prev_index)
        .filter(|p| p.comparable_to(&scale_name, current_repeats, simcache::enabled()))
        .map(|p| (p.total_wall_seconds, p.file.clone()))
        .or_else(|| {
            (scale_name == "Small" && current_repeats == 3 && !sanitize && !simcache::enabled())
                .then(|| {
                    (
                        SEED_BASELINE_WALL_SECONDS,
                        "seed commit 2727883".to_string(),
                    )
                })
        });

    let (const_bytes, pooled_bytes) = scratch_footprint();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"workload\": \"table3\",");
    let _ = writeln!(json, "  \"scale\": \"{scale_name}\",");
    let _ = writeln!(json, "  \"repeats\": {current_repeats},");
    let _ = writeln!(json, "  \"sanitize\": {sanitize},");
    let _ = writeln!(json, "  \"sim_cache\": {},", simcache::enabled());
    let _ = writeln!(json, "  \"inputs\": {n_inputs},");
    let _ = writeln!(json, "  \"codes\": [");
    for (c, code) in codes.iter().enumerate() {
        let comma = if c + 1 < codes.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"wall_seconds\": {:.4}, \"simulated_ms\": {:.4}}}{comma}",
            code.name,
            wall_s[c],
            sim_s[c] * 1e3
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"total_wall_seconds\": {total_wall:.4},");
    // Per-kernel shares from the traced run (absent without --trace). These
    // sit after the keys `snapshot::read_snapshot` parses by first
    // occurrence, so nested "name"/"share" keys cannot shadow them.
    if let Some((profile, breakdown)) = &trace_profile {
        let _ = writeln!(json, "  \"kernel_breakdown\": [");
        for (i, k) in profile.kernels.iter().enumerate() {
            let comma = if i + 1 < profile.kernels.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                json,
                "    {{\"name\": \"{}\", \"share\": {:.4}, \"sim_seconds\": {:.6}}}{comma}",
                k.name, k.share, k.sim_seconds
            );
        }
        let _ = writeln!(json, "  ],");
        let _ = writeln!(json, "  \"wall_breakdown\": [");
        for (i, k) in breakdown.iter().enumerate() {
            let comma = if i + 1 < breakdown.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "    {{\"name\": \"{}\", \"calls\": {}, \"total_seconds\": {:.4}, \"self_seconds\": {:.4}}}{comma}",
                k.name, k.calls, k.total_seconds, k.self_seconds
            );
        }
        let _ = writeln!(json, "  ],");
    }
    // Stable telemetry from the metered run (absent without --metrics).
    // Keys all start "ecl." or are unique, so the first-occurrence parser
    // in `snapshot::read_snapshot` (whose keys all appear above) is safe.
    if let Some(snap) = &metrics_snap {
        let hit = snap.counter("ecl.simcache.hit");
        let looked = hit + snap.counter("ecl.simcache.miss") + snap.counter("ecl.simcache.stale");
        let rate = if looked == 0 {
            0.0
        } else {
            hit as f64 / looked as f64
        };
        let _ = writeln!(json, "  \"metrics\": {{");
        let _ = writeln!(json, "    \"format\": \"ecl-metrics/1\",");
        let _ = writeln!(json, "    \"simcache_hit_rate\": {rate:.4},");
        let _ = writeln!(
            json,
            "    \"dsu_retry_total\": {},",
            snap.counter("ecl.dsu.cas_retry")
        );
        let stable: Vec<_> = snap
            .entries
            .iter()
            .filter(|e| e.stability == ecl_metrics::Stability::Stable)
            .collect();
        for (i, e) in stable.iter().enumerate() {
            let comma = if i + 1 < stable.len() { "," } else { "" };
            let _ = match e.kind {
                ecl_metrics::Kind::Gauge => {
                    writeln!(json, "    \"{}\": {}{comma}", e.name, e.gauge)
                }
                _ => writeln!(json, "    \"{}\": {}{comma}", e.name, e.count),
            };
        }
        let _ = writeln!(json, "  }},");
    }
    // Dynamic-updates column. Unique keys, so `snapshot::read_snapshot`'s
    // first-occurrence parser is unaffected.
    let _ = writeln!(json, "  \"dynamic_updates\": {{");
    let _ = writeln!(json, "    \"batches\": {},", dyn_report.batches);
    let _ = writeln!(json, "    \"ops_per_batch\": {},", dyn_report.ops_per_batch);
    let _ = writeln!(
        json,
        "    \"engine_wall_seconds\": {:.6},",
        dyn_report.engine_wall_seconds
    );
    let _ = writeln!(
        json,
        "    \"rebuild_wall_seconds\": {:.6},",
        dyn_report.rebuild_wall_seconds
    );
    let _ = writeln!(
        json,
        "    \"updates_speedup_vs_rebuild\": {:.3}",
        dyn_report.speedup()
    );
    let _ = writeln!(json, "  }},");
    // Sharded out-of-core cells (absent without --sharded). Unique keys
    // again, and nested "scale" strings are lowercase names so they cannot
    // shadow the top-level Debug-spelled "scale" for the chain parser
    // (which reads first occurrence anyway).
    if !sharded_cells.is_empty() {
        let _ = writeln!(json, "  \"sharded\": [");
        for (i, cell) in sharded_cells.iter().enumerate() {
            let comma = if i + 1 < sharded_cells.len() { "," } else { "" };
            let _ = writeln!(json, "    {{");
            let _ = writeln!(json, "      \"scale\": \"{}\",", cell.scale.name());
            let _ = writeln!(json, "      \"shards\": {},", cell.shards);
            let _ = writeln!(json, "      \"wall_seconds\": {:.4},", cell.wall_seconds);
            match cell.monolith_wall_seconds {
                Some(m) => {
                    let _ = writeln!(json, "      \"monolith_wall_seconds\": {m:.4},");
                    let _ = writeln!(
                        json,
                        "      \"slowdown_vs_monolith\": {:.3},",
                        cell.slowdown_vs_monolith().unwrap_or(f64::NAN)
                    );
                }
                None => {
                    let _ = writeln!(json, "      \"monolith_wall_seconds\": null,");
                    let _ = writeln!(json, "      \"slowdown_vs_monolith\": null,");
                }
            }
            let _ = match cell.parity {
                Some(p) => writeln!(json, "      \"parity\": {p},"),
                None => writeln!(json, "      \"parity\": null,"),
            };
            let _ = writeln!(json, "      \"forest_edges\": {},", cell.forest_edges);
            let _ = writeln!(json, "      \"survivor_edges\": {},", cell.survivor_edges);
            let _ = writeln!(json, "      \"merge_rounds\": {},", cell.merge_rounds);
            let _ = writeln!(json, "      \"spill_bytes\": {},", cell.spill_bytes);
            let _ = writeln!(json, "      \"peak_rss_bytes\": {},", cell.peak_rss_bytes);
            let _ = writeln!(
                json,
                "      \"rss_budget_bytes\": {},",
                cell.rss_budget_bytes
            );
            let _ = writeln!(json, "      \"within_budget\": {}", cell.within_budget());
            let _ = writeln!(json, "    }}{comma}");
        }
        let _ = writeln!(json, "  ],");
    }
    match &baseline {
        Some((base, source)) => {
            let _ = writeln!(json, "  \"baseline_wall_seconds\": {base:.4},");
            let _ = writeln!(json, "  \"baseline_source\": \"{source}\",");
            let _ = writeln!(json, "  \"speedup_vs_baseline\": {:.3},", base / total_wall);
        }
        None => {
            let _ = writeln!(json, "  \"baseline_wall_seconds\": null,");
            let _ = writeln!(json, "  \"baseline_source\": null,");
            let _ = writeln!(json, "  \"speedup_vs_baseline\": null,");
        }
    }
    let _ = writeln!(json, "  \"peak_rss_bytes\": {process_peak_rss},");
    let _ = writeln!(json, "  \"scratch_const_bytes\": {const_bytes},");
    let _ = writeln!(json, "  \"scratch_pooled_bytes\": {pooled_bytes}");
    json.push_str("}\n");

    std::fs::write(&out, &json).expect("write snapshot");
    print!("{json}");
    eprintln!("wrote {out}");
    simcache::log_summary();

    // CI out-of-core gate: every sharded cell must hold its peak-RSS
    // budget and (where a monolith comparison ran) bit-exact parity.
    // Exit 6, next to the trace gate's 4 and the metrics gate's 5. The
    // snapshot is written first so a violating run still leaves evidence.
    let rss_violations: Vec<_> = sharded_cells
        .iter()
        .filter(|c| !c.within_budget())
        .collect();
    for c in &rss_violations {
        eprintln!(
            "--sharded: RSS BUDGET EXCEEDED at {}: peak {} bytes > budget {} bytes",
            c.scale.name(),
            c.peak_rss_bytes,
            c.rss_budget_bytes
        );
    }
    let parity_failures: Vec<_> = sharded_cells
        .iter()
        .filter(|c| c.parity == Some(false))
        .collect();
    for c in &parity_failures {
        eprintln!(
            "--sharded: PARITY FAILURE at {}: sharded forest != monolithic serial_kruskal",
            c.scale.name()
        );
    }
    if !rss_violations.is_empty() || !parity_failures.is_empty() {
        std::process::exit(6);
    }

    // CI metrics gate: compare the fresh stable export against a
    // checked-in baseline. Exit 5 (the trace gate below uses 4).
    if let (Some(base_path), Some(snap)) = (&metrics_diff, &metrics_snap) {
        let text = std::fs::read_to_string(base_path).unwrap_or_else(|e| {
            eprintln!("--metrics-diff: cannot read {}: {e}", base_path.display());
            std::process::exit(2);
        });
        let baseline = ecl_metrics::json::from_json(&text).unwrap_or_else(|e| {
            eprintln!(
                "--metrics-diff: {} is not a metrics export: {e}",
                base_path.display()
            );
            std::process::exit(2);
        });
        let report = snap.diff(&baseline, 0.05);
        println!("\nmetrics diff vs {}:", base_path.display());
        for line in &report.lines {
            println!("  {line}");
        }
        if report.is_pass() {
            println!("--metrics-diff: PASS (no stable metric drifted above 5%)");
        } else {
            eprintln!(
                "--metrics-diff: {} stable metric(s) drifted above 5%",
                report.drifted
            );
            std::process::exit(5);
        }
    }

    // CI trace gate: compare the fresh profile against a checked-in one.
    if let (Some(base_path), Some((profile, _))) = (diff_baseline, trace_profile) {
        let text = std::fs::read_to_string(&base_path).unwrap_or_else(|e| {
            eprintln!("--diff: cannot read {}: {e}", base_path.display());
            std::process::exit(2);
        });
        let baseline = ecl_trace::Profile::from_json(&text).unwrap_or_else(|e| {
            eprintln!("--diff: {} is not a profile: {e}", base_path.display());
            std::process::exit(2);
        });
        let report = profile.diff(&baseline, 0.05);
        println!("\nprofile diff vs {}:", base_path.display());
        for line in &report.lines {
            println!("  {line}");
        }
        if report.is_pass() {
            println!("--diff: PASS (no simulated-time regression above 5%)");
        } else {
            for r in &report.regressions {
                eprintln!("--diff: REGRESSION: {r}");
            }
            std::process::exit(4);
        }
    }
}
