//! Regenerates **Table 4** (System 2 / RTX 3080 Ti computation times in
//! seconds), including the cuGraph column that only runs on System 2 in the
//! paper.
//!
//! Usage: `table4 [--scale tiny|small|medium|large] [--repeats N] [--csv]`

use ecl_gpu_sim::GpuProfile;
use ecl_mst_bench::{run_system_table, SystemTableArgs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run_system_table(SystemTableArgs {
        title: "Table 4: System 2 (RTX 3080 Ti) computation times in seconds",
        profile: GpuProfile::RTX_3080_TI,
        with_cugraph: true,
        args,
    });
}
