//! Regenerates **Table 3** (System 1 / Titan V computation times in
//! seconds): every code of Table 1 on all 17 inputs, with the MSF and MST
//! geometric-mean rows. GPU codes report simulated seconds from the Titan V
//! cost profile; CPU codes report real wall-clock on this host.
//!
//! Usage: `table3 [--scale tiny|small|medium|large] [--repeats N] [--csv]`

use ecl_gpu_sim::GpuProfile;
use ecl_mst_bench::{run_system_table, SystemTableArgs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run_system_table(SystemTableArgs {
        title: "Table 3: System 1 (Titan V) computation times in seconds",
        profile: GpuProfile::TITAN_V,
        with_cugraph: false, // "cuGraph is incompatible with System 1"
        args,
    });
}
