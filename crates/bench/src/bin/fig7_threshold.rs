//! Regenerates **Figure 7** (relative distance from the target filtering
//! threshold): for every input that filters, how far the 20-sample estimate
//! lands from 3·|V| edges (the paper's stated aim), as a signed percentage.
//!
//! Usage: `fig7_threshold [--scale tiny|small|medium|large] [--seed N]`

use ecl_graph::suite;
use ecl_mst::filter::threshold_accuracy;
use ecl_mst::OptConfig;
use ecl_mst_bench::runner::scale_from_args;
use ecl_mst_bench::table::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(OptConfig::full().seed);

    let mut t = Table::new(["Input", "edges<thresh", "target 3|V|", "distance %"]);
    let mut shown = 0;
    for e in suite(scale) {
        // c = 4 as in the code; accuracy measured against 3x as in §5.4.
        // Inputs below the degree threshold do not filter and are skipped.
        if let Some((below, target, pct)) = threshold_accuracy(&e.graph, 4, seed, 3) {
            t.row([
                e.name.to_string(),
                below.to_string(),
                target.to_string(),
                format!("{pct:+.1}"),
            ]);
            shown += 1;
        }
    }
    println!(
        "Figure 7: relative distance from the 3x|V| filtering target (scale {scale:?}, seed {seed})\n"
    );
    print!("{}", t.render());
    println!("\n{shown} of 17 inputs use filtering (average degree >= 4).");
    println!("The paper: the estimate rarely lands more than 2x over or 0.5x under target.");
}
