//! CPU-backend counterpart of Table 5: the de-optimization ladder measured
//! as real wall-clock of the rayon implementation (the same `OptConfig`
//! toggles drive both backends). On a many-core host this shows which of
//! the paper's GPU optimizations also pay off on CPUs; on a single-core
//! host it mainly isolates the algorithmic-work effects (one-direction
//! processing, filtering, data-driven worklists).
//!
//! Usage: `cpu_ladder [--scale tiny|small|medium|large] [--repeats N]`

use ecl_graph::suite;
use ecl_mst::{deopt_ladder, ecl_mst_cpu_with};
use ecl_mst_bench::runner::{geomean, median_time, scale_from_args, wall, Repeats};
use ecl_mst_bench::table::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let repeats = Repeats::from_args(&args);
    let ladder = deopt_ladder();

    let entries: Vec<_> = suite(scale)
        .into_iter()
        .filter(|e| e.is_mst_input())
        .collect();

    let mut header = vec!["Input".to_string()];
    header.extend(ladder.iter().map(|(name, _)| name.to_string()));
    let mut t = Table::new(header);
    let mut per: Vec<Vec<f64>> = vec![Vec::new(); ladder.len()];
    for e in &entries {
        eprintln!("measuring {} ...", e.name);
        let mut cells = vec![e.name.to_string()];
        for (k, (_, cfg)) in ladder.iter().enumerate() {
            let s = median_time(repeats, || Some(wall(|| ecl_mst_cpu_with(&e.graph, cfg))))
                .expect("always succeeds");
            per[k].push(s);
            cells.push(format!("{:.1}", s * 1e3));
        }
        t.row(cells);
    }
    let mut cells = vec!["GeoMean (ms)".to_string()];
    for times in &per {
        cells.push(format!("{:.1}", geomean(times).expect("non-empty") * 1e3));
    }
    t.row(cells);

    println!(
        "CPU-backend de-optimization ladder, wall-clock milliseconds (scale {scale:?}, {} repeats)\n",
        repeats.0
    );
    print!("{}", t.render());
}
