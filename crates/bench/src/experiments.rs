//! Shared experiment drivers for the table/figure binaries.

use crate::chart::bar_chart;
use crate::registry::{all_codes, CodeKind, MstCode, Timing};
use crate::runner::{
    geomean, median_time, metrics_from_args, sanitize_from_args, scale_from_args, trace_from_args,
    with_optional_metrics, with_optional_sanitizer, with_optional_trace, Repeats,
};
use crate::simcache;
use crate::table::{fmt_geomean, fmt_timing, Table};
use ecl_gpu_sim::GpuProfile;
use ecl_graph::{par, suite, SuiteEntry};

/// Full measurement matrix: per input, per code, a [`Timing`].
pub struct Matrix {
    /// Suite entries, in Table 2 order.
    pub entries: Vec<SuiteEntry>,
    /// Code column names.
    pub code_names: Vec<&'static str>,
    /// `cells[input][code]`.
    pub cells: Vec<Vec<Timing>>,
}

/// Measures every code on every suite input (median of `repeats`).
///
/// Runs as a three-phase pipeline so the wall-clock cost of a sweep is the
/// measurements, not the plumbing, while the result stays in Table 2 order
/// cell for cell:
///
/// 1. **Prepare** — every suite twin is generated, built, and (lazily, at
///    first use) uploaded; [`suite`] fans the per-entry builds out over the
///    input pool.
/// 2. **Simulate** — the GPU codes' cells are computed host-parallel across
///    entries: each simulated clock is a bit-deterministic pure function of
///    (graph, profile), so neither the schedule nor the sharing of repeats
///    through the registry memo can change a digit. Each entry's codes run
///    in column order on one worker (the ECL-MST memcpy column projects the
///    plain column's run). When a tracing or sanitizer session is active
///    the phase is pinned to the calling thread instead — both sessions
///    collect into thread-locals, so fanning out would leak events past
///    them.
/// 3. **Measure** — the wall-clock CPU codes run in an exclusive phase with
///    the pool quiesced (phases 1 and 2 are complete; nothing else is
///    scheduled), keeping the real timings honest. With `ECL_SIM_CACHE`
///    set, a cell measured by an earlier binary of the same sweep is
///    replayed instead of measured again — the CPU columns never read the
///    GPU profile, so Tables 3 and 4 share them.
pub fn measure_matrix(
    profile: GpuProfile,
    with_cugraph: bool,
    scale: ecl_graph::SuiteScale,
    repeats: Repeats,
) -> Matrix {
    let codes: Vec<MstCode> = all_codes(with_cugraph);
    // Per-phase wall histograms are host-side telemetry, gated on an active
    // metrics session; the measured cells never read these clocks.
    let timed = ecl_metrics::active();
    ecl_metrics::gauge!(RUNNER_THREADS, par::max_threads());

    // Phase 1: prepare (parallel generate + build).
    let t = timed.then(std::time::Instant::now);
    let entries = suite(scale);
    if let Some(t) = t {
        ecl_metrics::histogram!(RUNNER_PHASE_SECONDS, t.elapsed().as_secs_f64());
    }

    // Phase 2: simulate (host-parallel across entries; `None` marks the
    // wall-clock cells phase 3 owns).
    let simulate = || {
        par::par_map(&entries, |_, e| {
            eprintln!("measuring {} ...", e.name);
            codes
                .iter()
                .map(|code| match code.kind {
                    CodeKind::Cpu => None,
                    CodeKind::Gpu | CodeKind::GpuWithMemcpy => Some(
                        match median_time(repeats, || (code.run)(&e.graph, profile).ok()) {
                            Some(s) => Timing::Seconds(s),
                            None => Timing::NotConnected,
                        },
                    ),
                })
                .collect::<Vec<Option<Timing>>>()
        })
    };
    let t = timed.then(std::time::Instant::now);
    let sim_cells = if ecl_trace::enabled() || ecl_gpu_sim::sanitize_enabled() {
        par::with_serial_input(simulate)
    } else {
        simulate()
    };
    if let Some(t) = t {
        ecl_metrics::histogram!(RUNNER_PHASE_SECONDS, t.elapsed().as_secs_f64());
    }

    // Phase 3: measure (exclusive wall-clock phase, pool quiesced).
    let t = timed.then(std::time::Instant::now);
    let mut cells = Vec::with_capacity(entries.len());
    for (e, sims) in entries.iter().zip(sim_cells) {
        let row: Vec<Timing> = codes
            .iter()
            .zip(sims)
            .map(|(code, sim)| match sim {
                Some(t) => t,
                None => {
                    let cell = simcache::cpu_cell(code.name, repeats.0.max(1), &e.graph, || {
                        median_time(repeats, || (code.run)(&e.graph, profile).ok())
                    });
                    match cell {
                        Some(s) => Timing::Seconds(s),
                        None => Timing::NotConnected,
                    }
                }
            })
            .collect();
        cells.push(row);
        // All codes are done with this graph: drop its cached device
        // uploads so scratch memory doesn't scale with the suite size.
        ecl_mst::evict_graph(&e.graph);
    }
    if let Some(t) = t {
        ecl_metrics::histogram!(RUNNER_PHASE_SECONDS, t.elapsed().as_secs_f64());
    }
    ecl_metrics::counter!(RUNNER_CELLS, (entries.len() * codes.len()) as u64);
    simcache::publish_store_stats();
    Matrix {
        entries,
        code_names: codes.iter().map(|c| c.name).collect(),
        cells,
    }
}

impl Matrix {
    /// Geometric mean over all inputs for a code column (`None` if any cell
    /// is NC — matching the paper's "MSF GeoMean" NC cells).
    pub fn msf_geomean(&self, code: usize) -> Option<f64> {
        let times: Option<Vec<f64>> = self.cells.iter().map(|row| row[code].seconds()).collect();
        times.as_deref().and_then(geomean)
    }

    /// Geometric mean over the single-component (MST) inputs only.
    pub fn mst_geomean(&self, code: usize) -> Option<f64> {
        let times: Option<Vec<f64>> = self
            .cells
            .iter()
            .zip(&self.entries)
            .filter(|(_, e)| e.is_mst_input())
            .map(|(row, _)| row[code].seconds())
            .collect();
        times.as_deref().and_then(geomean)
    }
}

/// Arguments for the Table 3/4 binaries.
pub struct SystemTableArgs {
    /// Printed title.
    pub title: &'static str,
    /// GPU cost profile for the simulated codes.
    pub profile: GpuProfile,
    /// Include the cuGraph column (System 2 only in the paper).
    pub with_cugraph: bool,
    /// Raw CLI arguments.
    pub args: Vec<String>,
}

/// Runs a full system comparison and prints the paper-style table.
pub fn run_system_table(a: SystemTableArgs) {
    let scale = scale_from_args(&a.args);
    let repeats = Repeats::from_args(&a.args);
    let trace = trace_from_args(&a.args);
    let metrics = metrics_from_args(&a.args);
    // Metrics outermost: the trace→metrics bridge publishes when a trace
    // session closes, which must happen inside the metrics session.
    let (m, _) = with_optional_metrics(metrics.as_deref(), || {
        with_optional_trace(trace.as_deref(), || {
            with_optional_sanitizer(sanitize_from_args(&a.args), || {
                measure_matrix(a.profile, a.with_cugraph, scale, repeats)
            })
        })
    });

    let mut header = vec!["Input".to_string()];
    header.extend(m.code_names.iter().map(|s| s.to_string()));
    let mut t = Table::new(header);
    for (e, row) in m.entries.iter().zip(&m.cells) {
        let mut cells = vec![e.name.to_string()];
        cells.extend(row.iter().map(fmt_timing));
        t.row(cells);
    }
    for (label, f) in [
        (
            "MSF GeoMean",
            Matrix::msf_geomean as fn(&Matrix, usize) -> Option<f64>,
        ),
        ("MST GeoMean", Matrix::mst_geomean),
    ] {
        let mut cells = vec![label.to_string()];
        cells.extend((0..m.code_names.len()).map(|c| fmt_geomean(f(&m, c))));
        t.row(cells);
    }
    println!("{} (scale {scale:?}, {} repeats)\n", a.title, repeats.0);
    if a.args.iter().any(|x| x == "--csv") {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.render());
    }
    print_winner_summary(&m);
    simcache::log_summary();
}

fn print_winner_summary(m: &Matrix) {
    // Headline claims: ECL-MST fastest on every input; speedup factors.
    let ecl = 0usize;
    let mut wins = 0usize;
    for row in &m.cells {
        let ecl_t = row[ecl].seconds().expect("ECL handles every input");
        let best_other = row
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != ecl)
            .filter_map(|(_, t)| t.seconds())
            .fold(f64::INFINITY, f64::min);
        if ecl_t <= best_other {
            wins += 1;
        }
    }
    println!("\nECL-MST fastest on {wins}/{} inputs", m.cells.len());
    for (c, name) in m.code_names.iter().enumerate().skip(1) {
        if let (Some(ecl_g), Some(other_g)) = (m.msf_geomean(0), m.msf_geomean(c)) {
            println!("  vs {name:<16} {:>6.1}x (MSF geomean)", other_g / ecl_g);
        } else if let (Some(ecl_g), Some(other_g)) = (m.mst_geomean(0), m.mst_geomean(c)) {
            println!(
                "  vs {name:<16} {:>6.1}x (MST geomean; NC on MSF inputs)",
                other_g / ecl_g
            );
        }
    }
}

/// Runs the throughput figures (Figures 3 and 4): millions of edges per
/// second per code per input, as labeled bar charts.
pub fn run_throughput_figure(
    title: &str,
    profile: GpuProfile,
    with_cugraph: bool,
    args: &[String],
) {
    let scale = scale_from_args(args);
    let repeats = Repeats::from_args(args);
    let trace = trace_from_args(args);
    let metrics = metrics_from_args(args);
    let (m, _) = with_optional_metrics(metrics.as_deref(), || {
        with_optional_trace(trace.as_deref(), || {
            with_optional_sanitizer(sanitize_from_args(args), || {
                measure_matrix(profile, with_cugraph, scale, repeats)
            })
        })
    });
    println!("{title} (scale {scale:?}): throughput in millions of edges per second\n");
    for (e, row) in m.entries.iter().zip(&m.cells) {
        println!("== {} ({} arcs) ==", e.name, e.graph.num_arcs());
        let series: Vec<(String, f64)> = m
            .code_names
            .iter()
            .zip(row)
            .filter_map(|(name, t)| {
                t.seconds()
                    .map(|s| (name.to_string(), e.graph.num_arcs() as f64 / s / 1e6))
            })
            .collect();
        print!("{}", bar_chart(&series, 50, "Medges/s"));
        println!();
    }
    // Geomean throughput summary like §5.2.
    for (c, name) in m.code_names.iter().enumerate() {
        let msf: Vec<f64> = m
            .entries
            .iter()
            .zip(&m.cells)
            .filter_map(|(e, row)| {
                row[c]
                    .seconds()
                    .map(|s| e.graph.num_arcs() as f64 / s / 1e6)
            })
            .collect();
        if msf.len() == m.entries.len() {
            if let Some(g) = geomean(&msf) {
                println!("{name:<16} geomean throughput {g:>10.1} Medges/s");
            }
        }
    }
    simcache::log_summary();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::SuiteScale;

    #[test]
    fn matrix_has_full_shape() {
        let m = measure_matrix(GpuProfile::TITAN_V, true, SuiteScale::Tiny, Repeats(1));
        assert_eq!(m.entries.len(), 17);
        assert_eq!(m.code_names.len(), 10);
        for row in &m.cells {
            assert_eq!(row.len(), 10);
        }
    }

    #[test]
    fn nc_cells_exactly_on_msf_inputs() {
        let m = measure_matrix(GpuProfile::TITAN_V, false, SuiteScale::Tiny, Repeats(1));
        let jucele = m
            .code_names
            .iter()
            .position(|n| *n == "Jucele GPU")
            .unwrap();
        for (e, row) in m.entries.iter().zip(&m.cells) {
            let nc = row[jucele].seconds().is_none();
            assert_eq!(nc, !e.is_mst_input(), "{}", e.name);
        }
    }

    #[test]
    fn geomeans_defined_correctly() {
        let m = measure_matrix(GpuProfile::TITAN_V, false, SuiteScale::Tiny, Repeats(1));
        let jucele = m
            .code_names
            .iter()
            .position(|n| *n == "Jucele GPU")
            .unwrap();
        assert!(m.msf_geomean(0).is_some(), "ECL has an MSF geomean");
        assert!(m.msf_geomean(jucele).is_none(), "Jucele MSF geomean is NC");
        assert!(m.mst_geomean(jucele).is_some(), "Jucele MST geomean exists");
    }
}
