//! Helpers for the `BENCH_N.json` wall-clock snapshot chain.
//!
//! Every `bench_snapshot` run appends the next link: it scans the working
//! directory for existing `BENCH_<N>.json` files, writes `BENCH_<N+1>.json`,
//! and — when the newest previous snapshot describes the *same workload*
//! (equal scale and repeat count, neither run sanitized) — reports that
//! snapshot's total wall seconds as the baseline, so
//! `speedup_vs_baseline` tracks regression/improvement PR over PR without
//! hand-maintained constants.

use std::path::Path;

/// Fields of a previous snapshot needed to decide baseline comparability.
#[derive(Debug, Clone, PartialEq)]
pub struct PrevSnapshot {
    /// File name the snapshot was read from (e.g. `BENCH_1.json`).
    pub file: String,
    /// `total_wall_seconds` field.
    pub total_wall_seconds: f64,
    /// `scale` field (Debug spelling, e.g. `Small`).
    pub scale: Option<String>,
    /// `repeats` field.
    pub repeats: Option<u64>,
    /// `sanitize` field (absent in pre-chain snapshots = unsanitized).
    pub sanitize: bool,
    /// `sim_cache` field (absent in pre-chain snapshots = uncached).
    pub sim_cache: bool,
}

impl PrevSnapshot {
    /// True when this snapshot's workload matches the given one, making its
    /// wall time an apples-to-apples baseline. A replayed (sim-cached) run
    /// and a measured one are never comparable: replays skip the simulation
    /// work the baseline paid for.
    pub fn comparable_to(&self, scale: &str, repeats: u64, sim_cache: bool) -> bool {
        !self.sanitize
            && self.sim_cache == sim_cache
            && self.scale.as_deref() == Some(scale)
            && self.repeats == Some(repeats)
    }
}

/// Index of a `BENCH_<N>.json` file name, if it is one.
fn snapshot_index(name: &str) -> Option<u32> {
    let rest = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
    (!rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
        .then(|| rest.parse().ok())
        .flatten()
}

/// Highest existing snapshot index in `dir` (0 when none exist).
pub fn latest_index(dir: &Path) -> u32 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| snapshot_index(&e.file_name().to_string_lossy()))
        .max()
        .unwrap_or(0)
}

/// Parses the previous snapshot `BENCH_<index>.json` in `dir`, if present
/// and well-formed enough to carry a total.
pub fn read_snapshot(dir: &Path, index: u32) -> Option<PrevSnapshot> {
    let file = format!("BENCH_{index}.json");
    let text = std::fs::read_to_string(dir.join(&file)).ok()?;
    Some(PrevSnapshot {
        file,
        total_wall_seconds: json_number(&text, "total_wall_seconds")?,
        scale: json_string(&text, "scale"),
        repeats: json_number(&text, "repeats").map(|r| r as u64),
        sanitize: json_bool(&text, "sanitize").unwrap_or(false),
        sim_cache: json_bool(&text, "sim_cache").unwrap_or(false),
    })
}

/// Value text following `"key":` at the top level of our own flat snapshot
/// format (one `"key": value` pair per line, no nesting of these keys).
fn json_value<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let at = json.find(&tag)? + tag.len();
    let rest = json[at..].trim_start();
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn json_number(json: &str, key: &str) -> Option<f64> {
    json_value(json, key)?.parse().ok()
}

fn json_string(json: &str, key: &str) -> Option<String> {
    let v = json_value(json, key)?;
    Some(v.strip_prefix('"')?.strip_suffix('"')?.to_string())
}

fn json_bool(json: &str, key: &str) -> Option<bool> {
    match json_value(json, key)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ecl-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    const SAMPLE: &str = r#"{
  "workload": "table3",
  "scale": "Small",
  "repeats": 3,
  "inputs": 17,
  "codes": [
    {"name": "ECL-MST", "wall_seconds": 0.1234, "simulated_ms": 1.5}
  ],
  "total_wall_seconds": 6.0830,
  "baseline_wall_seconds": 11.1740,
  "speedup_vs_baseline": 1.837,
  "peak_rss_bytes": 123
}
"#;

    #[test]
    fn parses_the_existing_snapshot_format() {
        let d = tmpdir("parse");
        std::fs::write(d.join("BENCH_1.json"), SAMPLE).unwrap();
        let s = read_snapshot(&d, 1).unwrap();
        assert_eq!(s.total_wall_seconds, 6.083);
        assert_eq!(s.scale.as_deref(), Some("Small"));
        assert_eq!(s.repeats, Some(3));
        assert!(!s.sanitize);
        assert!(s.comparable_to("Small", 3, false));
        assert!(!s.comparable_to("Small", 9, false));
        assert!(!s.comparable_to("Tiny", 3, false));
        assert!(
            !s.comparable_to("Small", 3, true),
            "a cached run must not baseline against an uncached one"
        );
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn sanitized_snapshots_are_never_baselines() {
        let d = tmpdir("sanitized");
        let text = SAMPLE.replace("\"repeats\": 3,", "\"repeats\": 3,\n  \"sanitize\": true,");
        std::fs::write(d.join("BENCH_4.json"), text).unwrap();
        let s = read_snapshot(&d, 4).unwrap();
        assert!(s.sanitize);
        assert!(!s.comparable_to("Small", 3, false));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn cached_snapshots_baseline_only_cached_runs() {
        let d = tmpdir("cached");
        let text = SAMPLE.replace("\"repeats\": 3,", "\"repeats\": 3,\n  \"sim_cache\": true,");
        std::fs::write(d.join("BENCH_5.json"), text).unwrap();
        let s = read_snapshot(&d, 5).unwrap();
        assert!(s.sim_cache);
        assert!(!s.comparable_to("Small", 3, false));
        assert!(s.comparable_to("Small", 3, true));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn huge_scale_snapshots_key_on_scale_like_any_other() {
        // The sharded mode made `--scale huge` reachable; its snapshots
        // must baseline only against other Huge runs, and a Huge run with
        // embedded `sharded` cells stays keyed on the in-core window's
        // scale (the cells are measured outside `total_wall_seconds`).
        let d = tmpdir("huge");
        let text = SAMPLE
            .replace("\"scale\": \"Small\"", "\"scale\": \"Huge\"")
            .replace(
                "\"peak_rss_bytes\": 123",
                "\"sharded\": [\n    {\"scale\": \"huge\", \"wall_seconds\": 53.0}\n  ],\n  \"peak_rss_bytes\": 123",
            );
        std::fs::write(d.join("BENCH_7.json"), text).unwrap();
        let s = read_snapshot(&d, 7).unwrap();
        assert_eq!(s.scale.as_deref(), Some("Huge"));
        assert!(s.comparable_to("Huge", 3, false));
        assert!(!s.comparable_to("Small", 3, false));
        assert!(!s.comparable_to("Large", 3, false));
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn latest_index_scans_the_chain() {
        let d = tmpdir("latest");
        assert_eq!(latest_index(&d), 0);
        for (name, body) in [
            ("BENCH_1.json", SAMPLE),
            ("BENCH_3.json", SAMPLE),
            ("BENCH_x.json", SAMPLE), // not a chain link
            ("BENCH_2.json.bak", SAMPLE),
        ] {
            std::fs::write(d.join(name), body).unwrap();
        }
        assert_eq!(latest_index(&d), 3);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_or_malformed_snapshots_read_as_none() {
        let d = tmpdir("missing");
        assert_eq!(read_snapshot(&d, 1), None);
        std::fs::write(d.join("BENCH_2.json"), "{ not json").unwrap();
        assert_eq!(read_snapshot(&d, 2), None);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn index_parsing_rejects_non_chain_names() {
        assert_eq!(snapshot_index("BENCH_12.json"), Some(12));
        assert_eq!(snapshot_index("BENCH_.json"), None);
        assert_eq!(snapshot_index("BENCH_1.json.tmp"), None);
        assert_eq!(snapshot_index("bench_1.json"), None);
    }
}
