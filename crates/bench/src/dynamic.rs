//! Dynamic-updates workload: batched engine maintenance vs full rebuild.
//!
//! The comparison the dynamic MSF engine exists to win: apply a scripted
//! stream of insert/delete batches to an RMAT graph once through
//! [`DynamicMsf::apply_batch`] and once by rebuilding the CSR and rerunning
//! serial Kruskal after every batch (what a static pipeline would do). Both
//! sides run the same deterministic op stream, and the engine's forest is
//! checked against the final rebuild so the speedup number can never come
//! from diverging work.
//!
//! This workload is reported as the `dynamic_updates` block of the
//! `bench_snapshot` chain; it runs *outside* the snapshot's timed table3
//! window so `total_wall_seconds` stays comparable link to link.

use ecl_graph::generators::rmat;
use ecl_graph::{CsrGraph, GraphBuilder, SuiteScale};
use ecl_mst::{serial_kruskal, DynamicMsf, UpdateOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Batches applied per run; enough to amortize one-off effects without
/// making the rebuild side dominate snapshot time at Medium+.
pub const BATCHES: usize = 8;
/// Operations per batch, roughly 2:1 insert:delete.
pub const OPS_PER_BATCH: usize = 32;

/// Wall-clock results of one dynamic-updates run.
#[derive(Debug, Clone, Copy)]
pub struct DynamicUpdatesReport {
    pub batches: usize,
    pub ops_per_batch: usize,
    /// Total seconds spent in `apply_batch` across all batches.
    pub engine_wall_seconds: f64,
    /// Total seconds spent rebuilding CSR + rerunning Kruskal per batch.
    pub rebuild_wall_seconds: f64,
}

impl DynamicUpdatesReport {
    /// How many times faster incremental maintenance was than rebuilding.
    pub fn speedup(&self) -> f64 {
        self.rebuild_wall_seconds / self.engine_wall_seconds.max(1e-12)
    }
}

/// RMAT scale exponent for the workload graph at each suite scale: the
/// suite's own base exponent, which keeps this total over new scales such
/// as `Huge` (the previous hand-written table had drifted into a copy of
/// `log2_base`).
fn rmat_scale(scale: SuiteScale) -> u32 {
    scale.log2_base()
}

/// The deterministic op stream: every batch mixes fresh inserts with
/// deletes of edges known live at generation time. The model map tracks
/// liveness so deletes always name a real edge (misses would make the
/// rebuild side artificially cheap).
fn make_batches(g: &CsrGraph, seed: u64) -> Vec<Vec<UpdateOp>> {
    let n = g.num_vertices() as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: BTreeMap<(u32, u32), u32> = g
        .edges()
        .map(|e| ((e.src.min(e.dst), e.src.max(e.dst)), e.weight))
        .collect();
    let mut batches = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let mut ops = Vec::with_capacity(OPS_PER_BATCH);
        for k in 0..OPS_PER_BATCH {
            if k % 3 == 2 && !live.is_empty() {
                let idx = rng.gen_range(0..live.len());
                let (&(u, v), _) = live.iter().nth(idx).unwrap();
                live.remove(&(u, v));
                ops.push(UpdateOp::Delete { u, v });
            } else {
                let u = rng.gen_range(0..n);
                let mut v = rng.gen_range(0..n);
                if v == u {
                    v = (v + 1) % n;
                }
                let w = rng.gen_range(1..1_000_000u32);
                let key = (u.min(v), u.max(v));
                let slot = live.entry(key).or_insert(w);
                *slot = (*slot).min(w);
                ops.push(UpdateOp::Insert { u, v, w });
            }
        }
        batches.push(ops);
    }
    batches
}

/// Rebuild path: CSR from the live edge set, then serial Kruskal.
fn rebuild_weight(n: usize, live: &BTreeMap<(u32, u32), u32>) -> u64 {
    let mut b = GraphBuilder::with_capacity(n, live.len());
    for (&(u, v), &w) in live {
        b.add_edge(u, v, w);
    }
    let g = b.build();
    serial_kruskal(&g).total_weight
}

/// Runs the workload at `scale` with the given RNG seed and returns both
/// sides' wall times. Panics if the engine's final forest weight disagrees
/// with the final rebuild — a wrong answer must never report a speedup.
pub fn measure_dynamic_updates(scale: SuiteScale, seed: u64) -> DynamicUpdatesReport {
    let g = rmat(rmat_scale(scale), 8, seed);
    let n = g.num_vertices();
    let batches = make_batches(&g, seed ^ 0x9E37_79B9_7F4A_7C15);

    // Engine side: seed once from the CSR, then incremental batches.
    let mut engine = DynamicMsf::from_graph(&g);
    let mut engine_wall = 0.0;
    for ops in &batches {
        engine_wall += crate::runner::wall(|| {
            engine.apply_batch(ops);
        });
    }

    // Rebuild side: replay the same ops into a live-edge map and pay a full
    // CSR build + Kruskal after every batch, like a static pipeline would.
    let mut live: BTreeMap<(u32, u32), u32> = g
        .edges()
        .map(|e| ((e.src.min(e.dst), e.src.max(e.dst)), e.weight))
        .collect();
    let mut rebuild_wall = 0.0;
    let mut rebuilt_weight = 0;
    for ops in &batches {
        for op in ops {
            match *op {
                UpdateOp::Insert { u, v, w } => {
                    if u != v {
                        let key = (u.min(v), u.max(v));
                        let slot = live.entry(key).or_insert(w);
                        *slot = (*slot).min(w);
                    }
                }
                UpdateOp::Delete { u, v } => {
                    live.remove(&(u.min(v), u.max(v)));
                }
            }
        }
        rebuild_wall += crate::runner::wall(|| {
            rebuilt_weight = rebuild_weight(n, &live);
        });
    }

    assert_eq!(
        engine.total_weight(),
        rebuilt_weight,
        "dynamic engine and rebuild disagree on the final forest weight"
    );

    DynamicUpdatesReport {
        batches: batches.len(),
        ops_per_batch: OPS_PER_BATCH,
        engine_wall_seconds: engine_wall,
        rebuild_wall_seconds: rebuild_wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_consistent_and_fast() {
        let r = measure_dynamic_updates(SuiteScale::Tiny, 7);
        assert_eq!(r.batches, BATCHES);
        assert_eq!(r.ops_per_batch, OPS_PER_BATCH);
        assert!(r.engine_wall_seconds >= 0.0 && r.rebuild_wall_seconds > 0.0);
    }

    #[test]
    fn op_stream_is_deterministic() {
        let g = rmat(10, 8, 3);
        assert_eq!(make_batches(&g, 5), make_batches(&g, 5));
        assert_ne!(make_batches(&g, 5), make_batches(&g, 6));
    }
}
