//! Opt-in on-disk measurement store shared by the experiment binaries.
//!
//! `run_all.sh` regenerates every table and figure in one sweep, and many of
//! those binaries evaluate the *same cell*: fig5 re-times the exact
//! (graph, config, profile) ladder cells Table 5 just timed, and the CPU
//! wall-clock columns of Tables 3 and 4 are the same profile-independent
//! measurements. Pointing `ECL_SIM_CACHE` at a directory turns those
//! re-evaluations into replays:
//!
//! * **Simulated cells** ([`sim_cell`], [`sim_result_cell`]) are pure
//!   functions of (graph, config, profile) — the simulator is
//!   single-threaded and bit-deterministic — so replaying one is exact, not
//!   approximate. They are stored keyed by the graph's
//!   [`CsrGraph::content_hash`] plus a caller-supplied config/profile
//!   fingerprint.
//! * **Wall-clock CPU cells** ([`cpu_cell`]) are real measurements; the
//!   store replays the *median already measured for the identical cell*
//!   (same code, same graph bytes, same repeat count) rather than measuring
//!   the same quantity twice in one sweep — the CPU codes never read the
//!   GPU profile, so a Table 4 cell is the Table 3 cell. The stored value
//!   is still an honest median of real runs taken in an exclusive phase.
//!
//! The store is only valid within a single build: `run_all.sh` clears it at
//! the start of every sweep. When `ECL_SIM_CACHE` is unset (the default for
//! direct binary invocations and all tests) every path measures live.

use ecl_graph::CsrGraph;
use ecl_mst::MstError;
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// How one store lookup resolved.
///
/// Every lookup lands in the process-wide [`tally`] even when metrics are
/// off, so drivers can always report cache effectiveness; with an active
/// `ecl-metrics` session the same outcomes also feed the
/// `ecl.simcache.*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A readable, parseable entry existed and was replayed.
    Hit,
    /// An entry existed but did not parse (truncated write, foreign file):
    /// it is re-measured and overwritten, never trusted.
    Stale,
    /// No entry: the cell was measured live and stored.
    Miss,
    /// `ECL_SIM_CACHE` is unset; the cell was measured live, nothing stored.
    Disabled,
}

// Always-on process tally: plain relaxed counters, no gate — outcome
// reporting must work even when the metrics registry is inactive.
static HITS: AtomicU64 = AtomicU64::new(0);
static STALE: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static WRITES: AtomicU64 = AtomicU64::new(0);
static DISABLED: AtomicU64 = AtomicU64::new(0);

fn note(outcome: Outcome) {
    match outcome {
        Outcome::Hit => {
            HITS.fetch_add(1, Ordering::Relaxed);
            ecl_metrics::counter!(SIMCACHE_HIT);
        }
        Outcome::Stale => {
            STALE.fetch_add(1, Ordering::Relaxed);
            ecl_metrics::counter!(SIMCACHE_STALE);
        }
        Outcome::Miss => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            ecl_metrics::counter!(SIMCACHE_MISS);
        }
        Outcome::Disabled => {
            DISABLED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn note_write() {
    WRITES.fetch_add(1, Ordering::Relaxed);
    ecl_metrics::counter!(SIMCACHE_WRITE);
}

/// Snapshot of the process-wide lookup tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Replayed entries.
    pub hits: u64,
    /// Unparseable entries that were re-measured.
    pub stale: u64,
    /// Absent entries that were measured and stored.
    pub misses: u64,
    /// Entries written (misses and stale re-measures that stored).
    pub writes: u64,
    /// Lookups taken with the store disabled.
    pub disabled: u64,
}

/// Reads the process-wide tally (cheap; relaxed loads).
pub fn tally() -> Tally {
    Tally {
        hits: HITS.load(Ordering::Relaxed),
        stale: STALE.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        writes: WRITES.load(Ordering::Relaxed),
        disabled: DISABLED.load(Ordering::Relaxed),
    }
}

/// One-line cache effectiveness summary for driver footers.
pub fn summary_line() -> String {
    let t = tally();
    if !enabled() {
        return format!("sim-cache: disabled ({} live evaluations)", t.disabled);
    }
    let looked = t.hits + t.misses + t.stale;
    let rate = if looked == 0 {
        0.0
    } else {
        100.0 * t.hits as f64 / looked as f64
    };
    format!(
        "sim-cache: {} hits / {} misses / {} stale ({rate:.1}% hit rate), {} cells written",
        t.hits, t.misses, t.stale, t.writes
    )
}

/// Prints [`summary_line`] to stderr when the store saw any traffic.
/// Drivers call this at exit so a sweep's replay economy is visible even
/// without metrics.
pub fn log_summary() {
    let t = tally();
    if enabled() && t.hits + t.misses + t.stale + t.writes > 0 {
        eprintln!("{}", summary_line());
    }
}

/// Scans the store directory and publishes the `ecl.simcache.entries` /
/// `ecl.simcache.bytes` gauges. A no-op unless both the store and a
/// metrics session are active.
pub fn publish_store_stats() {
    if !ecl_metrics::active() {
        return;
    }
    let Some(dir) = store_dir() else { return };
    let (mut entries, mut bytes) = (0u64, 0u64);
    if let Ok(rd) = std::fs::read_dir(dir) {
        for e in rd.flatten() {
            if e.path().extension().is_some_and(|x| x == "cell") {
                entries += 1;
                bytes += e.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    ecl_metrics::gauge!(SIMCACHE_ENTRIES, entries);
    ecl_metrics::gauge!(SIMCACHE_BYTES, bytes);
}

/// The store directory from `ECL_SIM_CACHE`, or `None` when disabled.
pub fn store_dir() -> Option<&'static Path> {
    static DIR: OnceLock<Option<PathBuf>> = OnceLock::new();
    DIR.get_or_init(|| match std::env::var("ECL_SIM_CACHE") {
        Ok(v) if !v.is_empty() && v != "0" => Some(PathBuf::from(v)),
        _ => None,
    })
    .as_deref()
}

/// True when the on-disk store is enabled for this process.
pub fn enabled() -> bool {
    store_dir().is_some()
}

/// SplitMix-style string digest for config/profile fingerprints.
fn str_hash(s: &str) -> u64 {
    let mut h = 0x7369_6D63_6163_6865u64;
    for &b in s.as_bytes() {
        h ^= u64::from(b).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = h.rotate_left(27).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 31;
    }
    h
}

// Content hashing walks every CSR array, so digest each graph once per
// process (uids are process-unique and never reused; a handful of suite
// entries means a linear scan suffices).
thread_local! {
    static GRAPH_HASHES: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

fn graph_hash(g: &CsrGraph) -> u64 {
    let uid = g.uid();
    let hit = GRAPH_HASHES.with(|m| m.borrow().iter().find(|(u, _)| *u == uid).map(|(_, h)| *h));
    if let Some(h) = hit {
        return h;
    }
    let h = g.content_hash();
    GRAPH_HASHES.with(|m| m.borrow_mut().push((uid, h)));
    h
}

fn cell_path(dir: &Path, kind: &str, fingerprint: &str, g: &CsrGraph) -> PathBuf {
    dir.join(format!(
        "{kind}-{:016x}-{:016x}.cell",
        graph_hash(g),
        str_hash(fingerprint)
    ))
}

enum Load {
    /// A parseable entry: stored seconds, or `None` for a stored "NC".
    Value(Option<f64>),
    /// No file at all — a first evaluation of this cell.
    Absent,
    /// A file that would not parse (torn write, foreign content): treated
    /// as a miss but reported distinctly so corruption is visible.
    Stale,
}

fn load(path: &Path) -> Load {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Load::Absent;
    };
    let text = text.trim();
    if text == "NC" {
        return Load::Value(None);
    }
    match text.parse::<f64>() {
        Ok(s) if s.is_finite() => Load::Value(Some(s)),
        _ => Load::Stale,
    }
}

/// Best-effort atomic store: concurrent binaries may race on the same cell,
/// so write a temp file and rename (equal contents either way — the cell is
/// a pure function of its key). Failures only cost a future replay.
fn store(path: &Path, value: Option<f64>) {
    let Some(dir) = path.parent() else { return };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let body = match value {
        Some(s) => format!("{s:.17e}\n"),
        None => "NC\n".to_string(),
    };
    let tmp = path.with_extension(format!("tmp{}", std::process::id()));
    if std::fs::write(&tmp, body).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

fn cached(
    dir: Option<&Path>,
    kind: &str,
    fingerprint: &str,
    g: &CsrGraph,
    f: impl FnOnce() -> Option<f64>,
) -> Option<f64> {
    let Some(dir) = dir else {
        note(Outcome::Disabled);
        return f();
    };
    let path = cell_path(dir, kind, fingerprint, g);
    match load(&path) {
        Load::Value(v) => {
            note(Outcome::Hit);
            return v;
        }
        Load::Absent => note(Outcome::Miss),
        Load::Stale => note(Outcome::Stale),
    }
    let v = f();
    store(&path, v);
    note_write();
    v
}

/// A bit-deterministic simulated cell: evaluates `f` **once** (the
/// simulated clock is a pure function of its inputs, so the median of any
/// number of repeats is that single value) and replays it from the store on
/// later evaluations of the same (graph, fingerprint) in any process.
pub fn sim_cell(kind: &str, fingerprint: &str, g: &CsrGraph, f: impl FnOnce() -> f64) -> f64 {
    cached(store_dir(), kind, fingerprint, g, || Some(f()))
        .expect("sim_cell stores only Some values")
}

/// [`sim_cell`] for simulated codes that may decline an input: the paper's
/// "NC" verdict is as deterministic as the clock, so it is stored and
/// replayed the same way.
pub fn sim_result_cell(
    kind: &str,
    fingerprint: &str,
    g: &CsrGraph,
    f: impl FnOnce() -> Result<f64, MstError>,
) -> Result<f64, MstError> {
    cached(store_dir(), kind, fingerprint, g, || f().ok()).ok_or(MstError::NotConnected)
}

/// A measured wall-clock cell: `f` must produce an honest median of real
/// runs (measured with the worker pool quiesced); the store replays it for
/// the identical (code, graph bytes, repeats) cell so one sweep never
/// measures the same quantity twice. CPU codes ignore the GPU profile, so
/// the fingerprint deliberately excludes it.
pub fn cpu_cell(
    code: &str,
    repeats: usize,
    g: &CsrGraph,
    f: impl FnOnce() -> Option<f64>,
) -> Option<f64> {
    cached(store_dir(), "cpu", &format!("{code}|r{repeats}"), g, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::generators::grid2d;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ecl-simcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn replays_seconds_and_nc_without_reevaluating() {
        let dir = tmpdir("replay");
        let g = grid2d(8, 1);
        let mut calls = 0;
        let first = cached(Some(&dir), "t", "cfg", &g, || {
            calls += 1;
            Some(1.25)
        });
        assert_eq!(first, Some(1.25));
        let second = cached(Some(&dir), "t", "cfg", &g, || {
            calls += 1;
            Some(99.0)
        });
        assert_eq!(second, Some(1.25), "must replay the stored cell");
        assert_eq!(calls, 1);
        // NC verdicts replay too.
        let nc = cached(Some(&dir), "t", "nc-cfg", &g, || None);
        assert_eq!(nc, None);
        let nc2 = cached(Some(&dir), "t", "nc-cfg", &g, || Some(3.0));
        assert_eq!(nc2, None, "stored NC wins over a fresh value");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_fingerprints_and_graphs_get_distinct_cells() {
        let dir = tmpdir("keys");
        let g8 = grid2d(8, 1);
        let g9 = grid2d(9, 1);
        assert_eq!(cached(Some(&dir), "t", "a", &g8, || Some(1.0)), Some(1.0));
        assert_eq!(cached(Some(&dir), "t", "b", &g8, || Some(2.0)), Some(2.0));
        assert_eq!(cached(Some(&dir), "t", "a", &g9, || Some(3.0)), Some(3.0));
        assert_eq!(cached(Some(&dir), "u", "a", &g8, || Some(4.0)), Some(4.0));
        assert_eq!(cached(Some(&dir), "t", "a", &g8, || Some(9.0)), Some(1.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn roundtrip_preserves_full_precision() {
        let dir = tmpdir("precision");
        let g = grid2d(4, 1);
        let exact = 1.0 / 3.0 * 1e-7;
        assert_eq!(
            cached(Some(&dir), "t", "p", &g, || Some(exact)),
            Some(exact)
        );
        assert_eq!(cached(Some(&dir), "t", "p", &g, || Some(0.0)), Some(exact));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_store_measures_live_every_time() {
        let g = grid2d(4, 1);
        let mut calls = 0;
        for _ in 0..3 {
            cached(None, "t", "x", &g, || {
                calls += 1;
                Some(calls as f64)
            });
        }
        assert_eq!(calls, 3);
    }

    #[test]
    fn stale_entry_is_remeasured_and_overwritten() {
        let dir = tmpdir("stale");
        let g = grid2d(6, 1);
        let before = tally();
        // Seed a corrupt entry at the exact cell path.
        std::fs::create_dir_all(&dir).unwrap();
        let path = cell_path(&dir, "t", "s", &g);
        std::fs::write(&path, "not-a-number").unwrap();
        assert_eq!(cached(Some(&dir), "t", "s", &g, || Some(7.0)), Some(7.0));
        // The overwrite repairs the cell: the next lookup replays it.
        assert_eq!(cached(Some(&dir), "t", "s", &g, || Some(9.0)), Some(7.0));
        // The tally is process-global and other tests run concurrently, so
        // assert deltas as lower bounds.
        let after = tally();
        assert!(after.stale > before.stale);
        assert!(after.hits > before.hits);
        assert!(after.writes > before.writes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_line_reports_without_metrics() {
        // ECL_SIM_CACHE is unset under `cargo test`, so the disabled wording
        // must surface — outcome reporting cannot depend on the metrics gate.
        let g = grid2d(4, 1);
        cached(None, "t", "sum", &g, || Some(1.0));
        let line = summary_line();
        assert!(line.starts_with("sim-cache: disabled"), "got: {line}");
        assert!(tally().disabled >= 1);
    }

    #[test]
    fn equal_content_shares_a_cell_across_instances() {
        let dir = tmpdir("content");
        // Two builds of the same generator: different uids, same bytes.
        let a = grid2d(8, 7);
        let b = grid2d(8, 7);
        assert_ne!(a.uid(), b.uid());
        assert_eq!(cached(Some(&dir), "t", "c", &a, || Some(5.0)), Some(5.0));
        assert_eq!(
            cached(Some(&dir), "t", "c", &b, || Some(8.0)),
            Some(5.0),
            "content-equal graph must replay the stored cell"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
