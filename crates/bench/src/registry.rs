//! The registry of MST codes measured by the experiment binaries — the
//! analogue of Table 1 plus our own code's two variants.

use ecl_baselines as b;
use ecl_gpu_sim::GpuProfile;
use ecl_graph::CsrGraph;
use ecl_mst::{ecl_mst_gpu_with, MstError, OptConfig};
use std::cell::RefCell;

// The two ECL-MST columns are two projections — kernel seconds, and kernel
// plus transfer seconds — of the same bit-deterministic simulation, so the
// plain column's run leaves its timings here and the memcpy column projects
// them instead of re-simulating. Keyed by the graph's process-unique uid
// plus the profile; any other key falls back to a fresh run, so each
// column also stands alone. Uids are never reused, so a stale slot can
// only miss, never yield a wrong timing.
thread_local! {
    static LAST_ECL_RUN: RefCell<Option<(u64, GpuProfile, f64, f64)>> =
        const { RefCell::new(None) };
}

// Simulated clocks are pure functions of (graph, profile): the simulator is
// single-threaded and bit-deterministic (the golden-counters test pins every
// launch's event totals), so re-running a GPU-sim code inside a
// `median_time` repeat loop reproduces the identical number. This memo makes
// those repeats free; the wall-clock CPU codes are *not* memoized — their
// repeats exist to absorb real timing noise. Keys pair the code's static
// name pointer with the graph uid and profile (uids are process-unique and
// never reused). A handful of entries per suite, so a linear scan suffices.
type SimMemoEntry = (usize, u64, GpuProfile, Result<f64, MstError>);
thread_local! {
    static SIM_MEMO: RefCell<Vec<SimMemoEntry>> = const { RefCell::new(Vec::new()) };
}

/// Runs `run` once per (code, graph, profile) and replays the simulated
/// timing (or the "NC" verdict) on subsequent calls — from the in-process
/// memo first, then from the cross-process measurement store when
/// `ECL_SIM_CACHE` is set (so a `run_all.sh` sweep simulates each cell once
/// across all its binaries).
fn sim_cached(
    name: &'static str,
    g: &CsrGraph,
    p: GpuProfile,
    run: impl FnOnce() -> Result<f64, MstError>,
) -> Result<f64, MstError> {
    let key = (name.as_ptr() as usize, g.uid(), p);
    let hit = SIM_MEMO.with(|m| {
        m.borrow()
            .iter()
            .find(|(n, u, pr, _)| (*n, *u, *pr) == key)
            .map(|(_, _, _, r)| r.clone())
    });
    if let Some(r) = hit {
        // In-process memo replays (repeat loops, shared cells within one
        // binary) are distinct from on-disk store hits.
        ecl_metrics::counter!(SIMCACHE_REPLAY);
        return r;
    }
    let r = crate::simcache::sim_result_cell(name, p.name, g, run);
    SIM_MEMO.with(|m| m.borrow_mut().push((key.0, key.1, key.2, r.clone())));
    r
}

/// Execution domain of a code (determines how it is timed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeKind {
    /// Simulated-GPU code: timed by the device's simulated clock.
    Gpu,
    /// Simulated-GPU code including graph/result transfer time.
    GpuWithMemcpy,
    /// Host code (parallel or serial): timed by real wall-clock.
    Cpu,
}

/// Signature of a single timed run: input graph + GPU profile in, seconds
/// out (or the paper's "NC").
pub type RunFn = Box<dyn Fn(&CsrGraph, GpuProfile) -> Result<f64, MstError> + Sync>;

/// A timing outcome for one (code, input) cell.
#[derive(Debug, Clone, Copy)]
pub enum Timing {
    /// Seconds (simulated for GPU codes, measured for CPU codes).
    Seconds(f64),
    /// The paper's "NC": the code cannot handle multi-component inputs.
    NotConnected,
}

impl Timing {
    /// The seconds, if the run succeeded.
    pub fn seconds(&self) -> Option<f64> {
        match self {
            Timing::Seconds(s) => Some(*s),
            Timing::NotConnected => None,
        }
    }
}

/// One measurable MST code.
pub struct MstCode {
    /// Column name as it appears in the paper's tables.
    pub name: &'static str,
    /// Execution domain.
    pub kind: CodeKind,
    /// Runs the code once and returns its timing (verification happens in
    /// the test suite, not the timed path — as in the paper).
    pub run: RunFn,
}

/// Builds the full registry in the column order of Tables 3/4. `cugraph`
/// toggles the cuGraph column (System 2 only in the paper).
pub fn all_codes(cugraph: bool) -> Vec<MstCode> {
    let mut codes: Vec<MstCode> = vec![
        MstCode {
            name: "ECL-MST",
            kind: CodeKind::Gpu,
            run: Box::new(|g, p| {
                sim_cached("ECL-MST", g, p, || {
                    let r = ecl_mst_gpu_with(g, &OptConfig::full(), p);
                    LAST_ECL_RUN.with(|m| {
                        *m.borrow_mut() = Some((g.uid(), p, r.kernel_seconds, r.memcpy_seconds));
                    });
                    Ok(r.kernel_seconds)
                })
            }),
        },
        MstCode {
            name: "ECL-MST memcpy",
            kind: CodeKind::GpuWithMemcpy,
            run: Box::new(|g, p| {
                sim_cached("ECL-MST memcpy", g, p, || {
                    if let Some((uid, prof, kernel, memcpy)) = LAST_ECL_RUN.with(|m| *m.borrow()) {
                        if uid == g.uid() && prof == p {
                            return Ok(kernel + memcpy);
                        }
                    }
                    let r = ecl_mst_gpu_with(g, &OptConfig::full(), p);
                    Ok(r.kernel_seconds + r.memcpy_seconds)
                })
            }),
        },
        MstCode {
            name: "Jucele GPU",
            kind: CodeKind::Gpu,
            run: Box::new(|g, p| {
                sim_cached("Jucele GPU", g, p, || {
                    Ok(b::jucele_gpu(g, p)?.kernel_seconds)
                })
            }),
        },
        MstCode {
            name: "Gunrock GPU",
            kind: CodeKind::Gpu,
            run: Box::new(|g, p| {
                sim_cached("Gunrock GPU", g, p, || {
                    Ok(b::gunrock_gpu(g, p)?.kernel_seconds)
                })
            }),
        },
    ];
    if cugraph {
        codes.push(MstCode {
            name: "cuGraph GPU",
            kind: CodeKind::Gpu,
            run: Box::new(|g, p| {
                sim_cached("cuGraph GPU", g, p, || {
                    Ok(b::cugraph_gpu(g, p).kernel_seconds)
                })
            }),
        });
    }
    codes.extend([
        MstCode {
            name: "UMinho GPU",
            kind: CodeKind::Gpu,
            run: Box::new(|g, p| {
                sim_cached(
                    "UMinho GPU",
                    g,
                    p,
                    || Ok(b::uminho_gpu(g, p).kernel_seconds),
                )
            }),
        },
        MstCode {
            name: "Lonestar CPU",
            kind: CodeKind::Cpu,
            run: Box::new(|g, _| Ok(crate::runner::wall(|| b::lonestar_cpu(g)))),
        },
        MstCode {
            name: "PBBS CPU",
            kind: CodeKind::Cpu,
            run: Box::new(|g, _| Ok(crate::runner::wall(|| b::pbbs_parallel(g)))),
        },
        MstCode {
            name: "UMinho CPU",
            kind: CodeKind::Cpu,
            run: Box::new(|g, _| Ok(crate::runner::wall(|| b::uminho_cpu(g)))),
        },
        MstCode {
            name: "PBBS Ser.",
            kind: CodeKind::Cpu,
            run: Box::new(|g, _| Ok(crate::runner::wall(|| b::pbbs_serial(g)))),
        },
    ]);
    codes
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::generators::grid2d;

    #[test]
    fn registry_matches_table_columns() {
        // Table 3 has 9 code columns; Table 4 adds cuGraph for 10.
        assert_eq!(all_codes(false).len(), 9);
        assert_eq!(all_codes(true).len(), 10);
        assert_eq!(all_codes(true)[4].name, "cuGraph GPU");
    }

    #[test]
    fn every_code_times_a_connected_graph() {
        let g = grid2d(8, 1);
        for code in all_codes(true) {
            let t = (code.run)(&g, GpuProfile::TITAN_V)
                .unwrap_or_else(|e| panic!("{} failed: {e}", code.name));
            assert!(t > 0.0, "{}", code.name);
        }
    }

    #[test]
    fn mst_only_codes_error_on_forests() {
        let g = ecl_graph::generators::rmat(8, 4, 1);
        for code in all_codes(true) {
            let r = (code.run)(&g, GpuProfile::TITAN_V);
            if code.name == "Jucele GPU" || code.name == "Gunrock GPU" {
                assert!(r.is_err(), "{} should be NC", code.name);
            } else {
                assert!(r.is_ok(), "{} should handle MSF", code.name);
            }
        }
    }
}
