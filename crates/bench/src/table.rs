//! Plain-text table rendering in the style of the paper's Tables 2–5, plus
//! CSV output matching the artifact's `generate_*_tables.py` products.

use crate::registry::Timing;

/// A rendered table: header row plus body rows of equal arity.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders with aligned columns (first column left, rest right).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], out: &mut String| {
            for (i, cell) in row.iter().enumerate() {
                if i == 0 {
                    out.push_str(&format!("{:<w$}", cell, w = widths[0]));
                } else {
                    out.push_str(&format!("  {:>w$}", cell, w = widths[i]));
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }

    /// Renders as CSV (the artifact's output format).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for row in std::iter::once(&self.header).chain(&self.rows) {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a timing cell like the paper: seconds with 4 decimals, or "NC".
pub fn fmt_timing(t: &Timing) -> String {
    match t {
        Timing::Seconds(s) => format!("{s:.6}"),
        Timing::NotConnected => "NC".to_string(),
    }
}

/// Formats an optional geomean cell ("NC" when a column had any NC input).
pub fn fmt_geomean(g: Option<f64>) -> String {
    match g {
        Some(s) => format!("{s:.6}"),
        None => "NC".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["Input", "A", "B"]);
        t.row(["grid", "1.5", "22.25"]);
        t.row(["road-very-long-name", "0.1", "3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Input"));
        assert!(lines[2].starts_with("grid"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new(["A", "B"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(["A", "B"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "A,B\n1,2\n");
    }

    #[test]
    fn timing_formats() {
        assert_eq!(fmt_timing(&Timing::NotConnected), "NC");
        assert!(fmt_timing(&Timing::Seconds(0.5)).starts_with("0.5000"));
        assert_eq!(fmt_geomean(None), "NC");
    }
}
