//! ASCII bar charts and box plots for the figure regenerators (Figures 3–7
//! are bar/box charts in the paper; the binaries render the same series as
//! text so the output is self-contained).

/// Renders a horizontal bar chart: one labeled bar per `(label, value)`,
/// scaled to `width` characters at the maximum value.
pub fn bar_chart(series: &[(String, f64)], width: usize, unit: &str) -> String {
    let max = series.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    let label_w = series.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in series {
        let filled = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{:<label_w$} |{:<width$}| {:>10.1} {unit}\n",
            label,
            "#".repeat(filled.min(width)),
            value,
        ));
    }
    out
}

/// Five-number summary used by the box plots (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNum {
    /// Minimum (bottom whisker).
    pub min: f64,
    /// First quartile (box bottom).
    pub q1: f64,
    /// Median (box line).
    pub median: f64,
    /// Third quartile (box top).
    pub q3: f64,
    /// Maximum (top whisker).
    pub max: f64,
}

/// Computes the five-number summary of a non-empty sample.
pub fn five_num(samples: &[f64]) -> FiveNum {
    assert!(!samples.is_empty());
    let mut xs = samples.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |p: f64| -> f64 {
        let idx = p * (xs.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        xs[lo] * (1.0 - frac) + xs[hi] * frac
    };
    FiveNum {
        min: xs[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: *xs.last().unwrap(),
    }
}

/// Renders one box-plot row: `min [q1 | median | q3] max`.
pub fn box_row(label: &str, f: &FiveNum, unit: &str) -> String {
    format!(
        "{label:<18} min {:>9.1}  q1 {:>9.1}  med {:>9.1}  q3 {:>9.1}  max {:>9.1} {unit}",
        f.min, f.q1, f.median, f.q3, f.max
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let s = bar_chart(&[("a".into(), 10.0), ("bb".into(), 5.0)], 20, "Medges/s");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].matches('#').count() == 20);
        assert!(lines[1].matches('#').count() == 10);
    }

    #[test]
    fn five_num_of_known_sample() {
        let f = five_num(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.max, 5.0);
        assert_eq!(f.q1, 2.0);
        assert_eq!(f.q3, 4.0);
    }

    #[test]
    fn five_num_single_sample() {
        let f = five_num(&[7.0]);
        assert_eq!(f.min, 7.0);
        assert_eq!(f.max, 7.0);
        assert_eq!(f.median, 7.0);
    }

    #[test]
    #[should_panic]
    fn five_num_rejects_empty() {
        five_num(&[]);
    }

    #[test]
    fn box_row_contains_label() {
        let f = five_num(&[1.0, 2.0]);
        assert!(box_row("coPapersDBLP", &f, "Medges/s").contains("coPapersDBLP"));
    }
}
