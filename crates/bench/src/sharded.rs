//! Sharded out-of-core measurement mode (`bench_snapshot --sharded …`).
//!
//! Each cell runs the external-memory pipeline
//! ([`ecl_mst::sharded_msf`] with a spill directory) over the
//! `r4-2e23.sym` twin's shard source at one suite scale, under a reset
//! `VmHWM` high-water mark, and reports:
//!
//! * wall seconds of the full sharded solve (shard generation included),
//! * the measured peak RSS against the scale's **hard budget** — the
//!   contract that makes "out-of-core" falsifiable. `bench_snapshot`
//!   exits 6 when any cell exceeds its budget, next to the trace gate's
//!   exit 4 and the metrics gate's exit 5;
//! * at scales where the monolith still fits ([`SuiteScale::Large`] and
//!   below), the in-core `GraphBuilder + serial_kruskal` wall clock and a
//!   bit-exact parity verdict against it.

use ecl_graph::suite::{r4_monolith, r4_shard_source};
use ecl_graph::SuiteScale;
use ecl_mst::{serial_kruskal, sharded_msf, ShardedConfig};

use crate::runner::{peak_rss_bytes, reset_peak_rss, wall};

/// Shard count per scale: enough shards that no single shard's working set
/// dominates the merge tree, without drowning small inputs in fixed
/// per-shard costs.
pub fn default_shards(scale: SuiteScale) -> usize {
    match scale {
        SuiteScale::Tiny | SuiteScale::Small => 4,
        SuiteScale::Medium => 8,
        SuiteScale::Large => 8,
        SuiteScale::Huge => 16,
    }
}

/// Hard peak-RSS budget per scale, in bytes.
///
/// Derived from measured `VmHWM` of the spilling pipeline on the r4 twin
/// (BENCH_6.json `sharded` block: ~110 MiB at Large, ~900 MiB at Huge)
/// with at least 2× headroom for allocator and platform variance. The point is
/// the *shape*: the budget grows with the survivor working set (O(n) at
/// the final merge), not with the edge count — a monolithic build of the
/// Huge twin needs several times this much just for its edge list
/// (~1.5 GiB of raw triples before the CSR and the packed sort keys).
pub fn rss_budget_bytes(scale: SuiteScale) -> u64 {
    const MIB: u64 = 1 << 20;
    match scale {
        // Small scales are dominated by fixed process overhead (binary,
        // rayon pool, suite tables), not the pipeline.
        SuiteScale::Tiny | SuiteScale::Small => 256 * MIB,
        SuiteScale::Medium => 384 * MIB,
        SuiteScale::Large => 512 * MIB,
        SuiteScale::Huge => 2048 * MIB,
    }
}

/// One measured sharded cell, ready for JSON embedding.
#[derive(Debug, Clone)]
pub struct ShardedCell {
    /// Suite scale of the r4 twin this cell ran.
    pub scale: SuiteScale,
    /// Shard count used.
    pub shards: usize,
    /// Wall seconds of the spilling sharded solve, generation included.
    pub wall_seconds: f64,
    /// Wall seconds of the monolithic `GraphBuilder + serial_kruskal`
    /// build of the same twin; `None` above Large (the monolith is what
    /// the sharded mode exists to avoid).
    pub monolith_wall_seconds: Option<f64>,
    /// Bit-exact forest parity against the monolith (`None` above Large).
    pub parity: Option<bool>,
    /// Forest edges in the final merged MSF.
    pub forest_edges: usize,
    /// Total stage-1 survivor edges across shards.
    pub survivor_edges: u64,
    /// Hierarchical merge levels run.
    pub merge_rounds: u32,
    /// Bytes written to survivor spill files.
    pub spill_bytes: u64,
    /// `VmHWM` after the sharded solve, reset immediately before it.
    pub peak_rss_bytes: u64,
    /// The scale's declared budget.
    pub rss_budget_bytes: u64,
}

impl ShardedCell {
    /// True when the measured peak stayed under the declared budget (or
    /// the platform could not measure RSS at all, which reports 0 — the
    /// gate only fires on evidence of a violation, and CI runs on Linux
    /// where `VmHWM` always reads).
    pub fn within_budget(&self) -> bool {
        self.peak_rss_bytes <= self.rss_budget_bytes
    }

    /// Sharded wall clock as a multiple of the monolith's, when measured.
    pub fn slowdown_vs_monolith(&self) -> Option<f64> {
        self.monolith_wall_seconds
            .map(|m| self.wall_seconds / m.max(1e-12))
    }
}

/// Whether the monolithic twin is safe to materialize for comparison.
fn monolith_fits(scale: SuiteScale) -> bool {
    !matches!(scale, SuiteScale::Huge)
}

/// Measures one sharded cell at `scale`. Spill files live under a
/// process-unique directory in the system temp dir and are removed before
/// returning (the pipeline itself already deletes each file on load; this
/// clears the directory).
pub fn measure_sharded(scale: SuiteScale) -> ShardedCell {
    let shards = default_shards(scale);
    let spill = std::env::temp_dir().join(format!(
        "ecl-shard-spill-{}-{}",
        scale.name(),
        std::process::id()
    ));

    // The reset scopes VmHWM to this cell: anything the process peaked at
    // earlier (the table3 window, a previous cell) no longer masks it.
    let reset_ok = reset_peak_rss();
    let cfg = ShardedConfig::spilling(shards, &spill);
    let mut run = None;
    let wall_seconds = wall(|| {
        let src = r4_shard_source(scale);
        run = Some(sharded_msf(&src, &cfg));
    });
    let run = run.expect("sharded run completed");
    let peak = if reset_ok {
        peak_rss_bytes().unwrap_or(0)
    } else {
        0
    };
    ecl_metrics::gauge!(SHARD_PEAK_RSS_BYTES, peak as f64);
    std::fs::remove_dir_all(&spill).ok();

    let (monolith_wall_seconds, parity) = if monolith_fits(scale) {
        let mut built = None;
        let mw = wall(|| {
            let g = r4_monolith(scale);
            let expected = serial_kruskal(&g);
            built = Some((g, expected));
        });
        let (g, expected) = built.expect("monolith run completed");
        let got = run.forest.to_mst_result(&g);
        (Some(mw), Some(got.in_mst == expected.in_mst))
    } else {
        (None, None)
    };

    ShardedCell {
        scale,
        shards,
        wall_seconds,
        monolith_wall_seconds,
        parity,
        forest_edges: run.forest.num_edges(),
        survivor_edges: run.survivor_edges,
        merge_rounds: run.merge_rounds,
        spill_bytes: run.spill_bytes,
        peak_rss_bytes: peak,
        rss_budget_bytes: rss_budget_bytes(scale),
    }
}

/// Parses `--sharded SCALE[,SCALE...]` (e.g. `--sharded large,huge`) into
/// the list of sharded cells to measure. Absent flag means none; an
/// unknown scale or a missing value is a hard usage error, matching
/// [`crate::runner::scale_from_args`].
pub fn sharded_scales_from_args(args: &[String]) -> Vec<SuiteScale> {
    let Some(i) = args.iter().position(|a| a == "--sharded") else {
        return Vec::new();
    };
    let spec = match args.get(i + 1).map(String::as_str) {
        Some(s) if !s.starts_with("--") => s,
        _ => {
            eprintln!("error: --sharded requires a scale list, e.g. --sharded large,huge");
            std::process::exit(2);
        }
    };
    spec.split(',')
        .map(|name| match name {
            "tiny" => SuiteScale::Tiny,
            "small" => SuiteScale::Small,
            "medium" => SuiteScale::Medium,
            "large" => SuiteScale::Large,
            "huge" => SuiteScale::Huge,
            other => {
                eprintln!(
                    "error: unknown --sharded scale '{other}' \
                     (valid scales: tiny|small|medium|large|huge)"
                );
                std::process::exit(2);
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_cell_measures_and_holds_parity() {
        let cell = measure_sharded(SuiteScale::Tiny);
        assert_eq!(cell.scale, SuiteScale::Tiny);
        assert_eq!(cell.shards, default_shards(SuiteScale::Tiny));
        assert_eq!(
            cell.parity,
            Some(true),
            "sharded forest must match monolith"
        );
        assert!(cell.spill_bytes > 0, "spilling mode must write files");
        assert!(cell.forest_edges > 0);
        assert!(cell.merge_rounds > 0);
        // VmHWM is monotone per measurement window; on Linux the reset
        // makes it cell-scoped and the Tiny working set is far under
        // budget.
        if cell.peak_rss_bytes > 0 {
            assert!(
                cell.within_budget(),
                "tiny cell peak {} exceeded budget {}",
                cell.peak_rss_bytes,
                cell.rss_budget_bytes
            );
        }
    }

    #[test]
    fn scales_flag_parses_lists() {
        let to_args = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(sharded_scales_from_args(&[]).is_empty());
        assert_eq!(
            sharded_scales_from_args(&to_args(&["--sharded", "large,huge"])),
            vec![SuiteScale::Large, SuiteScale::Huge]
        );
        assert_eq!(
            sharded_scales_from_args(&to_args(&["--sharded", "tiny"])),
            vec![SuiteScale::Tiny]
        );
    }

    #[test]
    fn budgets_grow_with_scale() {
        assert!(rss_budget_bytes(SuiteScale::Huge) > rss_budget_bytes(SuiteScale::Large));
        assert!(rss_budget_bytes(SuiteScale::Large) > rss_budget_bytes(SuiteScale::Small));
    }
}
