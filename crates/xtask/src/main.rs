//! Workspace automation tasks, invoked as `cargo xtask <task>` (see
//! `.cargo/config.toml` for the alias).
//!
//! # `lint-metering`
//!
//! The gpu-sim cost model only meters device traffic that flows through the
//! buffer accessors (`ld`/`st`/`atomic_*`/...). Host-side accessors
//! (`host_read`, `host_write*`, `to_vec`, `as_slice`) are free by design —
//! they model driver-side work outside kernel time. Calling one *inside* a
//! kernel closure therefore smuggles unmetered traffic into a launch and
//! silently skews every simulated number downstream.
//!
//! This lint scans the kernel-bearing crates for `launch(` / `launch_warps(`
//! call spans and fails if a host accessor token appears inside one. Raw
//! host-slice indexing paired with an explicit `ctx.charge_*` call is fine
//! and not flagged; the tokens below are the accessors that bypass metering
//! entirely.
//!
//! The same pass guards the tracing instrumentation: ecl-trace ranges are
//! **host-side** constructs (they bracket launches on the session
//! timeline), so opening one *inside* a kernel closure would interleave
//! per-task events into the launch's complete event and corrupt the trace
//! nesting. `range!(` / `open_range(` inside a launch span is flagged, and
//! any file pairing raw `open_range(` calls with `close_range(` must keep
//! them balanced (prefer the `range!` guard, which cannot leak).
//!
//! A third pass guards the parallel CSR construction hot path
//! (`GraphBuilder::build`): a bare `for` loop or serial `.sort_unstable(`
//! outside every `par::`-helper call span would quietly reintroduce the
//! single-thread bottleneck the chunked build replaced, so it fails the
//! lint unless the line (or the line above) carries a
//! `lint-metering: serial-ok` waiver. The `build_serial` reference oracle
//! is exempt — only `fn build_chunked(` is scanned.
//!
//! A fourth pass guards the chunked SWAR kernels in `ecl-graph` the same
//! way: inside the blessed hot functions (`count_lt_swar`,
//! `pack_into_chunked`, `has_empty_pack_swar`, `hash_weights_into`), every
//! `for` loop must iterate the chunk pipeline — its line must mention
//! `chunks`, `by_ref`, or `remainder` — or carry a
//! `lint-metering: simd-ok` waiver. A plain whole-slice loop there would
//! silently degrade the kernel back to the scalar oracle while parity
//! tests keep passing.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose sources contain simulated GPU kernels.
const KERNEL_DIRS: &[&str] = &["crates/core/src", "crates/baselines/src", "crates/cc/src"];

/// Unmetered host-access tokens that must not appear inside a launch span.
const FORBIDDEN: &[&str] = &["host_read(", "host_write", ".to_vec()", "as_slice("];

/// Trace-range tokens that must not appear inside a launch span: ranges
/// bracket launches from the host, they never open mid-kernel.
const TRACE_FORBIDDEN: &[&str] = &["range!(", "open_range("];

/// The parallel CSR construction hot path guarded against serial creep.
const BUILDER_FILE: &str = "crates/graph/src/builder.rs";

/// Parallel-helper call spans inside `GraphBuilder::build`; loops and sorts
/// inside these run chunked under the pool and are fine.
const PAR_SPANS: &[&str] = &[
    "par::run_chunks(",
    "par::par_map(",
    "par::par_tasks(",
    "par::par_split_mut(",
    "par::sorted_key_offsets(",
    "par::chunk_ranges(",
    ".par_sort_unstable(",
];

/// Serial tokens that must not appear on `build_chunked`'s hot path: a
/// bare `for` loop or a non-parallel slice sort there reintroduces the
/// single-thread bottleneck the chunked path replaced. `build_serial` (the
/// parity oracle) is exempt by construction — only `fn build_chunked(` is
/// scanned — and deliberate serial steps carry a `lint-metering: serial-ok`
/// marker.
const BUILDER_SERIAL_TOKENS: &[&str] = &["for ", ".sort_unstable("];

/// Chunked SWAR kernel files and the blessed hot functions inside them
/// whose loops must run through the chunk pipeline.
const SIMD_HOT_FNS: &[(&str, &[&str])] = &[
    (
        "crates/graph/src/simd.rs",
        &[
            "fn count_lt_swar(",
            "fn pack_into_chunked(",
            "fn has_empty_pack_swar(",
        ],
    ),
    ("crates/graph/src/weights.rs", &["fn hash_weights_into("]),
];

/// A `for` line inside a blessed SWAR kernel must carry one of these —
/// iterate chunk blocks, the exact-pair stream, or its remainder tail.
const SIMD_CHUNK_TOKENS: &[&str] = &["chunks", "by_ref", "remainder"];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint-metering") => lint_metering(),
        Some("fuzz") => fuzz(args),
        Some(other) => {
            eprintln!("unknown task '{other}'\n");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask <task>\n");
    eprintln!("tasks:");
    eprintln!(
        "  lint-metering   flag unmetered host accessors and trace ranges inside kernel\n\
         \u{20}                 launch closures, unbalanced raw open_range/close_range pairs,\n\
         \u{20}                 and serial loops/sorts on the parallel CSR build hot path"
    );
    eprintln!(
        "  fuzz [--cases N] [--seed S] [--sample-every K] [--force-scalar]\n\
         \u{20}                 run the ecl-fuzz differential campaign (release build);\n\
         \u{20}                 minimized failures land in tests/corpus/; --force-scalar\n\
         \u{20}                 rebuilds the solvers on the scalar oracle paths first"
    );
}

/// Runs the ecl-fuzz differential campaign in release mode, pointing its
/// corpus output at the checked-in `tests/corpus/` directory so any newly
/// minimized failure is immediately replayable by `cargo test`.
///
/// `--force-scalar` is consumed here (it's a build flag, not a campaign
/// flag): the fuzz binary is rebuilt with the `force-scalar` feature so the
/// whole differential run exercises the scalar oracle paths.
fn fuzz(extra: impl Iterator<Item = String>) -> ExitCode {
    let root = workspace_root();
    let corpus = root.join("tests/corpus");
    let mut extra: Vec<String> = extra.collect();
    let mut cargo_args = vec!["run", "--release", "-p", "ecl-fuzz"];
    if let Some(i) = extra.iter().position(|a| a == "--force-scalar") {
        extra.remove(i);
        cargo_args.extend(["--features", "force-scalar"]);
    }
    cargo_args.extend(["--bin", "ecl-fuzz", "--"]);
    let status = std::process::Command::new(env!("CARGO"))
        .current_dir(&root)
        .args(cargo_args)
        .arg("--corpus")
        .arg(&corpus)
        .args(extra)
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("failed to launch ecl-fuzz: {e}");
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn lint_metering() -> ExitCode {
    let root = workspace_root();
    let mut findings = Vec::new();
    let mut files = 0usize;
    let mut spans = 0usize;
    for dir in KERNEL_DIRS {
        for file in rust_files(&root.join(dir)) {
            files += 1;
            let source = std::fs::read_to_string(&file).expect("read source file");
            let rel = file.strip_prefix(&root).unwrap_or(&file).to_path_buf();
            spans += check_file(&rel, &source, &mut findings);
            check_range_balance(&rel, &blank_comments_and_strings(&source), &mut findings);
        }
    }
    {
        let file = root.join(BUILDER_FILE);
        let source = std::fs::read_to_string(&file).expect("read builder source");
        check_builder_hot_path(Path::new(BUILDER_FILE), &source, &mut findings);
        files += 1;
    }
    for (rel, fns) in SIMD_HOT_FNS {
        let file = root.join(rel);
        let source = std::fs::read_to_string(&file).expect("read SWAR kernel source");
        check_simd_spans(Path::new(rel), &source, fns, &mut findings);
        files += 1;
    }
    if findings.is_empty() {
        println!("lint-metering: {spans} launch spans across {files} files (incl. builder hot path and SWAR kernels), all clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{f}");
        }
        eprintln!(
            "\nlint-metering: {} violation(s).\n\
             Inside a launch closure, route device traffic through the metered\n\
             accessors (`ld`/`st`/`atomic_*`) or charge it explicitly via\n\
             `ctx.charge_*`; open trace ranges outside the closure (prefer the\n\
             `range!` guard over raw `open_range`/`close_range` pairs).",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries =
            std::fs::read_dir(&d).unwrap_or_else(|e| panic!("read_dir {}: {e}", d.display()));
        for entry in entries {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Scans one file; appends `file:line: token` findings. Returns the number
/// of launch spans inspected.
fn check_file(rel: &Path, source: &str, findings: &mut Vec<String>) -> usize {
    // Blank out comments and string literals first so tokens in docs or
    // kernel-name strings don't trip the lint and parens stay balanced.
    let code = blank_comments_and_strings(source);
    let mut spans = 0;
    for pat in ["launch(", "launch_warps("] {
        let mut from = 0;
        while let Some(hit) = code[from..].find(pat) {
            let open = from + hit + pat.len() - 1;
            from = open + 1;
            // Require a call site (`.launch(...)`), not a definition.
            let before = code[..open - pat.len() + 1].trim_end();
            if !before.ends_with('.') {
                continue;
            }
            let Some(close) = matching_paren(&code, open) else {
                continue;
            };
            spans += 1;
            scan_span(rel, source, &code, open, close, findings);
        }
    }
    spans
}

fn scan_span(
    rel: &Path,
    source: &str,
    code: &str,
    open: usize,
    close: usize,
    findings: &mut Vec<String>,
) {
    let span = &code[open..close];
    for (tokens, what) in [
        (FORBIDDEN, "unmetered host access"),
        (TRACE_FORBIDDEN, "trace range opened"),
    ] {
        for token in tokens {
            let mut from = 0;
            while let Some(hit) = span[from..].find(token) {
                let at = open + from + hit;
                let line = code[..at].bytes().filter(|&b| b == b'\n').count() + 1;
                let text = source.lines().nth(line - 1).unwrap_or("").trim();
                findings.push(format!(
                    "{}:{line}: {what} (`{token}`) inside a launch span: {text}",
                    rel.display()
                ));
                from += hit + token.len();
            }
        }
    }
}

/// Counts occurrences of `token` in already-blanked code.
fn count_token(code: &str, token: &str) -> usize {
    let mut n = 0;
    let mut from = 0;
    while let Some(hit) = code[from..].find(token) {
        n += 1;
        from += hit + token.len();
    }
    n
}

/// Per-file balance check for raw trace-range calls: every `open_range(`
/// needs a matching `close_range(` in the same file, or a span leaks and
/// every later event nests wrongly. (`range!` closes via its guard and is
/// exempt — it *expands* to a balanced pair.)
fn check_range_balance(rel: &Path, code: &str, findings: &mut Vec<String>) {
    let opens = count_token(code, "open_range(");
    let closes = count_token(code, "close_range(");
    if opens != closes {
        findings.push(format!(
            "{}: {opens} `open_range(` vs {closes} `close_range(` — \
             unbalanced raw trace spans (prefer the `range!` guard)",
            rel.display()
        ));
    }
}

/// Guards the parallel CSR hot path: inside `fn build_chunked(` (and only
/// there — `build_serial` is the reference oracle), a `for` loop or serial
/// `.sort_unstable(` outside every parallel-helper call span is flagged
/// unless its line carries a `lint-metering: serial-ok` marker.
fn check_builder_hot_path(rel: &Path, source: &str, findings: &mut Vec<String>) {
    let code = blank_comments_and_strings(source);
    let Some(body) = fn_body_span(&code, "fn build_chunked(") else {
        findings.push(format!(
            "{}: `fn build_chunked(` not found — builder hot-path lint has nothing to guard",
            rel.display()
        ));
        return;
    };
    // Every parallel-helper call span inside the body is covered territory.
    let mut covered: Vec<(usize, usize)> = Vec::new();
    for pat in PAR_SPANS {
        let mut from = body.0;
        while let Some(hit) = code[from..body.1].find(pat) {
            let open = from + hit + pat.len() - 1;
            from = open + 1;
            if let Some(close) = matching_paren(&code, open) {
                covered.push((open, close.min(body.1)));
            }
        }
    }
    for token in BUILDER_SERIAL_TOKENS {
        let mut from = body.0;
        while let Some(hit) = code[from..body.1].find(token) {
            let at = from + hit;
            from = at + token.len();
            // Word boundary so identifiers ending in `for` don't match
            // (only meaningful for tokens that start mid-word).
            let prev = at.checked_sub(1).map(|i| code.as_bytes()[i]);
            if token.starts_with(|c: char| c.is_ascii_alphanumeric())
                && prev.is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                continue;
            }
            if covered.iter().any(|&(lo, hi)| at > lo && at < hi) {
                continue;
            }
            let line = code[..at].bytes().filter(|&b| b == b'\n').count() + 1;
            let text = source.lines().nth(line - 1).unwrap_or("");
            // The waiver marker may trail the statement or sit on its own
            // line directly above it.
            let above = line.checked_sub(2).and_then(|i| source.lines().nth(i));
            if [Some(text), above]
                .iter()
                .flatten()
                .any(|l| l.contains("lint-metering: serial-ok"))
            {
                continue;
            }
            findings.push(format!(
                "{}:{line}: serial `{}` on the parallel build hot path \
                 (outside every par-helper span): {}",
                rel.display(),
                token.trim(),
                text.trim()
            ));
        }
    }
}

/// Guards the chunked SWAR kernels: inside each blessed hot function, a
/// `for` loop whose line doesn't mention the chunk pipeline (`chunks`,
/// `by_ref`, `remainder`) is flagged unless the line (or the line directly
/// above) carries a `lint-metering: simd-ok` waiver. The scalar oracles
/// (`*_scalar`) are exempt by construction — they're not in the blessed
/// list.
fn check_simd_spans(rel: &Path, source: &str, fns: &[&str], findings: &mut Vec<String>) {
    let code = blank_comments_and_strings(source);
    for pat in fns {
        let Some(body) = fn_body_span(&code, pat) else {
            findings.push(format!(
                "{}: `{pat}` not found — SWAR kernel lint has nothing to guard",
                rel.display()
            ));
            continue;
        };
        let mut from = body.0;
        while let Some(hit) = code[from..body.1].find("for ") {
            let at = from + hit;
            from = at + 4;
            // Word boundary so identifiers ending in `for` don't match.
            let prev = at.checked_sub(1).map(|i| code.as_bytes()[i]);
            if prev.is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
                continue;
            }
            let line = code[..at].bytes().filter(|&b| b == b'\n').count() + 1;
            let text = source.lines().nth(line - 1).unwrap_or("");
            if SIMD_CHUNK_TOKENS.iter().any(|t| text.contains(t)) {
                continue;
            }
            let above = line.checked_sub(2).and_then(|i| source.lines().nth(i));
            if [Some(text), above]
                .iter()
                .flatten()
                .any(|l| l.contains("lint-metering: simd-ok"))
            {
                continue;
            }
            findings.push(format!(
                "{}:{line}: non-chunked `for` inside SWAR kernel `{}`: {}",
                rel.display(),
                pat.trim_end_matches('('),
                text.trim()
            ));
        }
    }
}

/// Byte span `(open_brace, close_brace)` of the body of the first function
/// whose definition starts with `pat` (e.g. `"fn build("`), in blanked code.
/// The parameter list's parens are skipped so `fn build(mut self)` works.
fn fn_body_span(code: &str, pat: &str) -> Option<(usize, usize)> {
    let def = code.find(pat)?;
    let params_open = def + pat.len() - 1;
    let params_close = matching_paren(code, params_open)?;
    let brace = params_close + code[params_close..].find('{')?;
    let close = matching_brace(code, brace)?;
    Some((brace, close))
}

/// Index of the `}` matching the `{` at `open` (source already blanked).
fn matching_brace(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open` (source already blanked).
fn matching_paren(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Replaces the contents of `//` comments, `/* */` comments, and string
/// literals with spaces, preserving byte offsets and newlines.
fn blank_comments_and_strings(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                out[i] = b' ';
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            out[i] = b' ';
                            if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                                out[i + 1] = b' ';
                            }
                            i += 2;
                        }
                        b'"' => {
                            out[i] = b' ';
                            i += 1;
                            break;
                        }
                        b'\n' => i += 1,
                        _ => {
                            out[i] = b' ';
                            i += 1;
                        }
                    }
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("blanking is ASCII-preserving")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanking_preserves_offsets_and_lines() {
        let src = "a // host_read(\nb \"to_vec()\" c /* x */ d";
        let out = blank_comments_and_strings(src);
        assert_eq!(out.len(), src.len());
        assert!(!out.contains("host_read"));
        assert!(!out.contains("to_vec"));
        assert_eq!(out.matches('\n').count(), 1);
    }

    #[test]
    fn flags_host_access_inside_launch_only() {
        let src = r#"
            fn ok(dev: &mut D, b: &B) {
                let v = b.to_vec(); // outside: fine
                let _ = dev.launch("k", 4, |i, ctx| {
                    let _ = b.ld(ctx, i);
                });
            }
            fn bad(dev: &mut D, b: &B) {
                let _ = dev.launch("k", 4, |i, ctx| {
                    let _ = b.host_read(i);
                });
            }
        "#;
        let mut findings = Vec::new();
        let spans = check_file(Path::new("t.rs"), src, &mut findings);
        assert_eq!(spans, 2);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("host_read"));
        assert!(findings[0].contains("t.rs:10"));
    }

    #[test]
    fn launch_warps_spans_are_scanned_too() {
        let src =
            "fn f(d: &mut D, b: &B) { d.launch_warps(\"w\", 1, |_, w| { b.host_write(0, 1); }); }";
        let mut findings = Vec::new();
        let spans = check_file(Path::new("t.rs"), src, &mut findings);
        assert_eq!(spans, 1);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn definition_sites_are_not_call_spans() {
        let src = "pub fn launch(&mut self, n: usize) { self.host_write(0, 0); }";
        let mut findings = Vec::new();
        let spans = check_file(Path::new("t.rs"), src, &mut findings);
        assert_eq!(spans, 0);
        assert!(findings.is_empty());
    }

    #[test]
    fn trace_ranges_flagged_inside_launch_only() {
        let src = r#"
            fn ok(dev: &mut D, b: &B) {
                let _round = ecl_trace::range!(sim: "round"); // outside: fine
                let _ = dev.launch("k", 4, |i, ctx| {
                    let _ = b.ld(ctx, i);
                });
            }
            fn bad(dev: &mut D, b: &B) {
                let _ = dev.launch("k", 4, |i, ctx| {
                    let _g = ecl_trace::range!(sim: "per-task");
                    let _ = b.ld(ctx, i);
                });
            }
        "#;
        let mut findings = Vec::new();
        let spans = check_file(Path::new("t.rs"), src, &mut findings);
        assert_eq!(spans, 2);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("trace range opened"));
        assert!(findings[0].contains("t.rs:10"));
    }

    #[test]
    fn builder_lint_flags_serial_creep_outside_par_spans() {
        let src = r#"
            impl GraphBuilder {
                pub fn build_chunked(mut self) -> CsrGraph {
                    self.edges.par_sort_unstable(); // parallel: fine
                    par::par_tasks(tasks, |task| {
                        for s in task.vertices.clone() { body(s); } // covered
                    });
                    for e in &self.edges { serial(e); }
                    self.edges.sort_unstable();
                    out
                }
                pub fn build_serial(mut self) -> CsrGraph {
                    for e in &self.edges { serial(e); } // oracle: exempt
                    out
                }
            }
        "#;
        let mut findings = Vec::new();
        check_builder_hot_path(Path::new("builder.rs"), src, &mut findings);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].contains("`for`"), "{findings:?}");
        assert!(findings[1].contains(".sort_unstable("), "{findings:?}");
    }

    #[test]
    fn builder_lint_honors_serial_ok_waivers() {
        let src = r#"
            fn build_chunked(mut self) -> CsrGraph {
                for r in chunks { partition(r); } // lint-metering: serial-ok (O(#chunks))
                // lint-metering: serial-ok (tiny fixed-size pass)
                for r in chunks { partition(r); }
                out
            }
        "#;
        let mut findings = Vec::new();
        check_builder_hot_path(Path::new("builder.rs"), src, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn simd_lint_flags_non_chunked_loops_in_blessed_fns() {
        let src = r#"
            pub fn count_lt_scalar(ws: &[u32], t: u32) -> usize {
                for &w in ws { scan(w); } // oracle: exempt
                0
            }
            pub fn count_lt_swar(ws: &[u32], t: u32) -> usize {
                for block in ws.chunks(CHUNK) {
                    let mut pairs = block.chunks_exact(2);
                    for p in pairs.by_ref() { scan(p); }
                    for &w in pairs.remainder() { scan(w); }
                }
                for &w in ws { scan(w); }
                0
            }
        "#;
        let mut findings = Vec::new();
        check_simd_spans(
            Path::new("simd.rs"),
            src,
            &["fn count_lt_swar("],
            &mut findings,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("non-chunked"), "{findings:?}");
        assert!(findings[0].contains("count_lt_swar"));
    }

    #[test]
    fn simd_lint_honors_simd_ok_waiver_and_missing_fn() {
        let src = r#"
            pub fn pack_into_chunked(ws: &[u32]) {
                // lint-metering: simd-ok (bounded warmup, not the scan)
                for w in head { prime(w); }
                for block in ws.chunks(CHUNK) { pack(block); }
            }
        "#;
        let mut findings = Vec::new();
        check_simd_spans(
            Path::new("simd.rs"),
            src,
            &["fn pack_into_chunked("],
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
        check_simd_spans(Path::new("simd.rs"), src, &["fn absent("], &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("nothing to guard"));
    }

    #[test]
    fn simd_lint_is_clean_on_the_real_kernels() {
        let root = workspace_root();
        let mut findings = Vec::new();
        for (rel, fns) in SIMD_HOT_FNS {
            let source = std::fs::read_to_string(root.join(rel)).expect("read kernel source");
            check_simd_spans(Path::new(rel), &source, fns, &mut findings);
        }
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn builder_lint_requires_build_to_exist() {
        let mut findings = Vec::new();
        check_builder_hot_path(Path::new("builder.rs"), "fn other() {}", &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("nothing to guard"));
    }

    #[test]
    fn matching_brace_finds_fn_bodies() {
        let code = "fn build_chunked(a: A) -> B { x { y } z }";
        let (open, close) = fn_body_span(code, "fn build_chunked(").unwrap();
        assert_eq!(&code[open..=close], "{ x { y } z }");
    }

    #[test]
    fn raw_open_range_must_balance_per_file() {
        let balanced = "fn f() { ecl_trace::open_range(\"a\", C); ecl_trace::close_range(); }";
        let mut findings = Vec::new();
        check_range_balance(
            Path::new("t.rs"),
            &blank_comments_and_strings(balanced),
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");

        let leaky = "fn f() { ecl_trace::open_range(\"a\", C); }";
        check_range_balance(
            Path::new("t.rs"),
            &blank_comments_and_strings(leaky),
            &mut findings,
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("unbalanced"));
        // Tokens inside comments and strings don't count.
        let commented = "fn f() { /* open_range( */ let s = \"open_range(\"; }";
        let mut f2 = Vec::new();
        check_range_balance(
            Path::new("t.rs"),
            &blank_comments_and_strings(commented),
            &mut f2,
        );
        assert!(f2.is_empty(), "{f2:?}");
    }
}
