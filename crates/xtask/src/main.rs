//! Workspace automation tasks, invoked as `cargo xtask <task>` (see
//! `.cargo/config.toml` for the alias).
//!
//! The static-analysis tasks are thin wrappers over the [`ecl_lint`]
//! engine (`crates/lint`), which replaced this binary's original
//! grep-based passes with token-level rules: span-accurate diagnostics,
//! a waiver system whose unused waivers are themselves errors, and
//! machine-readable JSON reports. `lint` runs the full registry; the
//! `lint-metering` task keeps its historical name and scope (the metering
//! and hot-path rules only) for muscle memory and CI compatibility.
//!
//! # Exit codes
//!
//! Every task uses the same convention:
//!
//! * `0` — success (lint: no findings and no unused waivers).
//! * `1` — the task ran and failed (lint findings, fuzz mismatches).
//! * `2` — usage error: unknown task or malformed arguments.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(args, ecl_lint::rules::all()),
        Some("lint-metering") => lint(args, ecl_lint::rules::metering_subset()),
        Some("fuzz") => fuzz(args),
        Some("--help" | "-h" | "help") => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown task '{other}'\n");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask <task> [task options]\n");
    eprintln!("tasks:");
    eprintln!(
        "  lint [--json PATH]\n\
         \u{20}                 run every ecl-lint rule over the workspace sources:\n\
         \u{20}                 metering/trace/hot-path guards plus the determinism,\n\
         \u{20}                 metering-completeness, and unsafe-audit rules; --json\n\
         \u{20}                 additionally writes a machine-readable report to PATH\n\
         \u{20}                 (see `cargo run -p ecl-lint -- --list-rules` for the\n\
         \u{20}                 rule catalogue and DESIGN.md §16 for the waiver policy)"
    );
    eprintln!(
        "  lint-metering [--json PATH]\n\
         \u{20}                 the historical subset: unmetered host accessors and\n\
         \u{20}                 trace ranges inside kernel launch closures, unbalanced\n\
         \u{20}                 open_range/close_range pairs, serial loops/sorts on the\n\
         \u{20}                 parallel CSR build hot path, and non-chunked loops in\n\
         \u{20}                 the blessed SWAR kernels"
    );
    eprintln!(
        "  fuzz [--updates] [--cases N] [--seed S] [--sample-every K] [--force-scalar]\n\
         \u{20}                 run the ecl-fuzz differential campaign (release build);\n\
         \u{20}                 minimized failures land in tests/corpus/; --force-scalar\n\
         \u{20}                 rebuilds the solvers on the scalar oracle paths first;\n\
         \u{20}                 --updates runs the dynamic-MSF update-script campaign\n\
         \u{20}                 (rebuild equivalence after every batch) instead"
    );
    eprintln!(
        "\nexit codes: 0 success, 1 task failure (findings, fuzz mismatch),\n\
         \u{20}           2 unknown task or bad arguments"
    );
}

/// Runs the given lint rules over the workspace tree, printing findings to
/// stderr and optionally writing the JSON report.
fn lint(extra: impl Iterator<Item = String>, rules: Vec<Box<dyn ecl_lint::Rule>>) -> ExitCode {
    let mut json: Option<PathBuf> = None;
    let mut extra = extra;
    while let Some(a) = extra.next() {
        match a.as_str() {
            "--json" => match extra.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json needs a path\n");
                    usage();
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown lint option '{other}'\n");
                usage();
                return ExitCode::from(2);
            }
        }
    }

    let root = workspace_root();
    let ws = match ecl_lint::Workspace::load(&root, &rules) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("lint: failed to load sources under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let report = ecl_lint::run(&ws, &rules);
    if let Some(path) = &json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    for d in report.all_errors() {
        eprintln!("{d}");
    }
    if report.is_clean() {
        println!(
            "lint: {} rule(s) over {} file(s), all clean",
            report.rules.len(),
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nlint: {} finding(s), {} unused waiver(s).",
            report.findings.len(),
            report.unused_waivers.len()
        );
        ExitCode::FAILURE
    }
}

/// Runs the ecl-fuzz differential campaign in release mode, pointing its
/// corpus output at the checked-in `tests/corpus/` directory so any newly
/// minimized failure is immediately replayable by `cargo test`.
///
/// `--force-scalar` is consumed here (it's a build flag, not a campaign
/// flag): the fuzz binary is rebuilt with the `force-scalar` feature so the
/// whole differential run exercises the scalar oracle paths.
fn fuzz(extra: impl Iterator<Item = String>) -> ExitCode {
    let root = workspace_root();
    let corpus = root.join("tests/corpus");
    let mut extra: Vec<String> = extra.collect();
    let mut cargo_args = vec!["run", "--release", "-p", "ecl-fuzz"];
    if let Some(i) = extra.iter().position(|a| a == "--force-scalar") {
        extra.remove(i);
        cargo_args.extend(["--features", "force-scalar"]);
    }
    cargo_args.extend(["--bin", "ecl-fuzz", "--"]);
    let status = std::process::Command::new(env!("CARGO"))
        .current_dir(&root)
        .args(cargo_args)
        .arg("--corpus")
        .arg(&corpus)
        .args(extra)
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("failed to launch ecl-fuzz: {e}");
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}
