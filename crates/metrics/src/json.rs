//! The byte-stable `ecl-metrics/1` JSON snapshot and its drift gate.
//!
//! The export is the regression surface: **stable** metrics only (see
//! [`Stability`](crate::Stability)), one metric per line, in registry
//! order, integers as integers and floats in Rust's shortest round-trip
//! form — so a snapshot of a deterministic run serializes to identical
//! bytes on every run, exactly like the `ecl-trace-profile/1` export. The
//! 5%-threshold [`diff`] mirrors the trace regression gate: it flags any
//! stable metric that drifted beyond the threshold, appeared, or
//! vanished, and `bench_snapshot --diff` turns that into an exit code.
//!
//! This crate sits below `ecl-trace` in the dependency graph, so it
//! carries its own ~100-line parser (same offline-no-serde constraint as
//! the rest of the workspace).

use crate::{Kind, Snapshot, Stability};
use std::fmt::Write as _;

/// Schema tag of the snapshot format.
pub const FORMAT: &str = "ecl-metrics/1";

/// Serializes the stable surface of a snapshot as `ecl-metrics/1` JSON.
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"format\": \"{FORMAT}\",");
    out.push_str("  \"metrics\": [\n");
    let stable: Vec<_> = snap
        .entries
        .iter()
        .filter(|e| e.stability == Stability::Stable)
        .collect();
    for (i, e) in stable.iter().enumerate() {
        out.push_str("    {\"name\": ");
        write_escaped(&mut out, e.name);
        let _ = write!(out, ", \"kind\": \"{}\"", e.kind.label());
        match e.kind {
            Kind::Counter => {
                let _ = write!(out, ", \"value\": {}", e.count);
            }
            Kind::Gauge => {
                out.push_str(", \"value\": ");
                write_f64(&mut out, e.gauge);
            }
            Kind::Histogram => {
                let _ = write!(out, ", \"count\": {}, \"sum\": ", e.count);
                write_f64(&mut out, e.sum);
                out.push_str(", \"buckets\": [");
                for (j, (bound, n)) in e.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push('[');
                    write_f64(&mut out, *bound);
                    let _ = write!(out, ", {n}]");
                }
                let _ = write!(out, "], \"overflow\": {}", e.overflow);
            }
        }
        out.push('}');
        if i + 1 < stable.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// One metric parsed back from an `ecl-metrics/1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineMetric {
    pub name: String,
    pub kind: String,
    /// Counter total or gauge value (`count` for histograms).
    pub value: f64,
    /// Histogram observation count.
    pub count: u64,
    /// Histogram sum.
    pub sum: f64,
}

/// A parsed snapshot, used as the comparison side of [`diff`].
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub metrics: Vec<BaselineMetric>,
}

impl Baseline {
    /// Looks up a parsed metric by name.
    pub fn get(&self, name: &str) -> Option<&BaselineMetric> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

/// Parses an `ecl-metrics/1` document (as produced by [`to_json`]).
pub fn from_json(text: &str) -> Result<Baseline, String> {
    let root = parse(text)?;
    let format = root
        .get("format")
        .and_then(Value::as_str)
        .ok_or("missing \"format\"")?;
    if format != FORMAT {
        return Err(format!("unsupported format `{format}` (want `{FORMAT}`)"));
    }
    let arr = root
        .get("metrics")
        .and_then(Value::as_arr)
        .ok_or("missing \"metrics\" array")?;
    let mut metrics = Vec::with_capacity(arr.len());
    for m in arr {
        let name = m
            .get("name")
            .and_then(Value::as_str)
            .ok_or("metric missing \"name\"")?
            .to_string();
        let kind = m
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{name}: missing \"kind\""))?
            .to_string();
        let (value, count, sum) = if kind == "histogram" {
            let count = m
                .get("count")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{name}: missing \"count\""))?;
            let sum = m.get("sum").and_then(Value::as_f64).unwrap_or(0.0);
            (count, count as u64, sum)
        } else {
            let v = m
                .get("value")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{name}: missing \"value\""))?;
            (v, 0, 0.0)
        };
        metrics.push(BaselineMetric {
            name,
            kind,
            value,
            count,
            sum,
        });
    }
    Ok(Baseline { metrics })
}

/// The result of comparing two stable surfaces.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// One human-readable line per compared metric.
    pub lines: Vec<String>,
    /// Metrics that drifted past the threshold, appeared, or vanished.
    pub drifted: usize,
}

impl DiffReport {
    /// True when nothing drifted.
    pub fn is_pass(&self) -> bool {
        self.drifted == 0
    }
}

/// Relative change of `now` against `base` (`inf` when appearing from 0).
fn rel(now: f64, base: f64) -> f64 {
    if base == 0.0 {
        if now == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((now - base) / base).abs()
    }
}

/// Compares the stable surface of `current` against a parsed `baseline`.
/// Any stable metric whose value moved more than `threshold` (relative,
/// either direction) counts as drift — the gate exists to catch *silent*
/// behavior changes, not to judge their direction. New and vanished
/// stable names drift too: names may not change without a baseline
/// refresh.
pub fn diff(current: &Snapshot, baseline: &Baseline, threshold: f64) -> DiffReport {
    let mut lines = Vec::new();
    let mut drifted = 0;
    let stable: Vec<_> = current
        .entries
        .iter()
        .filter(|e| e.stability == Stability::Stable)
        .collect();
    for e in &stable {
        let now = match e.kind {
            Kind::Gauge => e.gauge,
            _ => e.count as f64,
        };
        match baseline.get(e.name) {
            None => {
                drifted += 1;
                lines.push(format!(
                    "{}: new metric (value {now}) — refresh the baseline",
                    e.name
                ));
            }
            Some(b) => {
                let r = rel(now, b.value);
                let verdict = if r > threshold {
                    drifted += 1;
                    "DRIFT"
                } else {
                    "ok"
                };
                lines.push(format!(
                    "{}: {} -> {} ({:+.1}%) {}",
                    e.name,
                    b.value,
                    now,
                    if b.value == 0.0 {
                        0.0
                    } else {
                        (now - b.value) / b.value * 100.0
                    },
                    verdict
                ));
            }
        }
    }
    for b in &baseline.metrics {
        if !stable.iter().any(|e| e.name == b.name) {
            drifted += 1;
            lines.push(format!(
                "{}: present in baseline but no longer exported — refresh the baseline",
                b.name
            ));
        }
    }
    DiffReport { lines, drifted }
}

// ---------------------------------------------------------------------------
// Minimal writer/parser (same offline-no-serde idiom as ecl-trace).

/// Appends `s` as a JSON string literal (quotes included).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` in Rust's shortest round-trip representation (valid
/// JSON for all finite values; non-finite clamps to 0, which the schema
/// never contains).
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{s}` at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().expect("nonempty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_metrics;

    #[test]
    fn export_parses_back_and_is_stable_only() {
        let ((), snap) = with_metrics(|| {
            crate::counter!(SIMCACHE_HIT, 12);
            crate::counter!(DSU_CAS_RETRY, 99); // volatile: must not export
            crate::histogram!(GRAPH_BUILD_ARCS, 5000.0);
        });
        let text = to_json(&snap);
        assert!(text.starts_with("{\n  \"format\": \"ecl-metrics/1\""));
        let base = from_json(&text).unwrap();
        assert_eq!(base.get("ecl.simcache.hit").unwrap().value, 12.0);
        assert!(
            base.get("ecl.dsu.cas_retry").is_none(),
            "volatile metrics must stay out of the byte-stable export"
        );
        let h = base.get("ecl.graph.build_arcs").unwrap();
        assert_eq!(h.count, 1);
        assert!((h.sum - 5000.0).abs() < 1e-6);
    }

    #[test]
    fn identical_sessions_export_identical_bytes() {
        let run = || {
            with_metrics(|| {
                crate::counter!(SIMCACHE_HIT, 7);
                crate::counter!(SIMCACHE_MISS, 3);
                crate::gauge!(SIMCACHE_ENTRIES, 10);
                crate::histogram!(GRAPH_BUILD_ARCS, 123.0);
            })
            .1
            .to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn diff_flags_drift_and_name_changes() {
        let ((), a) = with_metrics(|| crate::counter!(SIMCACHE_HIT, 100));
        let base = from_json(&a.to_json()).unwrap();

        // Identical run: clean.
        let ((), b) = with_metrics(|| crate::counter!(SIMCACHE_HIT, 100));
        assert!(diff(&b, &base, 0.05).is_pass());

        // Within threshold: clean.
        let ((), c) = with_metrics(|| crate::counter!(SIMCACHE_HIT, 104));
        assert!(diff(&c, &base, 0.05).is_pass());

        // Past threshold: drift.
        let ((), d) = with_metrics(|| crate::counter!(SIMCACHE_HIT, 200));
        let report = diff(&d, &base, 0.05);
        assert!(!report.is_pass());
        assert!(report.lines.iter().any(|l| l.contains("DRIFT")));

        // A baseline name that vanished from the registry drifts too.
        let mut renamed = base.clone();
        renamed.metrics.push(BaselineMetric {
            name: "ecl.simcache.hits_old".into(),
            kind: "counter".into(),
            value: 1.0,
            count: 0,
            sum: 0.0,
        });
        assert!(!diff(&b, &renamed, 0.05).is_pass());
    }

    #[test]
    fn from_json_rejects_other_formats() {
        assert!(from_json("{\"format\": \"ecl-trace-profile/1\", \"metrics\": []}").is_err());
        assert!(from_json("not json").is_err());
    }
}
