//! The central metric-name registry.
//!
//! Every metric the workspace records is declared here — and only here —
//! as a `static` [`Metric`] with a stable dotted name. The recording
//! macros ([`counter!`](crate::counter), [`gauge!`](crate::gauge),
//! [`histogram!`](crate::histogram)) resolve their first argument against
//! this module, so an undeclared name is a *compile* error; the
//! `metric-name-registry` lint rule enforces the reverse direction (a
//! declared name with no call site is a lint error, waivable while a
//! subsystem is landing). Renames and deletions are therefore always
//! explicit diffs of this file.
//!
//! Naming convention: `ecl.<subsystem>.<quantity>`, lower-case, with
//! `_seconds`/`_us` unit suffixes on time-valued metrics. [`ALL`] fixes
//! the export order (declaration order), which both exporters share.

use crate::Metric;
use crate::Stability::{Stable, Volatile};

/// Wall-clock latency bounds in seconds, spanning sub-millisecond cache
/// probes to minute-long Large-scale sweeps.
pub const TIME_BUCKETS: &[f64] = &[
    1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
];

/// Size bounds (arc counts) for graph-build distributions.
pub const SIZE_BUCKETS: &[f64] = &[1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8];

// --- ECL_SIM_CACHE measurement store -------------------------------------

pub static SIMCACHE_HIT: Metric = Metric::counter(
    "ecl.simcache.hit",
    Stable,
    "sim-cache cells served from the on-disk store",
);
pub static SIMCACHE_MISS: Metric = Metric::counter(
    "ecl.simcache.miss",
    Stable,
    "sim-cache lookups that found no cell and recomputed",
);
pub static SIMCACHE_STALE: Metric = Metric::counter(
    "ecl.simcache.stale",
    Stable,
    "sim-cache cells that existed but failed to parse and were recomputed",
);
pub static SIMCACHE_WRITE: Metric = Metric::counter(
    "ecl.simcache.write",
    Stable,
    "sim-cache cells written back after a recompute",
);
pub static SIMCACHE_REPLAY: Metric = Metric::counter(
    "ecl.simcache.replay",
    Stable,
    "simulation results replayed from the in-process memo (no store I/O)",
);
pub static SIMCACHE_ENTRIES: Metric = Metric::gauge(
    "ecl.simcache.entries",
    Stable,
    "cells currently in the on-disk store",
);
pub static SIMCACHE_BYTES: Metric = Metric::gauge(
    "ecl.simcache.bytes",
    Stable,
    "total size of the on-disk store in bytes",
);

// --- DSU union/find -------------------------------------------------------

pub static DSU_FIND: Metric = Metric::counter(
    "ecl.dsu.find",
    Volatile,
    "AtomicDsu find calls (counted paths; live-thread counts can vary with interleaving)",
);
pub static DSU_FIND_HOP: Metric = Metric::counter(
    "ecl.dsu.find_hop",
    Volatile,
    "parent hops walked across all finds (compression state is race-dependent)",
);
pub static DSU_COMPRESSION_WRITE: Metric = Metric::counter(
    "ecl.dsu.compression_write",
    Volatile,
    "parent writes performed by the compressing find policies",
);
pub static DSU_UNION: Metric = Metric::counter(
    "ecl.dsu.union",
    Volatile,
    "AtomicDsu union calls (counted paths)",
);
pub static DSU_CAS_RETRY: Metric = Metric::counter(
    "ecl.dsu.cas_retry",
    Volatile,
    "union CAS attempts beyond the first (lost races under live threads)",
);

// --- bench runner / measure_matrix ---------------------------------------

pub static RUNNER_PHASE_SECONDS: Metric = Metric::histogram(
    "ecl.runner.phase_seconds",
    Volatile,
    TIME_BUCKETS,
    "wall seconds per measure_matrix phase (prepare, simulate, measure)",
);
pub static RUNNER_THREADS: Metric = Metric::gauge(
    "ecl.runner.threads",
    Volatile,
    "worker threads available to the simulate phase (machine-dependent)",
);
pub static RUNNER_CELLS: Metric = Metric::counter(
    "ecl.runner.cells",
    Stable,
    "matrix cells (code × graph) measured",
);

// --- graph build / generators ---------------------------------------------

pub static GRAPH_BUILDS: Metric = Metric::counter(
    "ecl.graph.builds",
    Stable,
    "CSR builds completed (serial and chunk-parallel paths)",
);
pub static GRAPH_BUILD_CHUNKS: Metric = Metric::counter(
    "ecl.graph.build_chunks",
    Volatile,
    "data-size-keyed chunks dispatched by the chunk-parallel CSR build \
     (zero on single-threaded hosts, where build() takes the serial path)",
);
pub static GRAPH_BUILD_ARCS: Metric = Metric::histogram(
    "ecl.graph.build_arcs",
    Stable,
    SIZE_BUCKETS,
    "arcs per built CSR graph (both directions)",
);
pub static GRAPH_BUILD_SECONDS: Metric = Metric::histogram(
    "ecl.graph.build_seconds",
    Volatile,
    TIME_BUCKETS,
    "wall seconds per CSR build (host-side observability only)",
);

// --- ecl-fuzz campaigns ----------------------------------------------------

pub static FUZZ_CASES: Metric =
    Metric::counter("ecl.fuzz.cases", Stable, "differential fuzz cases executed");
pub static FUZZ_DIVERGENCES: Metric = Metric::counter(
    "ecl.fuzz.divergences",
    Stable,
    "backend divergences detected before shrinking",
);
pub static FUZZ_SHRINK_STEPS: Metric = Metric::counter(
    "ecl.fuzz.shrink_steps",
    Stable,
    "shrink candidates evaluated while minimizing failures",
);

// --- dynamic MSF engine ----------------------------------------------------

pub static DYNAMIC_BATCHES: Metric = Metric::counter(
    "ecl.dynamic.batches",
    Stable,
    "update batches applied by the dynamic MSF engine",
);
pub static DYNAMIC_REPLACEMENT_CANDIDATES: Metric = Metric::histogram(
    "ecl.dynamic.replacement_candidates",
    Stable,
    SIZE_BUCKETS,
    "crossing-edge candidates scanned per replacement search after a tree-edge delete",
);
pub static DYNAMIC_TREE_CHURN: Metric = Metric::gauge(
    "ecl.dynamic.tree_churn",
    Stable,
    "tree edges added or removed by the most recent update batch",
);

// --- sharded out-of-core MSF ------------------------------------------------

pub static SHARD_SHARDS: Metric = Metric::counter(
    "ecl.shard.shards",
    Stable,
    "edge-stream shards solved by the out-of-core stage-1 pass",
);
pub static SHARD_SURVIVOR_EDGES: Metric = Metric::counter(
    "ecl.shard.survivor_edges",
    Stable,
    "per-shard MSF survivor edges kept after stage 1 (<= n-1 per shard)",
);
pub static SHARD_SPILL_BYTES: Metric = Metric::counter(
    "ecl.shard.spill_bytes",
    Stable,
    "bytes written to survivor spill files by the external-memory mode",
);
pub static SHARD_MERGE_ROUNDS: Metric = Metric::counter(
    "ecl.shard.merge_rounds",
    Stable,
    "hierarchical Boruvka merge rounds until one forest remained",
);
pub static SHARD_PEAK_RSS_BYTES: Metric = Metric::gauge(
    "ecl.shard.peak_rss_bytes",
    Stable,
    "peak resident set (VmHWM) observed over the most recent sharded cell",
);

// --- ecl-trace bridge (published when a trace session closes) -------------

pub static TRACE_LAUNCHES: Metric = Metric::counter(
    "ecl.trace.launches",
    Stable,
    "kernel launches recorded by closed trace sessions",
);
pub static TRACE_ATOMICS: Metric = Metric::counter(
    "ecl.trace.atomics",
    Stable,
    "metered atomic operations recorded by closed trace sessions",
);
pub static TRACE_FIND_CALLS: Metric = Metric::counter(
    "ecl.trace.find_calls",
    Stable,
    "find calls recorded by closed trace sessions",
);
pub static TRACE_FIND_HOPS: Metric = Metric::counter(
    "ecl.trace.find_hops",
    Volatile,
    "find hops recorded by closed trace sessions (live CPU hops are race-dependent)",
);
pub static TRACE_CAS_RETRIES: Metric = Metric::counter(
    "ecl.trace.cas_retries",
    Volatile,
    "CAS retries recorded by closed trace sessions",
);
pub static TRACE_SIM_US: Metric = Metric::counter(
    "ecl.trace.sim_us",
    Stable,
    "simulated microseconds accumulated by closed trace sessions",
);

/// Every registered metric, in declaration (= export) order.
pub static ALL: &[&Metric] = &[
    &SIMCACHE_HIT,
    &SIMCACHE_MISS,
    &SIMCACHE_STALE,
    &SIMCACHE_WRITE,
    &SIMCACHE_REPLAY,
    &SIMCACHE_ENTRIES,
    &SIMCACHE_BYTES,
    &DSU_FIND,
    &DSU_FIND_HOP,
    &DSU_COMPRESSION_WRITE,
    &DSU_UNION,
    &DSU_CAS_RETRY,
    &RUNNER_PHASE_SECONDS,
    &RUNNER_THREADS,
    &RUNNER_CELLS,
    &GRAPH_BUILDS,
    &GRAPH_BUILD_CHUNKS,
    &GRAPH_BUILD_ARCS,
    &GRAPH_BUILD_SECONDS,
    &FUZZ_CASES,
    &FUZZ_DIVERGENCES,
    &FUZZ_SHRINK_STEPS,
    &DYNAMIC_BATCHES,
    &DYNAMIC_REPLACEMENT_CANDIDATES,
    &DYNAMIC_TREE_CHURN,
    &SHARD_SHARDS,
    &SHARD_SURVIVOR_EDGES,
    &SHARD_SPILL_BYTES,
    &SHARD_MERGE_ROUNDS,
    &SHARD_PEAK_RSS_BYTES,
    &TRACE_LAUNCHES,
    &TRACE_ATOMICS,
    &TRACE_FIND_CALLS,
    &TRACE_FIND_HOPS,
    &TRACE_CAS_RETRIES,
    &TRACE_SIM_US,
];

/// Looks up a declared metric by dotted name.
pub fn by_name(name: &str) -> Option<&'static Metric> {
    ALL.iter().copied().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_declared_static() {
        // `ALL` is the export order; a declaration missing from it would
        // silently never export. The registry test in lib.rs checks name
        // hygiene; this one pins the count so additions update both.
        assert_eq!(ALL.len(), 36, "update ALL (and this count) together");
        assert!(by_name("ecl.simcache.hit").is_some());
        assert!(by_name("ecl.nope").is_none());
    }
}
