//! `ecl-metrics` — the workspace telemetry registry.
//!
//! ROADMAP item 1 (`ecl-serve`) needs request-level telemetry: hit/miss
//! counters, latency histograms, and occupancy gauges with *stable* metric
//! names that dashboards and regression gates can key on across releases.
//! This crate is that foundation: a fixed registry of dotted names
//! ([`names`]), three recording primitives ([`counter!`], [`gauge!`],
//! [`histogram!`]), and two exporters — Prometheus text format for a future
//! scrape endpoint and a byte-stable `ecl-metrics/1` JSON snapshot that
//! rides inside `bench_snapshot` output next to `kernel_breakdown`.
//!
//! # The gate
//!
//! Like `ecl-trace` and the GPU sanitizer, recording is **off by default**
//! and instrumentation points pay exactly one predictable branch when no
//! session is installed: [`active`] is a single `Relaxed` load of a static
//! [`AtomicBool`]. Unlike the tracer — whose sessions are thread-local
//! because events are ordered — metric aggregation is commutative, so the
//! gate and the storage are process-wide: rayon workers record into the
//! same registry the installing thread snapshots. Sessions are either
//! *scoped* ([`with_metrics`], used by tests and `bench_snapshot
//! --metrics`) or *ambient* (`ECL_METRICS=1` in the environment plus an
//! [`init`] call at binary startup, drained by [`take_ambient`]).
//!
//! # Name stability
//!
//! Every metric is declared exactly once in [`names`] with a dotted name
//! (`ecl.simcache.hit`, `ecl.dsu.cas_retry`, …). The recording macros take
//! the *declared identifier*, not a string — an undeclared name is a
//! compile error — and the `metric-name-registry` lint rule closes the
//! loop in the other direction: a declared name with no call site is a
//! lint error. Renaming a metric is therefore always a deliberate,
//! reviewable act. See DESIGN.md §17.
//!
//! # Determinism
//!
//! Each declared metric is marked [`Stability::Stable`] (same value on
//! every identical run: call counts, cache outcomes, chunk counts) or
//! [`Stability::Volatile`] (wall clocks, CAS retries under live threads).
//! The `ecl-metrics/1` JSON export serializes **stable metrics only**, so
//! a snapshot of a deterministic run is byte-identical across runs — the
//! same contract the `ecl-trace-profile/1` export keeps — and the 5%
//! [`Snapshot::diff`] gate can flag silent behavior drift. The Prometheus
//! export carries everything, volatile included.

#![forbid(unsafe_code)]

pub mod json;
pub mod names;
pub mod prom;

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Maximum histogram slots: up to `HIST_SLOTS - 1` finite upper bounds
/// plus the overflow (+∞) slot. Declarations with more bounds fail to
/// compile (the constructor assertion runs at static-initialization time).
pub const HIST_SLOTS: usize = 16;

/// Sum quantum for histogram observations: sums accumulate as integer
/// micro-units so concurrent observation order cannot perturb a float
/// accumulation (integer addition is commutative; f64 addition is not).
const MICRO: f64 = 1e6;

/// What a metric measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonic event count (`u64` add).
    Counter,
    /// Point-in-time value (`f64` set, last write wins).
    Gauge,
    /// Fixed-bucket distribution of `f64` observations.
    Histogram,
}

impl Kind {
    /// Lower-case label used by both exporters.
    pub fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// Whether identical runs produce identical values for a metric.
///
/// Stable metrics form the byte-stable JSON export and the drift-gate
/// surface; volatile ones (wall clocks, live-thread race counts,
/// machine-dependent occupancy) export only via Prometheus text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    Stable,
    Volatile,
}

/// A clippy-appeasing `const` cell for array initialization.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

/// One declared metric: identity (name/kind/help/stability/buckets) plus
/// its process-wide storage. All instances live in [`names`] as statics;
/// recording is lock-free `Relaxed` atomics, so worker threads never
/// contend on anything but the cache line itself.
pub struct Metric {
    /// Stable dotted name (`ecl.<subsystem>.<quantity>`).
    pub name: &'static str,
    /// One-line human description (the Prometheus `# HELP` text).
    pub help: &'static str,
    pub kind: Kind,
    pub stability: Stability,
    /// Finite upper bounds for histograms (empty otherwise).
    pub buckets: &'static [f64],
    /// Counter total, or histogram observation count.
    count: AtomicU64,
    /// Gauge value as `f64` bits, or histogram sum in micro-units.
    value: AtomicU64,
    /// Per-bucket observation counts; slot `buckets.len()` is overflow.
    hist: [AtomicU64; HIST_SLOTS],
}

impl Metric {
    /// Declares a counter.
    pub const fn counter(name: &'static str, stability: Stability, help: &'static str) -> Self {
        Self {
            name,
            help,
            kind: Kind::Counter,
            stability,
            buckets: &[],
            count: AtomicU64::new(0),
            value: AtomicU64::new(0),
            hist: [ZERO; HIST_SLOTS],
        }
    }

    /// Declares a gauge.
    pub const fn gauge(name: &'static str, stability: Stability, help: &'static str) -> Self {
        Self {
            kind: Kind::Gauge,
            ..Self::counter(name, stability, help)
        }
    }

    /// Declares a fixed-bucket histogram. `buckets` are the finite upper
    /// bounds, ascending; observations above the last bound land in the
    /// overflow slot. More than `HIST_SLOTS - 1` bounds fail to compile.
    pub const fn histogram(
        name: &'static str,
        stability: Stability,
        buckets: &'static [f64],
        help: &'static str,
    ) -> Self {
        assert!(
            buckets.len() < HIST_SLOTS,
            "too many histogram buckets for HIST_SLOTS"
        );
        Self {
            kind: Kind::Histogram,
            buckets,
            ..Self::counter(name, stability, help)
        }
    }

    /// Adds to a counter. Callers go through [`counter!`], which applies
    /// the [`active`] gate first.
    #[inline]
    pub fn add(&self, n: u64) {
        debug_assert_eq!(
            self.kind,
            Kind::Counter,
            "{}: add on non-counter",
            self.name
        );
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets a gauge (last write wins).
    #[inline]
    pub fn set(&self, v: f64) {
        debug_assert_eq!(self.kind, Kind::Gauge, "{}: set on non-gauge", self.name);
        self.value.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        debug_assert_eq!(
            self.kind,
            Kind::Histogram,
            "{}: observe on non-histogram",
            self.name
        );
        self.count.fetch_add(1, Ordering::Relaxed);
        let micros = (v * MICRO).round().max(0.0) as u64;
        self.value.fetch_add(micros, Ordering::Relaxed);
        let slot = self
            .buckets
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.buckets.len());
        self.hist[slot].fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.value.store(0, Ordering::Relaxed);
        for h in &self.hist {
            h.store(0, Ordering::Relaxed);
        }
    }

    fn read(&self) -> Entry {
        let count = self.count.load(Ordering::Relaxed);
        let raw = self.value.load(Ordering::Relaxed);
        let (gauge, sum) = match self.kind {
            Kind::Gauge => (f64::from_bits(raw), 0.0),
            _ => (0.0, raw as f64 / MICRO),
        };
        Entry {
            name: self.name,
            kind: self.kind,
            stability: self.stability,
            count,
            gauge,
            sum,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .map(|(i, &b)| (b, self.hist[i].load(Ordering::Relaxed)))
                .collect(),
            overflow: self.hist[self.buckets.len()].load(Ordering::Relaxed),
        }
    }
}

/// One metric's value as captured by [`Snapshot::collect`].
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    pub name: &'static str,
    pub kind: Kind,
    pub stability: Stability,
    /// Counter total, or histogram observation count.
    pub count: u64,
    /// Gauge value (0.0 for other kinds).
    pub gauge: f64,
    /// Histogram sum in the observed unit, quantized to micro-units.
    pub sum: f64,
    /// Histogram `(upper_bound, count)` pairs, ascending.
    pub buckets: Vec<(f64, u64)>,
    /// Observations above the last finite bound.
    pub overflow: u64,
}

/// A point-in-time capture of every registered metric, in registry
/// (declaration) order. Obtained from [`with_metrics`] or
/// [`take_ambient`]; export with [`json`]/[`prom`] helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub entries: Vec<Entry>,
}

impl Snapshot {
    /// Reads the current value of every registered metric.
    pub fn collect() -> Self {
        Self {
            entries: names::ALL.iter().map(|m| m.read()).collect(),
        }
    }

    /// Looks up an entry by dotted name.
    pub fn get(&self, name: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Counter total (or histogram count) by dotted name; 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.get(name).map_or(0, |e| e.count)
    }

    /// Gauge value by dotted name; 0.0 when absent.
    pub fn gauge(&self, name: &str) -> f64 {
        self.get(name).map_or(0.0, |e| e.gauge)
    }

    /// Byte-stable `ecl-metrics/1` JSON (stable metrics only); see
    /// [`json::to_json`].
    pub fn to_json(&self) -> String {
        json::to_json(self)
    }

    /// Prometheus text exposition (all metrics); see [`prom::to_text`].
    pub fn to_prometheus(&self) -> String {
        prom::to_text(self)
    }

    /// Compares the stable surface against a parsed baseline; see
    /// [`json::diff`].
    pub fn diff(&self, baseline: &json::Baseline, threshold: f64) -> json::DiffReport {
        json::diff(self, baseline, threshold)
    }
}

// ---------------------------------------------------------------------------
// The gate and session lifecycle.

/// The process-wide recording gate. `Relaxed` is enough: metric values are
/// advisory aggregates, and session boundaries quiesce the workload before
/// snapshotting.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Serializes scoped sessions across threads (parallel test binaries).
pub(crate) static SESSION: Mutex<()> = Mutex::new(());

thread_local! {
    /// Detects nested [`with_metrics`] on one thread, which would
    /// deadlock on [`SESSION`]; we panic with a real message instead.
    static IN_SCOPED: Cell<bool> = const { Cell::new(false) };
}

/// True when a metrics session is recording *right now* — the hot-path
/// gate: one `Relaxed` atomic load, one predictable branch when off.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("ECL_METRICS")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// True when a session is active or `ECL_METRICS` asks for the ambient
/// one. Binaries gate their [`init`]/[`take_ambient`] bookkeeping on this;
/// per-record hot paths gate on [`active`].
#[inline]
pub fn enabled() -> bool {
    active() || env_enabled()
}

/// Starts the ambient session when `ECL_METRICS` is set (idempotent,
/// no-op otherwise). Instrumented binaries call this once at startup;
/// libraries never do — they just record if [`active`].
pub fn init() {
    if env_enabled() {
        ACTIVE.store(true, Ordering::SeqCst);
    }
}

/// Drains the ambient `ECL_METRICS` session: snapshots, resets the
/// registry, and deactivates. `None` when no ambient session is running.
pub fn take_ambient() -> Option<Snapshot> {
    if !env_enabled() || !active() {
        return None;
    }
    let snap = Snapshot::collect();
    reset_all();
    ACTIVE.store(false, Ordering::SeqCst);
    Some(snap)
}

fn reset_all() {
    for m in names::ALL {
        m.reset();
    }
}

/// Restores the pre-session gate even when `f` unwinds.
struct SessionGuard {
    was_active: bool,
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        ACTIVE.store(self.was_active, Ordering::SeqCst);
        IN_SCOPED.with(|c| c.set(false));
    }
}

/// Runs `f` under a fresh scoped metrics session and returns its result
/// together with the captured [`Snapshot`]. The registry is reset on
/// entry and on exit, so concurrent scoped sessions serialize (a second
/// caller blocks until the first finishes); recording threads spawned by
/// `f` (rayon workers) land in the same session. Nesting on one thread is
/// a programming error and panics rather than deadlocking.
pub fn with_metrics<R>(f: impl FnOnce() -> R) -> (R, Snapshot) {
    assert!(
        !IN_SCOPED.with(|c| c.get()),
        "nested with_metrics on one thread is not supported"
    );
    let _lock = SESSION.lock().unwrap_or_else(|e| e.into_inner());
    IN_SCOPED.with(|c| c.set(true));
    let guard = SessionGuard {
        was_active: ACTIVE.load(Ordering::SeqCst),
    };
    reset_all();
    ACTIVE.store(true, Ordering::SeqCst);
    let out = f();
    let snap = Snapshot::collect();
    reset_all();
    drop(guard);
    (out, snap)
}

// ---------------------------------------------------------------------------
// Recording macros.

/// Increments a declared counter: `counter!(SIMCACHE_HIT)` adds 1,
/// `counter!(DSU_FIND_HOP, hops)` adds `hops`. The name must be a
/// [`names`] identifier — undeclared names are compile errors — and the
/// whole call is one predictable branch when recording is off.
#[macro_export]
macro_rules! counter {
    ($name:ident) => {
        $crate::counter!($name, 1u64)
    };
    ($name:ident, $n:expr) => {
        if $crate::active() {
            $crate::names::$name.add($n as u64);
        }
    };
}

/// Sets a declared gauge to an `f64` value (last write wins):
/// `gauge!(SIMCACHE_ENTRIES, cells)`.
#[macro_export]
macro_rules! gauge {
    ($name:ident, $v:expr) => {
        if $crate::active() {
            $crate::names::$name.set($v as f64);
        }
    };
}

/// Records one observation into a declared fixed-bucket histogram:
/// `histogram!(RUNNER_PHASE_SECONDS, elapsed.as_secs_f64())`.
#[macro_export]
macro_rules! histogram {
    ($name:ident, $v:expr) => {
        if $crate::active() {
            $crate::names::$name.observe($v as f64);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_by_default_records_nothing() {
        // Hold the session lock so no concurrently running test has a
        // scoped session active while we probe the off-state.
        let _lock = SESSION.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!active());
        counter!(SIMCACHE_HIT, 5);
        let snap = Snapshot::collect();
        assert_eq!(snap.counter("ecl.simcache.hit"), 0);
    }

    #[test]
    fn scoped_session_captures_and_resets() {
        let ((), snap) = with_metrics(|| {
            counter!(SIMCACHE_HIT);
            counter!(SIMCACHE_HIT, 2);
            gauge!(SIMCACHE_ENTRIES, 7);
            histogram!(GRAPH_BUILD_ARCS, 150.0);
        });
        assert_eq!(snap.counter("ecl.simcache.hit"), 3);
        assert_eq!(snap.gauge("ecl.simcache.entries"), 7.0);
        let h = snap.get("ecl.graph.build_arcs").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.sum > 149.0 && h.sum < 151.0);
        // After the session, the registry is clean and the gate restored
        // (probe under the lock: other tests' sessions also reset on exit).
        let _lock = SESSION.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!active());
        assert_eq!(Snapshot::collect().counter("ecl.simcache.hit"), 0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let ((), snap) = with_metrics(|| {
            histogram!(GRAPH_BUILD_ARCS, 50.0);
            histogram!(GRAPH_BUILD_ARCS, 1e12);
        });
        let h = snap.get("ecl.graph.build_arcs").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.overflow, 1, "1e12 arcs must land in overflow");
        let in_buckets: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(in_buckets, 1);
    }

    #[test]
    fn worker_threads_record_into_the_session() {
        let ((), snap) = with_metrics(|| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    std::thread::spawn(|| {
                        for _ in 0..100 {
                            counter!(DSU_CAS_RETRY);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(snap.counter("ecl.dsu.cas_retry"), 400);
    }

    #[test]
    fn registry_names_are_wellformed_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for m in names::ALL {
            assert!(
                m.name.starts_with("ecl.") && m.name.split('.').count() >= 3,
                "{}: names are ecl.<subsystem>.<quantity>",
                m.name
            );
            assert!(
                m.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "{}: lowercase dotted names only",
                m.name
            );
            assert!(seen.insert(m.name), "duplicate metric name {}", m.name);
            assert!(!m.help.is_empty(), "{}: help required", m.name);
            if m.kind == Kind::Histogram {
                assert!(!m.buckets.is_empty(), "{}: histograms need buckets", m.name);
                assert!(
                    m.buckets.windows(2).all(|w| w[0] < w[1]),
                    "{}: bucket bounds must ascend",
                    m.name
                );
            } else {
                assert!(m.buckets.is_empty(), "{}: buckets on non-histogram", m.name);
            }
        }
    }
}
