//! Prometheus text-format exposition.
//!
//! The scrape surface a future `ecl-serve` endpoint returns verbatim:
//! `# HELP` / `# TYPE` comment pairs followed by samples, all metrics
//! included (volatile ones too — scrapes are point-in-time by nature).
//! Prometheus metric names cannot contain dots, so the stable dotted
//! names map by replacing `.` with `_` (`ecl.simcache.hit` →
//! `ecl_simcache_hit`); the dotted form stays the identity everywhere
//! else. Histograms follow the standard cumulative `_bucket{le="…"}` /
//! `_sum` / `_count` expansion.

use crate::{Kind, Snapshot};
use std::fmt::Write as _;

/// Renders the full snapshot in Prometheus text exposition format.
pub fn to_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for e in &snap.entries {
        let name = e.name.replace('.', "_");
        let _ = writeln!(out, "# HELP {name} {}", snap_help(e.name));
        let _ = writeln!(out, "# TYPE {name} {}", e.kind.label());
        match e.kind {
            Kind::Counter => {
                let _ = writeln!(out, "{name} {}", e.count);
            }
            Kind::Gauge => {
                let _ = writeln!(out, "{name} {}", fmt_f64(e.gauge));
            }
            Kind::Histogram => {
                // Cumulative bucket counts, per the exposition format.
                let mut cum = 0u64;
                for (bound, n) in &e.buckets {
                    cum += n;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", fmt_f64(*bound));
                }
                cum += e.overflow;
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                let _ = writeln!(out, "{name}_sum {}", fmt_f64(e.sum));
                let _ = writeln!(out, "{name}_count {}", e.count);
            }
        }
    }
    out
}

/// Help text for a dotted name (from the registry declaration).
fn snap_help(name: &str) -> &'static str {
    crate::names::by_name(name).map_or("", |m| m.help)
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_metrics;

    #[test]
    fn exposition_shape() {
        let ((), snap) = with_metrics(|| {
            crate::counter!(SIMCACHE_HIT, 4);
            crate::gauge!(SIMCACHE_ENTRIES, 2.5);
            crate::histogram!(GRAPH_BUILD_ARCS, 150.0);
            crate::histogram!(GRAPH_BUILD_ARCS, 1e12);
            crate::counter!(DSU_CAS_RETRY, 9); // volatile metrics DO export here
        });
        let text = to_text(&snap);
        assert!(text.contains("# TYPE ecl_simcache_hit counter"));
        assert!(text.contains("ecl_simcache_hit 4"));
        assert!(text.contains("ecl_simcache_entries 2.5"));
        assert!(text.contains("ecl_dsu_cas_retry 9"));
        // Cumulative buckets: 150 ≤ 1e3, so every bound from 1e3 up counts
        // it; +Inf covers both observations.
        assert!(text.contains("ecl_graph_build_arcs_bucket{le=\"1000\"} 1"));
        assert!(text.contains("ecl_graph_build_arcs_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("ecl_graph_build_arcs_count 2"));
        assert!(
            !text.contains("ecl.simcache.hit"),
            "dotted names must be mapped"
        );
    }
}
