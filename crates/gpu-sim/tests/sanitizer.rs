//! Detector regression tests: deliberately broken kernels that the
//! sanitizer must catch — and benign patterns it must not flag.
//!
//! The two headline fault injections required by the sanitizer's own
//! acceptance criteria are [`write_write_race_is_detected`] (a true
//! write-write race on a `BufU32` word) and
//! [`read_before_write_on_uninit_arena_buffer_is_detected`] (an initcheck
//! hit on an arena buffer acquired with unspecified contents).

use ecl_gpu_sim::sanitize::{self, Tool, ViolationKind};
use ecl_gpu_sim::{with_sanitizer, BufU32, BufU64, Device, DeviceArena, GpuProfile};

fn device() -> Device {
    Device::new(GpuProfile::TITAN_V)
}

/// Broken kernel #1: every task blindly stores its own index into word 0
/// of a `BufU32` — a true write-write race (differing values, no prior
/// read). Must be classified as racecheck/WriteWriteRace.
#[test]
fn write_write_race_is_detected() {
    let ((), report) = with_sanitizer(|| {
        let mut dev = device();
        let b = BufU32::new(1, 0);
        sanitize::label(&b, "race_word");
        let _ = dev.launch("broken_ww_race", 16, |i, ctx| {
            b.st(ctx, 0, i as u32);
        });
    });
    assert!(!report.is_clean());
    assert_eq!(report.violations().len(), 1);
    let v = &report.violations()[0];
    assert_eq!(v.kind, ViolationKind::WriteWriteRace);
    assert_eq!(v.kind.tool(), Tool::Racecheck);
    assert_eq!(v.kernel, "broken_ww_race");
    assert_eq!(v.buffer, "race_word");
    assert_eq!(v.word, 0);
    // No downgrade: the values differ and the writes are blind.
    assert_eq!(report.benign_idempotent_races, 0);
    assert_eq!(report.benign_racy_updates, 0);
}

/// Broken kernel #2: reads an arena buffer acquired uninitialized before
/// any write reached it. Must be classified as initcheck/UninitRead.
#[test]
fn read_before_write_on_uninit_arena_buffer_is_detected() {
    let ((), report) = with_sanitizer(|| {
        let mut arena = DeviceArena::new();
        let b = arena.acquire_u32_uninit(8);
        sanitize::label(&b, "fresh_malloc");
        let mut dev = device();
        let _ = dev.launch("broken_uninit_read", 4, |i, ctx| {
            let _ = b.ld(ctx, i);
        });
        arena.release_u32(b);
    });
    assert_eq!(report.violations().len(), 4, "{report}");
    for (i, v) in report.violations().iter().enumerate() {
        assert_eq!(v.kind, ViolationKind::UninitRead);
        assert_eq!(v.kind.tool(), Tool::Initcheck);
        assert_eq!(v.kernel, "broken_uninit_read");
        assert_eq!(v.buffer, "fresh_malloc");
        assert_eq!(v.word, i);
    }
}

/// The same kernel is clean once a setup launch writes every word first —
/// the sanitizer checks the *order* of accesses, not the acquire mode.
#[test]
fn uninit_acquire_is_clean_after_setup_kernel() {
    let ((), report) = with_sanitizer(|| {
        let mut arena = DeviceArena::new();
        let b = arena.acquire_u32_uninit(8);
        let mut dev = device();
        let _ = dev.launch("setup", 8, |i, ctx| b.st(ctx, i, 0));
        let _ = dev.launch("read", 8, |i, ctx| {
            let _ = b.ld(ctx, i);
        });
        arena.release_u32(b);
    });
    assert!(report.is_clean(), "{report}");
}

/// The paper's benign race: many tasks store the *same* value to a flag
/// word (`changed = 1`). Downgraded to a counted warning, not a violation.
#[test]
fn idempotent_same_value_race_is_downgraded() {
    let ((), report) = with_sanitizer(|| {
        let changed = BufU32::new(1, 0);
        let mut dev = device();
        let _ = dev.launch("flag_store", 64, |_, ctx| {
            changed.st(ctx, 0, 1);
        });
    });
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.benign_idempotent_races, 1);
}

/// DSU path halving: tasks read `parent[v]` and write back differing
/// grandparent values. Every writer read the word first in its own task,
/// so the race is downgraded to a racy-update warning.
#[test]
fn read_then_write_racy_update_is_downgraded() {
    let ((), report) = with_sanitizer(|| {
        let parent = BufU32::new(4, 3);
        let mut dev = device();
        let _ = dev.launch("halve", 4, |i, ctx| {
            let p = parent.ld_gather(ctx, 0);
            parent.st_scatter(ctx, 0, p.wrapping_add(i as u32));
        });
    });
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.benign_racy_updates, 1);
}

/// Atomic RMWs on one word from every task are exempt from racecheck and
/// initialize the word for initcheck.
#[test]
fn atomic_rmw_contention_is_exempt() {
    let ((), report) = with_sanitizer(|| {
        let cursor = BufU32::new(1, 0);
        let reservation = BufU64::new(1, u64::MAX);
        let mut dev = device();
        let _ = dev.launch("atomics", 64, |i, ctx| {
            let _ = cursor.atomic_add(ctx, 0, 1);
            let _ = reservation.atomic_min(ctx, 0, i as u64);
        });
    });
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.benign_idempotent_races, 0);
    assert_eq!(report.benign_racy_updates, 0);
}

/// memcheck: the arena hands out physically larger buffers, so a logical
/// out-of-bounds index "works" silently without the sanitizer. With it,
/// the access is flagged and attributed.
#[test]
fn logical_out_of_bounds_within_capacity_is_detected() {
    let ((), report) = with_sanitizer(|| {
        let mut arena = DeviceArena::new();
        // Logical length 5, physical class capacity 64.
        let b = arena.acquire_u32(5, 0);
        sanitize::label(&b, "short_buf");
        assert!(b.capacity() > 7);
        let mut dev = device();
        let _ = dev.launch("oob_read", 1, |_, ctx| {
            let _ = b.ld(ctx, 7);
        });
        arena.release_u32(b);
    });
    assert_eq!(report.violations().len(), 1);
    let v = &report.violations()[0];
    assert_eq!(v.kind, ViolationKind::OutOfBounds);
    assert_eq!(v.kind.tool(), Tool::Memcheck);
    assert_eq!(v.buffer, "short_buf");
    assert_eq!(v.word, 7);
}

/// synccheck: a ballot over an empty active mask and a shfl sourcing a
/// lane outside the participating set are both divergence violations.
#[test]
fn divergent_warp_primitives_are_detected() {
    let ((), report) = with_sanitizer(|| {
        let mut dev = device();
        let _ = dev.launch_warps("broken_warp", 1, |_, w| {
            let _ = w.ballot(std::iter::empty());
            let vals = [7u64, 8, 9];
            assert_eq!(w.shfl(&vals, 5), 0); // sanitized fallback value
        });
    });
    assert_eq!(report.violations().len(), 2, "{report}");
    for v in report.violations() {
        assert_eq!(v.kind, ViolationKind::DivergentWarpOp);
        assert_eq!(v.kind.tool(), Tool::Synccheck);
        assert_eq!(v.kernel, "broken_warp");
    }
    assert_eq!(report.violations()[1].word, 5);
}

/// Host-side initialization (`fill`, `host_write_slice`, `host_write`)
/// counts as writing for initcheck, exactly like the constructors did.
#[test]
fn host_writes_initialize_for_initcheck() {
    let ((), report) = with_sanitizer(|| {
        let mut arena = DeviceArena::new();
        let a = arena.acquire_u32(4, 9); // fill path
        let b = arena.acquire_u32_from(&[1, 2, 3]); // slice path
        let c = arena.acquire_u32_uninit(2);
        c.host_write(0, 5);
        c.host_write(1, 6);
        let mut dev = device();
        let _ = dev.launch("read_all", 1, |_, ctx| {
            let _ = a.ld(ctx, 3);
            let _ = b.ld(ctx, 2);
            let _ = c.ld(ctx, 1);
        });
        arena.release_u32(a);
        arena.release_u32(b);
        arena.release_u32(c);
    });
    assert!(report.is_clean(), "{report}");
}

/// Without a session, broken kernels run exactly as before — the
/// sanitizer is opt-in and adds nothing to unsanitized execution.
#[test]
fn no_session_means_no_reporting() {
    if sanitize::enabled() {
        // Under ECL_SANITIZE the ambient trap session (correctly) panics on
        // this deliberate race; the unsanitized path cannot be exercised.
        return;
    }
    let mut dev = device();
    let b = BufU32::new(1, 0);
    let _ = dev.launch("unchecked_race", 16, |i, ctx| {
        b.st(ctx, 0, i as u32);
    });
    // A fresh session afterwards starts empty.
    let ((), report) = with_sanitizer(|| {});
    assert!(report.is_clean());
    assert_eq!(report.checked_launches, 0);
}
