//! Integration tests of the simulator's execution semantics: results must
//! not depend on host parallelism, clocks must be reproducible, and the
//! cost model must order workloads sensibly.

use ecl_gpu_sim::{BufU32, BufU64, ConstBuf, Device, GpuProfile};

#[test]
fn parallel_and_sequential_execution_agree_on_state_and_traffic() {
    let run = |seq: bool| {
        let mut dev = Device::new(GpuProfile::TITAN_V);
        dev.set_sequential(seq);
        let data: Vec<u32> = (0..10_000).collect();
        let input = ConstBuf::from_slice(&data);
        let acc = BufU32::new(1, 0);
        let out = BufU32::new(10_000, 0);
        let stats = dev.launch("mix", 10_000, |i, ctx| {
            let x = input.ld(ctx, i);
            out.st(ctx, i, x * 2);
            if x.is_multiple_of(97) {
                acc.atomic_add(ctx, 0, 1);
            }
        });
        (
            out.to_vec(),
            acc.host_read(0),
            stats.totals,
            dev.kernel_seconds(),
        )
    };
    let (o1, a1, t1, k1) = run(true);
    let (o2, a2, t2, k2) = run(false);
    assert_eq!(o1, o2);
    assert_eq!(a1, a2);
    assert_eq!(t1, t2, "event totals must not depend on host scheduling");
    assert!((k1 - k2).abs() < 1e-12);
}

#[test]
fn simulated_clock_is_reproducible() {
    let run = || {
        let mut dev = Device::new(GpuProfile::RTX_3080_TI);
        let buf = BufU64::new(512, u64::MAX);
        let _ = dev.launch("mins", 4096, |i, ctx| {
            buf.atomic_min(ctx, i % 512, i as u64);
        });
        dev.sync_read();
        dev.memcpy_d2h(buf.size_bytes());
        (dev.kernel_seconds(), dev.memcpy_seconds())
    };
    assert_eq!(run(), run());
}

#[test]
fn gather_heavy_kernel_slower_than_coalesced() {
    let data: Vec<u32> = (0..1 << 16).collect();
    let buf = ConstBuf::from_slice(&data);
    let time = |gather: bool| {
        let mut dev = Device::new(GpuProfile::TITAN_V);
        let _ = dev.launch("scan", 1 << 14, |i, ctx| {
            for k in 0..4 {
                let idx = (i * 4 + k) % data.len();
                if gather {
                    buf.ld_gather(ctx, idx);
                } else {
                    buf.ld(ctx, idx);
                }
            }
        });
        dev.kernel_seconds()
    };
    assert!(time(true) > 2.0 * time(false));
}

#[test]
fn sync_read_accrues_to_kernel_time() {
    let mut dev = Device::new(GpuProfile::TITAN_V);
    let before = dev.kernel_seconds();
    dev.sync_read();
    assert!(dev.kernel_seconds() > before);
    assert_eq!(dev.memcpy_seconds(), 0.0);
}

#[test]
fn concurrent_kernel_atomics_are_exact() {
    // 64k increments across tasks must sum exactly regardless of host
    // scheduling.
    let mut dev = Device::new(GpuProfile::TITAN_V);
    let counter = BufU32::new(1, 0);
    let _ = dev.launch("count", 1 << 16, |_, ctx| {
        counter.atomic_add(ctx, 0, 1);
    });
    assert_eq!(counter.host_read(0), 1 << 16);
}

#[test]
fn records_preserve_launch_order() {
    let mut dev = Device::new(GpuProfile::TITAN_V);
    for name in ["a", "b", "c", "b"] {
        let _ = dev.launch(name, 1, |_, _| {});
    }
    let names: Vec<&str> = dev.records().iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, vec!["a", "b", "c", "b"]);
}
