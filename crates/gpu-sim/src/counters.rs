//! Event metering: per-task contexts and per-launch aggregates.

/// Per-task (thread or warp) event accumulator. Buffer accessors charge
/// traffic here; the device aggregates tasks into a [`LaunchStats`].
///
/// Deliberately holds *only* the five metered counters: sanitizer state
/// lives in thread-locals inside [`crate::sanitize`], because widening this
/// struct measurably slows the kernel hot path (it is copied and merged per
/// task).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskCtx {
    /// Bytes moved by coalesced accesses.
    pub coalesced_bytes: u64,
    /// Number of random (gather/scatter) accesses; each costs a DRAM sector.
    pub gather_accesses: u64,
    /// Number of atomic operations issued.
    pub atomics: u64,
    /// Number of failed CAS attempts (retries).
    pub cas_retries: u64,
    /// Number of access *instructions* issued (a 16-byte vectorized tuple
    /// load is one access; four separate array loads are four). Each access
    /// carries fixed issue/transaction overhead — this is what makes the
    /// paper's 4-tuple AoS worklist cheaper than four separate arrays.
    pub accesses: u64,
}

impl TaskCtx {
    /// Fresh, zeroed context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges a coalesced access of `bytes` (one access instruction).
    #[inline]
    pub fn charge_coalesced(&mut self, bytes: u64) {
        self.coalesced_bytes += bytes;
        self.accesses += 1;
    }

    /// Charges one random access (a full sector).
    #[inline]
    pub fn charge_gather(&mut self) {
        self.gather_accesses += 1;
        self.accesses += 1;
    }

    /// Charges one atomic operation.
    #[inline]
    pub fn charge_atomic(&mut self) {
        self.atomics += 1;
        self.accesses += 1;
    }

    /// Charges one failed CAS attempt.
    #[inline]
    pub fn charge_cas_retry(&mut self) {
        self.cas_retries += 1;
    }

    /// Folds another context into this one.
    #[inline]
    pub fn merge(&mut self, other: &TaskCtx) {
        self.coalesced_bytes += other.coalesced_bytes;
        self.gather_accesses += other.gather_accesses;
        self.atomics += other.atomics;
        self.cas_retries += other.cas_retries;
        self.accesses += other.accesses;
    }

    /// Byte-equivalent traffic of this task under the given weights.
    pub fn traffic_bytes(
        &self,
        sector_bytes: u64,
        atomic_penalty: u64,
        cas_retry_penalty: u64,
        access_overhead: u64,
    ) -> u64 {
        self.coalesced_bytes
            + self.gather_accesses * sector_bytes
            + self.atomics * (sector_bytes + atomic_penalty)
            + self.cas_retries * cas_retry_penalty
            + self.accesses * access_overhead
    }
}

/// Aggregated statistics of one kernel launch.
#[must_use]
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LaunchStats {
    /// Sum of all task events.
    pub totals: TaskCtx,
    /// Byte-equivalent traffic of the most expensive single task, after
    /// dividing warp-cooperative tasks by their 32 lanes.
    pub critical_bytes: u64,
    /// Number of tasks executed.
    pub tasks: u64,
}

/// One entry in the device's kernel log.
#[derive(Debug, Clone)]
pub struct KernelRecord {
    /// Kernel name as passed to `launch`.
    pub name: String,
    /// Aggregated event statistics.
    pub stats: LaunchStats,
    /// Simulated duration in seconds.
    pub sim_seconds: f64,
}

/// Per-kernel-name aggregate over a launch log, in first-launch order.
/// Shared by `Device::kernel_breakdown`, the `kernel_profile` binary, and
/// the trace exporter — the single implementation of "sum records by
/// name".
#[must_use]
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBreakdown {
    /// Kernel name.
    pub name: String,
    /// Number of launches with this name.
    pub launches: u64,
    /// Total simulated seconds across those launches.
    pub sim_seconds: f64,
    /// Sum of the launches' metered event totals.
    pub totals: TaskCtx,
}

/// Aggregates a launch log per kernel name, preserving first-launch
/// order. Seconds sum in record order, so results are bit-identical to
/// any other in-order fold over the same log.
pub fn aggregate_records(records: &[KernelRecord]) -> Vec<KernelBreakdown> {
    let mut acc: Vec<KernelBreakdown> = Vec::new();
    for r in records {
        match acc.iter_mut().find(|b| b.name == r.name) {
            Some(b) => {
                b.launches += 1;
                b.sim_seconds += r.sim_seconds;
                b.totals.merge(&r.stats.totals);
            }
            None => acc.push(KernelBreakdown {
                name: r.name.clone(),
                launches: 1,
                sim_seconds: r.sim_seconds,
                totals: r.stats.totals,
            }),
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_accumulates() {
        let mut c = TaskCtx::new();
        c.charge_coalesced(8);
        c.charge_coalesced(4);
        c.charge_gather();
        c.charge_atomic();
        c.charge_cas_retry();
        assert_eq!(c.coalesced_bytes, 12);
        assert_eq!(c.gather_accesses, 1);
        assert_eq!(c.atomics, 1);
        assert_eq!(c.cas_retries, 1);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = TaskCtx::new();
        a.charge_coalesced(4);
        let mut b = TaskCtx::new();
        b.charge_gather();
        b.charge_atomic();
        a.merge(&b);
        assert_eq!(a.coalesced_bytes, 4);
        assert_eq!(a.gather_accesses, 1);
        assert_eq!(a.atomics, 1);
    }

    #[test]
    fn traffic_weights_applied() {
        let mut c = TaskCtx::new();
        c.charge_coalesced(10); // 10 bytes, 1 access
        c.charge_gather(); // 32, 1 access
        c.charge_atomic(); // 32 + 16, 1 access
        c.charge_cas_retry(); // 64, no access
        assert_eq!(c.traffic_bytes(32, 16, 64, 0), 10 + 32 + 48 + 64);
        assert_eq!(c.traffic_bytes(32, 16, 64, 4), 10 + 32 + 48 + 64 + 3 * 4);
    }

    #[test]
    fn empty_task_has_no_traffic() {
        assert_eq!(TaskCtx::new().traffic_bytes(32, 32, 64, 4), 0);
    }

    #[test]
    fn aggregate_records_groups_by_name_in_first_launch_order() {
        let rec = |name: &str, secs: f64, atomics: u64| KernelRecord {
            name: name.to_string(),
            stats: LaunchStats {
                totals: TaskCtx {
                    atomics,
                    ..TaskCtx::default()
                },
                critical_bytes: 0,
                tasks: 1,
            },
            sim_seconds: secs,
        };
        let log = [rec("b", 1.0, 2), rec("a", 2.0, 1), rec("b", 3.0, 4)];
        let agg = aggregate_records(&log);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].name, "b");
        assert_eq!(agg[0].launches, 2);
        assert_eq!(agg[0].sim_seconds, 4.0);
        assert_eq!(agg[0].totals.atomics, 6);
        assert_eq!(agg[1].name, "a");
        assert_eq!(agg[1].launches, 1);
        assert!(aggregate_records(&[]).is_empty());
    }

    #[test]
    fn vectorized_access_cheaper_than_split_accesses() {
        // One 16-byte tuple load vs four 4-byte loads: same bytes, fewer
        // access-overhead charges.
        let mut tuple = TaskCtx::new();
        tuple.charge_coalesced(16);
        let mut soa = TaskCtx::new();
        for _ in 0..4 {
            soa.charge_coalesced(4);
        }
        assert!(tuple.traffic_bytes(32, 32, 64, 8) < soa.traffic_bytes(32, 32, 64, 8));
    }
}
