//! SIMT GPU execution-model simulator.
//!
//! The ECL-MST paper's artifact is CUDA measured on NVIDIA hardware. This
//! crate is the substitution substrate for that hardware gate: it *executes*
//! GPU kernels written against a CUDA-shaped API (grids of threads, warps of
//! 32 lanes with ballot/shuffle, device-memory atomics `atomicAdd` /
//! `atomicMin` / `atomicCAS`, per-launch overhead, host↔device transfers)
//! and *meters* them with a discrete cost model.
//!
//! # Honesty of the model
//!
//! Nothing here is cycle-accurate. The model is first-order
//! memory-bound — the right regime for graph algorithms on GPUs:
//!
//! * every device-memory access is recorded by the buffer accessors as
//!   either a **coalesced** access (consecutive lanes touching consecutive
//!   words: costs its byte size) or a **gather/scatter** access (random:
//!   costs a full 32-byte DRAM sector),
//! * atomics cost a sector plus a serialization surcharge, CAS retries
//!   compound,
//! * a kernel launch costs fixed overhead (the `while`-loop-of-launches
//!   pattern the paper discusses via Pai & Pingali),
//! * simulated kernel time is the makespan lower bound
//!   `max(total_traffic / device_bandwidth, critical_task_traffic /
//!   per-warp_bandwidth)` — the second term is what punishes vertex-centric
//!   codes on hub vertices and rewards the paper's hybrid warp/thread
//!   parallelization,
//! * H2D/D2H copies are metered at interconnect bandwidth for the
//!   "ECL-MST memcpy" rows.
//!
//! Because the kernels really run, comparative results (who wins, by what
//! factor, where the ablation steps land) emerge from actual work done, not
//! from hard-coded ratios.

#![forbid(unsafe_code)]
// Belt under the forbid above: if an audited `unsafe` block is ever
// admitted here, its unsafe operations must still be spelled out inside
// nested `unsafe {}` with their own SAFETY justification (the ecl-lint
// unsafe-audit rule checks both).
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod arena;
pub mod counters;
pub mod device;
pub mod memory;
pub mod profile;
pub mod sanitize;
pub mod warp;

pub use arena::{clear_scratch, scratch_footprint, with_scratch, ConstCache, DeviceArena, Scratch};
pub use counters::{aggregate_records, KernelBreakdown, KernelRecord, LaunchStats, TaskCtx};
pub use device::Device;
pub use memory::{BufU32, BufU64, ConstBuf};
pub use profile::GpuProfile;
pub use sanitize::{
    enabled as sanitize_enabled, with_sanitizer, SanitizerReport, Violation, ViolationKind,
};
pub use warp::{WarpCtx, WARP_SIZE};
