//! The simulated device: kernel launches, the simulated clock, and the
//! kernel log.

use crate::counters::{KernelRecord, LaunchStats, TaskCtx};
use crate::profile::GpuProfile;
use crate::sanitize;
use crate::warp::{WarpCtx, WARP_SIZE};
use rayon::prelude::*;

/// Minimum tasks per rayon work item when executing a launch host-parallel.
const HOST_CHUNK: usize = 4096;

/// A simulated GPU.
///
/// The device executes kernels (really — the closures run and mutate device
/// buffers) and advances a simulated clock according to the profile's cost
/// model. Kernel execution uses the host's cores through rayon; the
/// *simulated* time is unrelated to host wall-clock.
///
/// ```
/// use ecl_gpu_sim::{BufU32, Device, GpuProfile};
/// let mut dev = Device::new(GpuProfile::TITAN_V);
/// let counter = BufU32::new(1, 0);
/// dev.launch("increment", 1000, |_, ctx| {
///     counter.atomic_add(ctx, 0, 1);
/// });
/// assert_eq!(counter.host_read(0), 1000);
/// assert!(dev.kernel_seconds() > 0.0);
/// ```
#[derive(Debug)]
pub struct Device {
    profile: GpuProfile,
    kernel_seconds: f64,
    memcpy_seconds: f64,
    records: Vec<KernelRecord>,
    sequential: bool,
}

impl Device {
    /// Creates a device with the given profile.
    pub fn new(profile: GpuProfile) -> Self {
        Self {
            profile,
            kernel_seconds: 0.0,
            memcpy_seconds: 0.0,
            records: Vec::new(),
            sequential: false,
        }
    }

    /// Forces kernels to execute on one host thread (deterministic event
    /// counts; useful in tests).
    pub fn set_sequential(&mut self, seq: bool) {
        self.sequential = seq;
    }

    /// The device's cost profile.
    pub fn profile(&self) -> &GpuProfile {
        &self.profile
    }

    /// Launches a thread-granularity kernel of `tasks` logical threads.
    ///
    /// `f(task_index, ctx)` runs once per task; accesses metered through
    /// `ctx` drive the simulated duration. Returns the launch statistics.
    pub fn launch<F>(&mut self, name: &str, tasks: usize, f: F) -> LaunchStats
    where
        F: Fn(usize, &mut TaskCtx) + Sync,
    {
        let profile = self.profile;
        let traffic = |c: &TaskCtx| {
            c.traffic_bytes(
                profile.sector_bytes,
                profile.atomic_penalty_bytes,
                profile.cas_retry_penalty_bytes,
                profile.access_overhead_bytes,
            )
        };
        // With a sanitizer session active, run the sequential path with
        // per-task shadow attribution. Charging happens before recording in
        // every accessor and the task order is identical, so the metered
        // stats are bit-identical to an unsanitized launch.
        let sanitized = sanitize::launch_begin(name);
        let stats = if self.sequential || sanitized {
            let mut totals = TaskCtx::new();
            let mut critical = 0u64;
            for i in 0..tasks {
                if sanitized {
                    sanitize::set_task(i as u64);
                }
                let mut ctx = TaskCtx::new();
                f(i, &mut ctx);
                critical = critical.max(traffic(&ctx));
                totals.merge(&ctx);
            }
            LaunchStats {
                totals,
                critical_bytes: critical,
                tasks: tasks as u64,
            }
        } else {
            let (totals, critical) = (0..tasks)
                .into_par_iter()
                .with_min_len(HOST_CHUNK)
                .fold(
                    || (TaskCtx::new(), 0u64),
                    |(mut acc, mut crit), i| {
                        let mut ctx = TaskCtx::new();
                        f(i, &mut ctx);
                        crit = crit.max(traffic(&ctx));
                        acc.merge(&ctx);
                        (acc, crit)
                    },
                )
                .reduce(
                    || (TaskCtx::new(), 0u64),
                    |(mut a, ca), (b, cb)| {
                        a.merge(&b);
                        (a, ca.max(cb))
                    },
                );
            LaunchStats {
                totals,
                critical_bytes: critical,
                tasks: tasks as u64,
            }
        };
        if sanitized {
            sanitize::launch_end();
        }
        self.record(name, stats);
        stats
    }

    /// Launches a warp-capable kernel of `tasks` logical warps.
    ///
    /// Each task owns a [`WarpCtx`]; traffic metered on
    /// [`WarpCtx::parallel`] counts toward the task's critical path at
    /// 1/32 (the lanes share it), traffic on [`WarpCtx::serial`] in full.
    pub fn launch_warps<F>(&mut self, name: &str, tasks: usize, f: F) -> LaunchStats
    where
        F: Fn(usize, &mut WarpCtx) + Sync,
    {
        let profile = self.profile;
        let traffic = |c: &TaskCtx| {
            c.traffic_bytes(
                profile.sector_bytes,
                profile.atomic_penalty_bytes,
                profile.cas_retry_penalty_bytes,
                profile.access_overhead_bytes,
            )
        };
        let sanitized = sanitize::launch_begin(name);
        let run_task = |i: usize| -> (TaskCtx, u64) {
            if sanitized {
                sanitize::set_task(i as u64);
            }
            let mut w = WarpCtx::new();
            f(i, &mut w);
            let crit = traffic(&w.serial) + traffic(&w.parallel) / WARP_SIZE as u64;
            let mut merged = w.serial;
            merged.merge(&w.parallel);
            (merged, crit)
        };
        let stats = if self.sequential || sanitized {
            let mut totals = TaskCtx::new();
            let mut critical = 0u64;
            for i in 0..tasks {
                let (ctx, crit) = run_task(i);
                critical = critical.max(crit);
                totals.merge(&ctx);
            }
            LaunchStats {
                totals,
                critical_bytes: critical,
                tasks: tasks as u64,
            }
        } else {
            let (totals, critical) = (0..tasks)
                .into_par_iter()
                .with_min_len(HOST_CHUNK / WARP_SIZE)
                .fold(
                    || (TaskCtx::new(), 0u64),
                    |(mut acc, mut crit), i| {
                        let (ctx, c) = run_task(i);
                        crit = crit.max(c);
                        acc.merge(&ctx);
                        (acc, crit)
                    },
                )
                .reduce(
                    || (TaskCtx::new(), 0u64),
                    |(mut a, ca), (b, cb)| {
                        a.merge(&b);
                        (a, ca.max(cb))
                    },
                );
            LaunchStats {
                totals,
                critical_bytes: critical,
                tasks: tasks as u64,
            }
        };
        if sanitized {
            sanitize::launch_end();
        }
        self.record(name, stats);
        stats
    }

    fn record(&mut self, name: &str, stats: LaunchStats) {
        let total = stats.totals.traffic_bytes(
            self.profile.sector_bytes,
            self.profile.atomic_penalty_bytes,
            self.profile.cas_retry_penalty_bytes,
            self.profile.access_overhead_bytes,
        );
        let secs = self.profile.kernel_time(total, stats.critical_bytes);
        self.kernel_seconds += secs;
        if ecl_trace::enabled() {
            // Max-task over mean-task traffic: the per-launch imbalance
            // ratio (ISSUE 3's second new metered quantity). Derived from
            // already-metered values — nothing on the hot path widens.
            let imbalance = if total > 0 && stats.tasks > 0 {
                stats.critical_bytes as f64 * stats.tasks as f64 / total as f64
            } else {
                1.0
            };
            ecl_trace::on_launch(
                name,
                ecl_trace::LaunchMetrics {
                    tasks: stats.tasks,
                    coalesced_bytes: stats.totals.coalesced_bytes,
                    gather_accesses: stats.totals.gather_accesses,
                    atomics: stats.totals.atomics,
                    cas_retries: stats.totals.cas_retries,
                    accesses: stats.totals.accesses,
                    sim_seconds: secs,
                    imbalance,
                },
            );
        }
        self.records.push(KernelRecord {
            name: name.to_string(),
            stats,
            sim_seconds: secs,
        });
    }

    /// Meters a host-to-device copy of `bytes`.
    pub fn memcpy_h2d(&mut self, bytes: u64) {
        let secs = self.profile.memcpy_time(bytes);
        self.memcpy_seconds += secs;
        if ecl_trace::enabled() {
            ecl_trace::on_memcpy("memcpy_h2d", bytes, secs);
        }
    }

    /// Meters a device-to-host copy of `bytes`.
    pub fn memcpy_d2h(&mut self, bytes: u64) {
        let secs = self.profile.memcpy_time(bytes);
        self.memcpy_seconds += secs;
        if ecl_trace::enabled() {
            ecl_trace::on_memcpy("memcpy_d2h", bytes, secs);
        }
    }

    /// Meters a loop-control synchronization: the `cudaMemcpy`-inside-a-
    /// `while` pattern (§2, Pai & Pingali) where the host reads a few bytes
    /// to decide whether to launch another round. Unlike bulk transfers,
    /// this stalls the computation itself, so it accrues to **kernel**
    /// time — codes with nested convergence loops (pointer jumping, color
    /// flooding) pay it once per inner iteration.
    pub fn sync_read(&mut self) {
        let secs = self.profile.memcpy_time(4);
        self.kernel_seconds += secs;
        if ecl_trace::enabled() {
            ecl_trace::on_memcpy("sync_read", 4, secs);
        }
    }

    /// Simulated seconds spent in kernels so far.
    pub fn kernel_seconds(&self) -> f64 {
        self.kernel_seconds
    }

    /// Simulated seconds spent in host↔device copies so far.
    pub fn memcpy_seconds(&self) -> f64 {
        self.memcpy_seconds
    }

    /// Simulated kernel + memcpy seconds.
    pub fn total_seconds(&self) -> f64 {
        self.kernel_seconds + self.memcpy_seconds
    }

    /// The per-launch log, in launch order.
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Number of kernel launches so far.
    pub fn launches(&self) -> usize {
        self.records.len()
    }

    /// Resets the clock and the kernel log (buffers are untouched).
    pub fn reset(&mut self) {
        self.kernel_seconds = 0.0;
        self.memcpy_seconds = 0.0;
        self.records.clear();
    }

    /// Per-kernel-name aggregate of the launch log, in first-launch
    /// order (launch counts, summed seconds, summed event totals).
    pub fn kernel_breakdown(&self) -> Vec<crate::counters::KernelBreakdown> {
        crate::counters::aggregate_records(&self.records)
    }

    /// Sums simulated seconds per kernel name — the §5.1 profiling claim
    /// ("the initialization kernel takes about 40% of the total runtime")
    /// is checked against this. Thin projection of [`Self::kernel_breakdown`].
    pub fn time_by_kernel(&self) -> Vec<(String, f64)> {
        self.kernel_breakdown()
            .into_iter()
            .map(|b| (b.name, b.sim_seconds))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{BufU32, ConstBuf};

    #[test]
    fn launch_runs_every_task() {
        let mut dev = Device::new(GpuProfile::TITAN_V);
        let out = BufU32::new(100, 0);
        let _ = dev.launch("mark", 100, |i, ctx| {
            out.st(ctx, i, i as u32 + 1);
        });
        for i in 0..100 {
            assert_eq!(out.host_read(i), i as u32 + 1);
        }
    }

    #[test]
    fn clock_advances_per_launch() {
        let mut dev = Device::new(GpuProfile::TITAN_V);
        let _ = dev.launch("noop", 0, |_, _| {});
        let t1 = dev.kernel_seconds();
        assert!(t1 >= GpuProfile::TITAN_V.launch_overhead);
        let _ = dev.launch("noop", 0, |_, _| {});
        assert!(dev.kernel_seconds() > t1);
        assert_eq!(dev.launches(), 2);
    }

    #[test]
    fn traffic_increases_time() {
        let data: Vec<u32> = (0..100_000).collect();
        let buf = ConstBuf::from_slice(&data);
        let mut light = Device::new(GpuProfile::TITAN_V);
        let _ = light.launch("read1", 1000, |i, ctx| {
            let _ = buf.ld(ctx, i);
        });
        let mut heavy = Device::new(GpuProfile::TITAN_V);
        let _ = heavy.launch("read100", 1000, |i, ctx| {
            for k in 0..100 {
                let _ = buf.ld(ctx, i * 100 + k);
            }
        });
        assert!(heavy.kernel_seconds() > light.kernel_seconds());
    }

    #[test]
    fn imbalanced_thread_kernel_slower_than_balanced() {
        // Same total traffic, one task hogging it vs spread out.
        let data: Vec<u32> = (0..1 << 16).collect();
        let buf = ConstBuf::from_slice(&data);
        let mut balanced = Device::new(GpuProfile::TITAN_V);
        let _ = balanced.launch("balanced", 1 << 12, |i, ctx| {
            for k in 0..16 {
                let _ = buf.ld_gather(ctx, (i * 16 + k) % data.len());
            }
        });
        let mut skewed = Device::new(GpuProfile::TITAN_V);
        let _ = skewed.launch("skewed", 1 << 12, |i, ctx| {
            if i == 0 {
                for k in 0..(1 << 16) {
                    let _ = buf.ld_gather(ctx, k % data.len());
                }
            }
        });
        assert!(skewed.kernel_seconds() > balanced.kernel_seconds());
    }

    #[test]
    fn warp_parallel_traffic_shrinks_critical_path() {
        let data: Vec<u32> = (0..1 << 16).collect();
        let buf = ConstBuf::from_slice(&data);
        // One hub task with lots of traffic: warp-parallel metering should
        // yield a smaller simulated time than serial metering.
        let mut as_serial = Device::new(GpuProfile::TITAN_V);
        let _ = as_serial.launch_warps("serial-hub", 64, |i, w| {
            if i == 0 {
                for k in 0..(1 << 16) {
                    let _ = buf.ld(&mut w.serial, k);
                }
            }
        });
        let mut as_parallel = Device::new(GpuProfile::TITAN_V);
        let _ = as_parallel.launch_warps("warp-hub", 64, |i, w| {
            if i == 0 {
                for k in 0..(1 << 16) {
                    let _ = buf.ld(&mut w.parallel, k);
                }
            }
        });
        assert!(as_parallel.kernel_seconds() < as_serial.kernel_seconds());
    }

    #[test]
    fn sequential_mode_matches_parallel_results() {
        let run = |seq: bool| -> (Vec<u32>, u64) {
            let mut dev = Device::new(GpuProfile::TITAN_V);
            dev.set_sequential(seq);
            let out = BufU32::new(64, 0);
            let stats = dev.launch("sq", 64, |i, ctx| {
                out.st(ctx, i, (i * i) as u32);
            });
            (out.to_vec(), stats.totals.coalesced_bytes)
        };
        let (a, ta) = run(true);
        let (b, tb) = run(false);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn memcpy_metering() {
        let mut dev = Device::new(GpuProfile::TITAN_V);
        assert_eq!(dev.memcpy_seconds(), 0.0);
        dev.memcpy_h2d(1 << 20);
        let t = dev.memcpy_seconds();
        assert!(t > 0.0);
        dev.memcpy_d2h(1 << 20);
        assert!(dev.memcpy_seconds() > t);
        assert!(dev.total_seconds() >= dev.memcpy_seconds());
    }

    #[test]
    fn reset_clears_clock_and_log() {
        let mut dev = Device::new(GpuProfile::TITAN_V);
        let _ = dev.launch("k", 1, |_, ctx| ctx.charge_coalesced(4));
        dev.memcpy_h2d(1024);
        dev.reset();
        assert_eq!(dev.kernel_seconds(), 0.0);
        assert_eq!(dev.memcpy_seconds(), 0.0);
        assert!(dev.records().is_empty());
    }

    #[test]
    fn time_by_kernel_groups_names() {
        let mut dev = Device::new(GpuProfile::TITAN_V);
        let _ = dev.launch("a", 1, |_, _| {});
        let _ = dev.launch("b", 1, |_, _| {});
        let _ = dev.launch("a", 1, |_, _| {});
        let by = dev.time_by_kernel();
        assert_eq!(by.len(), 2);
        let a = by.iter().find(|(n, _)| n == "a").unwrap().1;
        let b = by.iter().find(|(n, _)| n == "b").unwrap().1;
        assert!(a > b);
    }

    #[test]
    fn kernel_breakdown_backs_time_by_kernel() {
        let mut dev = Device::new(GpuProfile::TITAN_V);
        let buf = BufU32::new(64, 0);
        let _ = dev.launch("a", 64, |i, ctx| {
            let _ = buf.atomic_add(ctx, i % 8, 1);
        });
        let _ = dev.launch("b", 8, |_, _| {});
        let _ = dev.launch("a", 64, |i, ctx| {
            let _ = buf.ld(ctx, i);
        });
        let breakdown = dev.kernel_breakdown();
        assert_eq!(breakdown.len(), 2);
        assert_eq!(breakdown[0].name, "a");
        assert_eq!(breakdown[0].launches, 2);
        assert_eq!(breakdown[0].totals.atomics, 64);
        let by_time = dev.time_by_kernel();
        assert_eq!(by_time.len(), breakdown.len());
        for (b, (n, t)) in breakdown.iter().zip(by_time.iter()) {
            assert_eq!(&b.name, n);
            assert_eq!(b.sim_seconds, *t, "bit-identical sums");
        }
    }

    #[test]
    fn traced_launch_reports_matching_events_without_perturbing_stats() {
        let run = || {
            let mut dev = Device::new(GpuProfile::TITAN_V);
            dev.set_sequential(true);
            let buf = BufU32::new(256, 0);
            let _ = dev.launch("k", 256, |i, ctx| {
                let _ = buf.atomic_add(ctx, i % 4, 1);
            });
            dev.memcpy_h2d(4096);
            dev.sync_read();
            dev
        };
        let plain = run();
        let (traced, session) = ecl_trace::with_trace(run);
        // Metering is bit-identical with tracing on.
        assert_eq!(plain.records()[0].stats, traced.records()[0].stats);
        assert_eq!(plain.kernel_seconds(), traced.kernel_seconds());
        assert_eq!(plain.memcpy_seconds(), traced.memcpy_seconds());
        // The trace mirrors the device's own accounting exactly.
        let profile = session.profile();
        assert_eq!(profile.kernels.len(), 1);
        assert_eq!(profile.kernels[0].name, "k");
        assert_eq!(profile.kernels[0].launches, 1);
        // Launch seconds are carried exactly; memcpy/sync durations round-
        // trip through microseconds, so compare those with a tight relative
        // tolerance.
        assert_eq!(
            profile.kernels[0].sim_seconds,
            traced.records()[0].sim_seconds
        );
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs();
        assert!(
            close(profile.total_kernel_seconds, traced.kernel_seconds()),
            "launch + sync_read seconds match the device clock"
        );
        assert!(close(profile.total_memcpy_seconds, traced.memcpy_seconds()));
        assert_eq!(profile.kernels[0].atomics, 256);
        assert!(profile.kernels[0].max_imbalance >= 1.0);
    }

    #[test]
    fn atomics_cost_more_than_loads() {
        let buf = BufU32::new(1 << 12, 0);
        let mut loads = Device::new(GpuProfile::TITAN_V);
        let _ = loads.launch("loads", 1 << 12, |i, ctx| {
            let _ = buf.ld(ctx, i);
        });
        let mut atomics = Device::new(GpuProfile::TITAN_V);
        let _ = atomics.launch("atomics", 1 << 12, |i, ctx| {
            let _ = buf.atomic_add(ctx, i, 1);
        });
        assert!(atomics.kernel_seconds() > loads.kernel_seconds());
    }
}
