//! The simulated device: kernel launches, the simulated clock, and the
//! kernel log.

use crate::counters::{KernelRecord, LaunchStats, TaskCtx};
use crate::profile::GpuProfile;
use crate::sanitize;
use crate::warp::{WarpCtx, WARP_SIZE};
use rayon::prelude::*;

/// Minimum tasks per rayon work item when executing a launch host-parallel.
const HOST_CHUNK: usize = 4096;

/// A simulated GPU.
///
/// The device executes kernels (really — the closures run and mutate device
/// buffers) and advances a simulated clock according to the profile's cost
/// model. Kernel execution uses the host's cores through rayon; the
/// *simulated* time is unrelated to host wall-clock.
///
/// ```
/// use ecl_gpu_sim::{BufU32, Device, GpuProfile};
/// let mut dev = Device::new(GpuProfile::TITAN_V);
/// let counter = BufU32::new(1, 0);
/// dev.launch("increment", 1000, |_, ctx| {
///     counter.atomic_add(ctx, 0, 1);
/// });
/// assert_eq!(counter.host_read(0), 1000);
/// assert!(dev.kernel_seconds() > 0.0);
/// ```
#[derive(Debug)]
pub struct Device {
    profile: GpuProfile,
    kernel_seconds: f64,
    memcpy_seconds: f64,
    records: Vec<KernelRecord>,
    sequential: bool,
}

impl Device {
    /// Creates a device with the given profile.
    pub fn new(profile: GpuProfile) -> Self {
        Self {
            profile,
            kernel_seconds: 0.0,
            memcpy_seconds: 0.0,
            records: Vec::new(),
            sequential: false,
        }
    }

    /// Forces kernels to execute on one host thread (deterministic event
    /// counts; useful in tests).
    pub fn set_sequential(&mut self, seq: bool) {
        self.sequential = seq;
    }

    /// The device's cost profile.
    pub fn profile(&self) -> &GpuProfile {
        &self.profile
    }

    /// Launches a thread-granularity kernel of `tasks` logical threads.
    ///
    /// `f(task_index, ctx)` runs once per task; accesses metered through
    /// `ctx` drive the simulated duration. Returns the launch statistics.
    pub fn launch<F>(&mut self, name: &str, tasks: usize, f: F) -> LaunchStats
    where
        F: Fn(usize, &mut TaskCtx) + Sync,
    {
        let profile = self.profile;
        let traffic = |c: &TaskCtx| {
            c.traffic_bytes(
                profile.sector_bytes,
                profile.atomic_penalty_bytes,
                profile.cas_retry_penalty_bytes,
                profile.access_overhead_bytes,
            )
        };
        // With a sanitizer session active, run the sequential path with
        // per-task shadow attribution. Charging happens before recording in
        // every accessor and the task order is identical, so the metered
        // stats are bit-identical to an unsanitized launch.
        let sanitized = sanitize::launch_begin(name);
        let stats = if self.sequential || sanitized {
            let mut totals = TaskCtx::new();
            let mut critical = 0u64;
            for i in 0..tasks {
                if sanitized {
                    sanitize::set_task(i as u64);
                }
                let mut ctx = TaskCtx::new();
                f(i, &mut ctx);
                critical = critical.max(traffic(&ctx));
                totals.merge(&ctx);
            }
            LaunchStats {
                totals,
                critical_bytes: critical,
                tasks: tasks as u64,
            }
        } else {
            let (totals, critical) = (0..tasks)
                .into_par_iter()
                .with_min_len(HOST_CHUNK)
                .fold(
                    || (TaskCtx::new(), 0u64),
                    |(mut acc, mut crit), i| {
                        let mut ctx = TaskCtx::new();
                        f(i, &mut ctx);
                        crit = crit.max(traffic(&ctx));
                        acc.merge(&ctx);
                        (acc, crit)
                    },
                )
                .reduce(
                    || (TaskCtx::new(), 0u64),
                    |(mut a, ca), (b, cb)| {
                        a.merge(&b);
                        (a, ca.max(cb))
                    },
                );
            LaunchStats {
                totals,
                critical_bytes: critical,
                tasks: tasks as u64,
            }
        };
        if sanitized {
            sanitize::launch_end();
        }
        self.record(name, stats);
        stats
    }

    /// Launches a warp-capable kernel of `tasks` logical warps.
    ///
    /// Each task owns a [`WarpCtx`]; traffic metered on
    /// [`WarpCtx::parallel`] counts toward the task's critical path at
    /// 1/32 (the lanes share it), traffic on [`WarpCtx::serial`] in full.
    pub fn launch_warps<F>(&mut self, name: &str, tasks: usize, f: F) -> LaunchStats
    where
        F: Fn(usize, &mut WarpCtx) + Sync,
    {
        let profile = self.profile;
        let traffic = |c: &TaskCtx| {
            c.traffic_bytes(
                profile.sector_bytes,
                profile.atomic_penalty_bytes,
                profile.cas_retry_penalty_bytes,
                profile.access_overhead_bytes,
            )
        };
        let sanitized = sanitize::launch_begin(name);
        let run_task = |i: usize| -> (TaskCtx, u64) {
            if sanitized {
                sanitize::set_task(i as u64);
            }
            let mut w = WarpCtx::new();
            f(i, &mut w);
            let crit = traffic(&w.serial) + traffic(&w.parallel) / WARP_SIZE as u64;
            let mut merged = w.serial;
            merged.merge(&w.parallel);
            (merged, crit)
        };
        let stats = if self.sequential || sanitized {
            let mut totals = TaskCtx::new();
            let mut critical = 0u64;
            for i in 0..tasks {
                let (ctx, crit) = run_task(i);
                critical = critical.max(crit);
                totals.merge(&ctx);
            }
            LaunchStats {
                totals,
                critical_bytes: critical,
                tasks: tasks as u64,
            }
        } else {
            let (totals, critical) = (0..tasks)
                .into_par_iter()
                .with_min_len(HOST_CHUNK / WARP_SIZE)
                .fold(
                    || (TaskCtx::new(), 0u64),
                    |(mut acc, mut crit), i| {
                        let (ctx, c) = run_task(i);
                        crit = crit.max(c);
                        acc.merge(&ctx);
                        (acc, crit)
                    },
                )
                .reduce(
                    || (TaskCtx::new(), 0u64),
                    |(mut a, ca), (b, cb)| {
                        a.merge(&b);
                        (a, ca.max(cb))
                    },
                );
            LaunchStats {
                totals,
                critical_bytes: critical,
                tasks: tasks as u64,
            }
        };
        if sanitized {
            sanitize::launch_end();
        }
        self.record(name, stats);
        stats
    }

    fn record(&mut self, name: &str, stats: LaunchStats) {
        let total = stats.totals.traffic_bytes(
            self.profile.sector_bytes,
            self.profile.atomic_penalty_bytes,
            self.profile.cas_retry_penalty_bytes,
            self.profile.access_overhead_bytes,
        );
        let secs = self.profile.kernel_time(total, stats.critical_bytes);
        self.kernel_seconds += secs;
        self.records.push(KernelRecord {
            name: name.to_string(),
            stats,
            sim_seconds: secs,
        });
    }

    /// Meters a host-to-device copy of `bytes`.
    pub fn memcpy_h2d(&mut self, bytes: u64) {
        self.memcpy_seconds += self.profile.memcpy_time(bytes);
    }

    /// Meters a device-to-host copy of `bytes`.
    pub fn memcpy_d2h(&mut self, bytes: u64) {
        self.memcpy_seconds += self.profile.memcpy_time(bytes);
    }

    /// Meters a loop-control synchronization: the `cudaMemcpy`-inside-a-
    /// `while` pattern (§2, Pai & Pingali) where the host reads a few bytes
    /// to decide whether to launch another round. Unlike bulk transfers,
    /// this stalls the computation itself, so it accrues to **kernel**
    /// time — codes with nested convergence loops (pointer jumping, color
    /// flooding) pay it once per inner iteration.
    pub fn sync_read(&mut self) {
        self.kernel_seconds += self.profile.memcpy_time(4);
    }

    /// Simulated seconds spent in kernels so far.
    pub fn kernel_seconds(&self) -> f64 {
        self.kernel_seconds
    }

    /// Simulated seconds spent in host↔device copies so far.
    pub fn memcpy_seconds(&self) -> f64 {
        self.memcpy_seconds
    }

    /// Simulated kernel + memcpy seconds.
    pub fn total_seconds(&self) -> f64 {
        self.kernel_seconds + self.memcpy_seconds
    }

    /// The per-launch log, in launch order.
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Number of kernel launches so far.
    pub fn launches(&self) -> usize {
        self.records.len()
    }

    /// Resets the clock and the kernel log (buffers are untouched).
    pub fn reset(&mut self) {
        self.kernel_seconds = 0.0;
        self.memcpy_seconds = 0.0;
        self.records.clear();
    }

    /// Sums simulated seconds per kernel name — the §5.1 profiling claim
    /// ("the initialization kernel takes about 40% of the total runtime")
    /// is checked against this.
    pub fn time_by_kernel(&self) -> Vec<(String, f64)> {
        let mut acc: Vec<(String, f64)> = Vec::new();
        for r in &self.records {
            match acc.iter_mut().find(|(n, _)| *n == r.name) {
                Some((_, t)) => *t += r.sim_seconds,
                None => acc.push((r.name.clone(), r.sim_seconds)),
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{BufU32, ConstBuf};

    #[test]
    fn launch_runs_every_task() {
        let mut dev = Device::new(GpuProfile::TITAN_V);
        let out = BufU32::new(100, 0);
        let _ = dev.launch("mark", 100, |i, ctx| {
            out.st(ctx, i, i as u32 + 1);
        });
        for i in 0..100 {
            assert_eq!(out.host_read(i), i as u32 + 1);
        }
    }

    #[test]
    fn clock_advances_per_launch() {
        let mut dev = Device::new(GpuProfile::TITAN_V);
        let _ = dev.launch("noop", 0, |_, _| {});
        let t1 = dev.kernel_seconds();
        assert!(t1 >= GpuProfile::TITAN_V.launch_overhead);
        let _ = dev.launch("noop", 0, |_, _| {});
        assert!(dev.kernel_seconds() > t1);
        assert_eq!(dev.launches(), 2);
    }

    #[test]
    fn traffic_increases_time() {
        let data: Vec<u32> = (0..100_000).collect();
        let buf = ConstBuf::from_slice(&data);
        let mut light = Device::new(GpuProfile::TITAN_V);
        let _ = light.launch("read1", 1000, |i, ctx| {
            let _ = buf.ld(ctx, i);
        });
        let mut heavy = Device::new(GpuProfile::TITAN_V);
        let _ = heavy.launch("read100", 1000, |i, ctx| {
            for k in 0..100 {
                let _ = buf.ld(ctx, i * 100 + k);
            }
        });
        assert!(heavy.kernel_seconds() > light.kernel_seconds());
    }

    #[test]
    fn imbalanced_thread_kernel_slower_than_balanced() {
        // Same total traffic, one task hogging it vs spread out.
        let data: Vec<u32> = (0..1 << 16).collect();
        let buf = ConstBuf::from_slice(&data);
        let mut balanced = Device::new(GpuProfile::TITAN_V);
        let _ = balanced.launch("balanced", 1 << 12, |i, ctx| {
            for k in 0..16 {
                let _ = buf.ld_gather(ctx, (i * 16 + k) % data.len());
            }
        });
        let mut skewed = Device::new(GpuProfile::TITAN_V);
        let _ = skewed.launch("skewed", 1 << 12, |i, ctx| {
            if i == 0 {
                for k in 0..(1 << 16) {
                    let _ = buf.ld_gather(ctx, k % data.len());
                }
            }
        });
        assert!(skewed.kernel_seconds() > balanced.kernel_seconds());
    }

    #[test]
    fn warp_parallel_traffic_shrinks_critical_path() {
        let data: Vec<u32> = (0..1 << 16).collect();
        let buf = ConstBuf::from_slice(&data);
        // One hub task with lots of traffic: warp-parallel metering should
        // yield a smaller simulated time than serial metering.
        let mut as_serial = Device::new(GpuProfile::TITAN_V);
        let _ = as_serial.launch_warps("serial-hub", 64, |i, w| {
            if i == 0 {
                for k in 0..(1 << 16) {
                    let _ = buf.ld(&mut w.serial, k);
                }
            }
        });
        let mut as_parallel = Device::new(GpuProfile::TITAN_V);
        let _ = as_parallel.launch_warps("warp-hub", 64, |i, w| {
            if i == 0 {
                for k in 0..(1 << 16) {
                    let _ = buf.ld(&mut w.parallel, k);
                }
            }
        });
        assert!(as_parallel.kernel_seconds() < as_serial.kernel_seconds());
    }

    #[test]
    fn sequential_mode_matches_parallel_results() {
        let run = |seq: bool| -> (Vec<u32>, u64) {
            let mut dev = Device::new(GpuProfile::TITAN_V);
            dev.set_sequential(seq);
            let out = BufU32::new(64, 0);
            let stats = dev.launch("sq", 64, |i, ctx| {
                out.st(ctx, i, (i * i) as u32);
            });
            (out.to_vec(), stats.totals.coalesced_bytes)
        };
        let (a, ta) = run(true);
        let (b, tb) = run(false);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn memcpy_metering() {
        let mut dev = Device::new(GpuProfile::TITAN_V);
        assert_eq!(dev.memcpy_seconds(), 0.0);
        dev.memcpy_h2d(1 << 20);
        let t = dev.memcpy_seconds();
        assert!(t > 0.0);
        dev.memcpy_d2h(1 << 20);
        assert!(dev.memcpy_seconds() > t);
        assert!(dev.total_seconds() >= dev.memcpy_seconds());
    }

    #[test]
    fn reset_clears_clock_and_log() {
        let mut dev = Device::new(GpuProfile::TITAN_V);
        let _ = dev.launch("k", 1, |_, ctx| ctx.charge_coalesced(4));
        dev.memcpy_h2d(1024);
        dev.reset();
        assert_eq!(dev.kernel_seconds(), 0.0);
        assert_eq!(dev.memcpy_seconds(), 0.0);
        assert!(dev.records().is_empty());
    }

    #[test]
    fn time_by_kernel_groups_names() {
        let mut dev = Device::new(GpuProfile::TITAN_V);
        let _ = dev.launch("a", 1, |_, _| {});
        let _ = dev.launch("b", 1, |_, _| {});
        let _ = dev.launch("a", 1, |_, _| {});
        let by = dev.time_by_kernel();
        assert_eq!(by.len(), 2);
        let a = by.iter().find(|(n, _)| n == "a").unwrap().1;
        let b = by.iter().find(|(n, _)| n == "b").unwrap().1;
        assert!(a > b);
    }

    #[test]
    fn atomics_cost_more_than_loads() {
        let buf = BufU32::new(1 << 12, 0);
        let mut loads = Device::new(GpuProfile::TITAN_V);
        let _ = loads.launch("loads", 1 << 12, |i, ctx| {
            let _ = buf.ld(ctx, i);
        });
        let mut atomics = Device::new(GpuProfile::TITAN_V);
        let _ = atomics.launch("atomics", 1 << 12, |i, ctx| {
            let _ = buf.atomic_add(ctx, i, 1);
        });
        assert!(atomics.kernel_seconds() > loads.kernel_seconds());
    }
}
