//! `gpu-sanitize`: a compute-sanitizer-style shadow-state layer.
//!
//! Modeled on NVIDIA `compute-sanitizer`'s four tools, applied to the
//! simulator's device buffers and launch drivers:
//!
//! * **racecheck** — per-launch shadow memory records `(task, access kind,
//!   value)` per word. A non-atomic write overlapping any other task's
//!   read or write of the same word within one launch is a conflict.
//!   Atomic RMWs are exempt. Two benign classes are downgraded to counted
//!   warnings instead of violations: *value-idempotent* writes (every
//!   racing writer stored the same value — the paper's "benign race", e.g.
//!   `changed = 1` flags) and *racy updates* (values differ, but every
//!   writer non-atomically read the word earlier in its own task — the
//!   DSU path-halving/compression pattern, whose safety argument is
//!   monotone convergence rather than value agreement).
//! * **initcheck** — buffers acquired uninitialized from the
//!   [`crate::arena::DeviceArena`] track a per-word written bitmap; a
//!   device read before the first write is a violation. Host-side writes
//!   (`fill`, `host_write*`) mark words initialized; host-side reads are
//!   deliberately unchecked (copying back a partially-written device
//!   region is normal, reading it on the *device* is not).
//! * **memcheck** — logical-bounds checks on every accessor (the arena
//!   recycles physically larger buffers, so an out-of-bounds index can
//!   silently "work" without this) and buffer-lifetime tracking (access
//!   to a buffer released back to the arena).
//! * **synccheck** — warp primitives flag use under divergence: a
//!   `ballot` over an empty active mask or a `shfl` sourcing a
//!   non-participating lane.
//!
//! The sanitizer is opt-in and scoped: [`with_sanitizer`] installs a
//! thread-local session, runs a closure, and returns the accumulated
//! [`SanitizerReport`]. Setting the `ECL_SANITIZE` environment variable
//! instead installs an ambient *trap-mode* session on first use, which
//! panics at the end of any launch that produced a violation — this is
//! what the CI sanitize job runs the whole test suite under.
//!
//! When no session is active the cost is one predictable branch per
//! buffer access (a const-initialized thread-local flag, [`active`]) —
//! shadow state is consulted only on the sanitized path. The flag lives
//! here rather than on [`crate::TaskCtx`] because widening that struct
//! measurably slows the kernel hot path. Shadow recording happens
//! strictly *after* event charging, so metered counters are bit-identical
//! with the sanitizer on or off (pinned by the golden counters test).

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::OnceLock;

/// Cap on individually recorded violations; the rest are only counted
/// (see [`SanitizerReport::suppressed_violations`]) so a broken kernel in
/// a tight loop cannot balloon the report.
pub const MAX_RECORDED_VIOLATIONS: usize = 200;

/// The sanitizer sub-tool that raised a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    /// Cross-task data-race detection.
    Racecheck,
    /// Read-before-write detection on uninitialized allocations.
    Initcheck,
    /// Bounds and buffer-lifetime checking.
    Memcheck,
    /// Warp-primitive divergence checking.
    Synccheck,
}

/// Classification of a single violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two tasks non-atomically wrote differing values to one word, and at
    /// least one wrote blind (without having read the word first).
    WriteWriteRace,
    /// One task non-atomically wrote a word another task read, the write
    /// was blind, and the value differs from what a reader could tolerate
    /// under the idempotent/racy-update rules.
    ReadWriteRace,
    /// Device read of a word never written since its uninitialized acquire.
    UninitRead,
    /// Access at an index at or beyond the buffer's logical length.
    OutOfBounds,
    /// Access to a buffer after it was released back to the arena.
    UseAfterRelease,
    /// Warp primitive used under divergence (empty ballot mask, shfl from
    /// a non-participating lane).
    DivergentWarpOp,
}

impl ViolationKind {
    /// The sub-tool this kind belongs to.
    pub fn tool(self) -> Tool {
        match self {
            ViolationKind::WriteWriteRace | ViolationKind::ReadWriteRace => Tool::Racecheck,
            ViolationKind::UninitRead => Tool::Initcheck,
            ViolationKind::OutOfBounds | ViolationKind::UseAfterRelease => Tool::Memcheck,
            ViolationKind::DivergentWarpOp => Tool::Synccheck,
        }
    }
}

/// One sanitizer violation, attributed to a kernel, launch, task, buffer,
/// and word.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Violation class.
    pub kind: ViolationKind,
    /// Kernel name as passed to `Device::launch`.
    pub kernel: String,
    /// Zero-based launch ordinal within the session.
    pub launch_index: u64,
    /// Task (thread or warp) id within the launch.
    pub task: u64,
    /// Buffer label (set via [`label`]) or `{kind}#{uid}` when unlabeled.
    pub buffer: String,
    /// Word index within the buffer (lane index for warp violations).
    pub word: usize,
    /// Human-readable specifics (values involved, lengths, …).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} [{:?}] kernel `{}` (launch #{}) task {} buffer `{}` word {}: {}",
            self.kind.tool(),
            self.kind,
            self.kernel,
            self.launch_index,
            self.task,
            self.buffer,
            self.word,
            self.detail
        )
    }
}

/// Accumulated result of a sanitizer session.
#[must_use]
#[derive(Debug, Default, Clone)]
pub struct SanitizerReport {
    violations: Vec<Violation>,
    /// Violations beyond [`MAX_RECORDED_VIOLATIONS`], counted but not kept.
    pub suppressed_violations: u64,
    /// Racing non-atomic writes downgraded because every writer stored the
    /// same value (the paper's "benign race").
    pub benign_idempotent_races: u64,
    /// Racing non-atomic writes downgraded because every writer had read
    /// the word earlier in its own task (DSU path compression/halving).
    pub benign_racy_updates: u64,
    /// Kernel launches executed under the session.
    pub checked_launches: u64,
    /// Device-buffer accesses checked.
    pub checked_accesses: u64,
}

impl SanitizerReport {
    /// The recorded violations, in deterministic (buffer, word) order per
    /// launch.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True when no violation (recorded or suppressed) occurred. Benign
    /// downgraded races do not count against cleanliness.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed_violations == 0
    }

    /// Number of violations of a given kind (among the recorded ones).
    pub fn count_of(&self, kind: ViolationKind) -> usize {
        self.violations.iter().filter(|v| v.kind == kind).count()
    }

    fn push(&mut self, v: Violation) {
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(v);
        } else {
            self.suppressed_violations += 1;
        }
    }
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gpu-sanitize: {} violation(s) ({} suppressed), {} idempotent + {} racy-update benign race(s), \
             {} launch(es), {} access(es) checked",
            self.violations.len(),
            self.suppressed_violations,
            self.benign_idempotent_races,
            self.benign_racy_updates,
            self.checked_launches,
            self.checked_accesses
        )
    }
}

/// Shadow identity of a device buffer, passed by accessors on the
/// sanitized path.
#[derive(Debug, Clone, Copy)]
pub struct BufRef {
    /// Process-unique buffer id.
    pub uid: u64,
    /// Buffer flavor for unlabeled reporting (`"u32"`, `"u64"`, `"const"`).
    pub kind: &'static str,
    /// Logical length in words (the memcheck bound).
    pub len: usize,
}

/// Implemented by the device buffer types so the sanitizer can identify
/// them (for [`label`] and the arena lifetime hooks).
pub trait ShadowBuf {
    /// The buffer's shadow identity.
    fn shadow_ref(&self) -> BufRef;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Collect violations into the report (the `with_sanitizer` mode).
    Collect,
    /// Panic at the end of any launch that produced a violation (the
    /// ambient `ECL_SANITIZE` mode).
    Trap,
}

/// Shadow state of one word within the current launch.
#[derive(Default)]
struct WordState {
    /// Tasks that performed a non-atomic read.
    readers: HashSet<u64>,
    /// Tasks that performed a non-atomic write.
    writers: HashSet<u64>,
    /// First non-atomic write observed: `(task, value)`.
    first_write: Option<(u64, u64)>,
    /// A write whose value differs from `first_write`, if any.
    diverged: Option<(u64, u64)>,
    /// A *blind* write — by a task that had not read the word — if any.
    blind: Option<(u64, u64)>,
}

struct LaunchShadow {
    kernel: String,
    index: u64,
    /// `(buffer uid, word) → state`; BTreeMap keeps violation order
    /// deterministic.
    words: BTreeMap<(u64, u64), WordState>,
    violations_at_entry: usize,
    suppressed_at_entry: u64,
}

/// Per-word init bitmap of a tracked uninitialized acquire.
struct InitShadow {
    bits: Vec<u64>,
    len: usize,
}

impl InitShadow {
    fn new(len: usize) -> Self {
        Self {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }
    fn is_written(&self, i: usize) -> bool {
        i >= self.len || self.bits[i / 64] >> (i % 64) & 1 == 1
    }
    fn mark(&mut self, i: usize) {
        if i < self.len {
            self.bits[i / 64] |= 1 << (i % 64);
        }
    }
    fn mark_range(&mut self, start: usize, end: usize) {
        for i in start..end.min(self.len) {
            self.bits[i / 64] |= 1 << (i % 64);
        }
    }
}

struct ShadowState {
    mode: Mode,
    launch: Option<LaunchShadow>,
    launch_counter: u64,
    /// Init bitmaps of buffers acquired uninitialized during the session.
    init: HashMap<u64, InitShadow>,
    /// Buffers currently released back to the arena.
    dead: HashSet<u64>,
    /// User-facing buffer labels.
    names: HashMap<u64, &'static str>,
    /// Buffer flavor (`"u32"`/`"u64"`/`"const"`) per uid, for unlabeled
    /// reporting.
    kinds: HashMap<u64, &'static str>,
    report: SanitizerReport,
}

impl ShadowState {
    fn new(mode: Mode) -> Self {
        Self {
            mode,
            launch: None,
            launch_counter: 0,
            init: HashMap::new(),
            dead: HashSet::new(),
            names: HashMap::new(),
            kinds: HashMap::new(),
            report: SanitizerReport::default(),
        }
    }

    fn buffer_name(&self, buf: BufRef) -> String {
        match self.names.get(&buf.uid) {
            Some(n) => (*n).to_string(),
            None => format!("{}#{}", buf.kind, buf.uid),
        }
    }

    fn violation(
        &mut self,
        kind: ViolationKind,
        task: u64,
        buf: BufRef,
        word: usize,
        detail: String,
    ) {
        let (kernel, index) = match &self.launch {
            Some(l) => (l.kernel.clone(), l.index),
            None => ("<host>".to_string(), self.launch_counter),
        };
        let buffer = self.buffer_name(buf);
        self.report.push(Violation {
            kind,
            kernel,
            launch_index: index,
            task,
            buffer,
            word,
            detail,
        });
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CURRENT_TASK: Cell<u64> = const { Cell::new(0) };
    static STATE: RefCell<Option<ShadowState>> = const { RefCell::new(None) };
}

/// True when a sanitizer session is active on this thread *right now*.
///
/// This is the hot-path gate consulted by every buffer accessor and warp
/// primitive: a const-initialized thread-local `Cell<bool>` read, one
/// predictable branch when off. Inside a launch it is authoritative —
/// [`launch_begin`] has already materialized the ambient `ECL_SANITIZE`
/// session (if any) before the first task runs.
#[inline]
pub(crate) fn active() -> bool {
    ACTIVE.get()
}

/// Sets the task (thread or warp) id shadow accesses are attributed to.
/// Called by the device's sanitized sequential loops before each task.
pub(crate) fn set_task(task: u64) {
    CURRENT_TASK.set(task);
}

/// The task id set by [`set_task`] for the task currently executing.
pub(crate) fn current_task() -> u64 {
    CURRENT_TASK.get()
}

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("ECL_SANITIZE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// True when a sanitizer session is (or, via `ECL_SANITIZE`, would be)
/// active on this thread. Cheap: a thread-local flag plus a cached env
/// lookup.
pub fn enabled() -> bool {
    ACTIVE.get() || env_enabled()
}

/// Runs `f` against the session state, creating the ambient trap-mode
/// session first if `ECL_SANITIZE` is set. Returns `None` when no session
/// is active.
fn with_state<R>(f: impl FnOnce(&mut ShadowState) -> R) -> Option<R> {
    if !ACTIVE.get() {
        if !env_enabled() {
            return None;
        }
        STATE.with(|s| *s.borrow_mut() = Some(ShadowState::new(Mode::Trap)));
        ACTIVE.set(true);
    }
    STATE.with(|s| s.borrow_mut().as_mut().map(f))
}

/// Restores the previous session (if any) when a scoped session exits,
/// including on unwind.
struct ScopeGuard {
    prev: Option<ShadowState>,
    taken: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.taken {
            let prev = self.prev.take();
            ACTIVE.set(prev.is_some());
            STATE.with(|s| *s.borrow_mut() = prev);
        }
    }
}

/// Runs `f` under a fresh collect-mode sanitizer session on this thread
/// and returns its result together with the session's report.
///
/// Any `Device::launch`/`launch_warps` performed inside the closure (on
/// any device) executes sequentially with shadow checking; buffers
/// acquired uninitialized from a [`crate::arena::DeviceArena`] inside the
/// closure are init-tracked. A pre-existing session (including the
/// ambient `ECL_SANITIZE` one) is suspended for the scope and restored
/// afterwards.
pub fn with_sanitizer<R>(f: impl FnOnce() -> R) -> (R, SanitizerReport) {
    let prev = STATE.with(|s| s.borrow_mut().take());
    STATE.with(|s| *s.borrow_mut() = Some(ShadowState::new(Mode::Collect)));
    ACTIVE.set(true);
    let mut guard = ScopeGuard { prev, taken: false };
    let out = f();
    let finished = STATE
        .with(|s| s.borrow_mut().take())
        .expect("sanitizer session vanished mid-scope");
    guard.taken = true;
    let prev = guard.prev.take();
    ACTIVE.set(prev.is_some());
    STATE.with(|s| *s.borrow_mut() = prev);
    (out, finished.report)
}

/// Attaches a human-readable name to a buffer for violation reports.
/// No-op when no session is active.
pub fn label(buf: &impl ShadowBuf, name: &'static str) {
    if !enabled() {
        return;
    }
    let uid = buf.shadow_ref().uid;
    with_state(|s| {
        s.names.insert(uid, name);
    });
}

// ---------------------------------------------------------------------------
// Launch hooks (called by `Device`).

/// Begins a sanitized launch; returns true when a session is active (the
/// device then runs the sequential path with per-task shadow reporting).
pub(crate) fn launch_begin(kernel: &str) -> bool {
    with_state(|s| {
        let index = s.launch_counter;
        s.launch_counter += 1;
        s.report.checked_launches += 1;
        s.launch = Some(LaunchShadow {
            kernel: kernel.to_string(),
            index,
            words: BTreeMap::new(),
            violations_at_entry: s.report.violations.len(),
            suppressed_at_entry: s.report.suppressed_violations,
        });
    })
    .is_some()
}

/// Ends a sanitized launch: runs the race analysis over the launch's
/// shadow words and, in trap mode, panics if the launch produced any
/// violation.
pub(crate) fn launch_end() {
    let trap: Option<Vec<String>> = with_state(|s| {
        let launch = s.launch.take().expect("launch_end without launch_begin");
        let words = launch.words;
        let (kernel, index) = (launch.kernel, launch.index);
        for ((uid, word), ws) in words {
            if ws.writers.is_empty() {
                continue;
            }
            let mut participants = ws.readers.len();
            for w in &ws.writers {
                if !ws.readers.contains(w) {
                    participants += 1;
                }
            }
            if participants < 2 {
                continue;
            }
            // A real cross-task conflict involving a non-atomic write.
            if ws.diverged.is_none() {
                s.report.benign_idempotent_races += 1;
                continue;
            }
            if ws.blind.is_none() {
                s.report.benign_racy_updates += 1;
                continue;
            }
            let (task, value) = ws.blind.or(ws.diverged).unwrap_or_default();
            let (kind, detail) = if ws.writers.len() >= 2 {
                let (t0, v0) = ws.first_write.unwrap_or_default();
                let (t1, v1) = ws.diverged.unwrap_or_default();
                (
                    ViolationKind::WriteWriteRace,
                    format!(
                        "blind non-atomic writes of differing values \
                         (task {t0} wrote {v0}, task {t1} wrote {v1})"
                    ),
                )
            } else {
                (
                    ViolationKind::ReadWriteRace,
                    format!(
                        "blind non-atomic write of {value} races {} reader task(s)",
                        ws.readers.len()
                    ),
                )
            };
            let name = match s.names.get(&uid) {
                Some(n) => (*n).to_string(),
                None => {
                    let kind = s.kinds.get(&uid).copied().unwrap_or("buf");
                    format!("{kind}#{uid}")
                }
            };
            s.report.push(Violation {
                kind,
                kernel: kernel.clone(),
                launch_index: index,
                task,
                buffer: name,
                word: word as usize,
                detail,
            });
        }
        if s.mode == Mode::Trap
            && (s.report.violations.len() > launch.violations_at_entry
                || s.report.suppressed_violations > launch.suppressed_at_entry)
        {
            Some(
                s.report.violations[launch.violations_at_entry..]
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>(),
            )
        } else {
            None
        }
    })
    .flatten();
    if let Some(msgs) = trap {
        panic!(
            "ECL_SANITIZE trap: kernel launch produced sanitizer violation(s):\n  {}",
            msgs.join("\n  ")
        );
    }
}

// ---------------------------------------------------------------------------
// Device-access hooks (called by buffer accessors when `active()`).

fn bounds_and_lifetime(s: &mut ShadowState, task: u64, buf: BufRef, word: usize) -> bool {
    s.report.checked_accesses += 1;
    s.kinds.entry(buf.uid).or_insert(buf.kind);
    if s.dead.contains(&buf.uid) {
        let detail = "access to a buffer released back to the arena".to_string();
        s.violation(ViolationKind::UseAfterRelease, task, buf, word, detail);
        return false;
    }
    if word >= buf.len {
        let detail = format!("index {word} >= logical length {}", buf.len);
        s.violation(ViolationKind::OutOfBounds, task, buf, word, detail);
        return false;
    }
    true
}

fn word_state(s: &mut ShadowState, buf: BufRef, word: usize) -> Option<&mut WordState> {
    s.launch
        .as_mut()
        .map(|l| l.words.entry((buf.uid, word as u64)).or_default())
}

/// Records a non-atomic device read of one word.
#[cold]
pub(crate) fn device_read(buf: BufRef, task: u64, word: usize) {
    with_state(|s| {
        if !bounds_and_lifetime(s, task, buf, word) {
            return;
        }
        if let Some(init) = s.init.get(&buf.uid) {
            if !init.is_written(word) {
                let detail = "read before first write of an uninitialized acquire".to_string();
                s.violation(ViolationKind::UninitRead, task, buf, word, detail);
            }
        }
        if let Some(ws) = word_state(s, buf, word) {
            ws.readers.insert(task);
        }
    });
}

/// Records a coalesced span read of `len` consecutive words.
#[cold]
pub(crate) fn device_read_span(buf: BufRef, task: u64, start: usize, len: usize) {
    for w in start..start + len {
        device_read(buf, task, w);
    }
}

/// Records a non-atomic device write of one word.
#[cold]
pub(crate) fn device_write(buf: BufRef, task: u64, word: usize, value: u64) {
    with_state(|s| {
        if !bounds_and_lifetime(s, task, buf, word) {
            return;
        }
        if let Some(init) = s.init.get_mut(&buf.uid) {
            init.mark(word);
        }
        if let Some(ws) = word_state(s, buf, word) {
            ws.writers.insert(task);
            if !ws.readers.contains(&task) && ws.blind.is_none() {
                ws.blind = Some((task, value));
            }
            match ws.first_write {
                None => ws.first_write = Some((task, value)),
                Some((_, v0)) => {
                    if v0 != value && ws.diverged.is_none() {
                        ws.diverged = Some((task, value));
                    }
                }
            }
        }
    });
}

/// Records an atomic read-modify-write of one word: exempt from
/// racecheck, but still bounds/lifetime/init-checked (and it initializes
/// the word).
#[cold]
pub(crate) fn device_rmw(buf: BufRef, task: u64, word: usize) {
    with_state(|s| {
        if !bounds_and_lifetime(s, task, buf, word) {
            return;
        }
        let unwritten = match s.init.get_mut(&buf.uid) {
            Some(init) => {
                let unwritten = !init.is_written(word);
                init.mark(word);
                unwritten
            }
            None => false,
        };
        if unwritten {
            let detail =
                "atomic RMW reads a word never written since its uninitialized acquire".to_string();
            s.violation(ViolationKind::UninitRead, task, buf, word, detail);
        }
    });
}

/// Records a warp-primitive divergence violation (synccheck).
#[cold]
pub(crate) fn warp_divergence(task: u64, what: &str, lane: usize) {
    with_state(|s| {
        let (kernel, index) = match &s.launch {
            Some(l) => (l.kernel.clone(), l.index),
            None => ("<host>".to_string(), s.launch_counter),
        };
        s.report.push(Violation {
            kind: ViolationKind::DivergentWarpOp,
            kernel,
            launch_index: index,
            task,
            buffer: "<warp>".to_string(),
            word: lane,
            detail: what.to_string(),
        });
    });
}

// ---------------------------------------------------------------------------
// Host-side hooks (arena lifetime, host writes for initcheck).

/// Arena hook: a buffer was acquired with unspecified contents. Starts
/// init tracking and revives the uid if it was marked released.
pub(crate) fn on_uninit_acquire(buf: BufRef) {
    if !enabled() {
        return;
    }
    with_state(|s| {
        s.dead.remove(&buf.uid);
        s.init.insert(buf.uid, InitShadow::new(buf.len));
    });
}

/// Arena hook: a buffer was released back to the pool; subsequent device
/// access is use-after-release until it is re-acquired.
pub(crate) fn on_release(buf: BufRef) {
    if !enabled() {
        return;
    }
    with_state(|s| {
        s.init.remove(&buf.uid);
        s.names.remove(&buf.uid);
        s.dead.insert(buf.uid);
    });
}

/// Host-write hook: marks `[start, end)` initialized on a tracked buffer.
pub(crate) fn on_host_write(uid: u64, start: usize, end: usize) {
    if !enabled() {
        return;
    }
    with_state(|s| {
        if let Some(init) = s.init.get_mut(&uid) {
            init.mark_range(start, end);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(uid: u64, len: usize) -> BufRef {
        BufRef {
            uid,
            kind: "u32",
            len,
        }
    }

    /// Drives the shadow hooks directly (white-box): use-after-release is
    /// not constructible through the safe arena API, which takes buffers
    /// by value on release.
    #[test]
    fn use_after_release_flags_and_reacquire_revives() {
        let ((), report) = with_sanitizer(|| {
            let b = buf(900, 8);
            on_uninit_acquire(b);
            on_release(b);
            assert!(launch_begin("stale"));
            device_read(b, 0, 3);
            launch_end();
            on_uninit_acquire(b);
            assert!(launch_begin("fresh"));
            device_write(b, 0, 3, 7);
            device_read(b, 0, 3);
            launch_end();
        });
        assert_eq!(report.count_of(ViolationKind::UseAfterRelease), 1);
        assert_eq!(report.violations().len(), 1);
        let v = &report.violations()[0];
        assert_eq!(v.kernel, "stale");
        assert_eq!(v.word, 3);
    }

    #[test]
    fn blind_initializing_write_racing_readers_is_a_violation() {
        let ((), report) = with_sanitizer(|| {
            let b = buf(901, 4);
            on_uninit_acquire(b);
            assert!(launch_begin("k"));
            // Word 0: read-then-write of differing values (path halving).
            device_write(b, 0, 0, 1); // task 0 initializes
            device_read(b, 1, 0);
            device_write(b, 1, 0, 2);
            device_read(b, 2, 0);
            device_write(b, 2, 0, 3);
            launch_end();
        });
        // Task 0's write is blind → still a violation? No: task 0 wrote 1,
        // tasks 1/2 wrote 2/3 after reading. Blind write by task 0 makes
        // this a true violation under the rules — assert exactly that, it
        // documents why real kernels must initialize in a separate launch.
        assert_eq!(report.violations().len(), 1);
        assert_eq!(report.violations()[0].kind, ViolationKind::WriteWriteRace);
    }

    #[test]
    fn racy_update_without_blind_writer_is_benign() {
        let ((), report) = with_sanitizer(|| {
            let b = buf(902, 4);
            assert!(launch_begin("k"));
            // Every writer reads first; values differ (halving pattern).
            device_read(b, 0, 0);
            device_write(b, 0, 0, 5);
            device_read(b, 1, 0);
            device_write(b, 1, 0, 6);
            launch_end();
        });
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.benign_racy_updates, 1);
    }

    #[test]
    fn trap_mode_panics_at_launch_end() {
        // Install a trap-mode session directly (the env var is process-wide
        // and cached, so tests cannot toggle it).
        STATE.with(|s| *s.borrow_mut() = Some(ShadowState::new(Mode::Trap)));
        ACTIVE.set(true);
        let b = buf(903, 2);
        let res = std::panic::catch_unwind(|| {
            assert!(launch_begin("broken"));
            device_write(b, 0, 0, 1);
            device_write(b, 1, 0, 2);
            launch_end();
        });
        ACTIVE.set(false);
        STATE.with(|s| *s.borrow_mut() = None);
        let err = res.expect_err("trap mode must panic on a violation");
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(msg.contains("ECL_SANITIZE trap"), "{msg}");
        assert!(msg.contains("broken"), "{msg}");
    }

    #[test]
    fn report_caps_recorded_violations() {
        let ((), report) = with_sanitizer(|| {
            let b = buf(904, 1);
            assert!(launch_begin("flood"));
            for t in 0..(MAX_RECORDED_VIOLATIONS as u64 + 50) {
                // Out-of-bounds on every access: one violation each.
                device_read(b, t, 5);
            }
            launch_end();
        });
        assert_eq!(report.violations().len(), MAX_RECORDED_VIOLATIONS);
        assert_eq!(report.suppressed_violations, 50);
        assert!(!report.is_clean());
    }

    #[test]
    fn nested_scoped_sessions_restore_outer() {
        let ((), outer) = with_sanitizer(|| {
            let b = buf(905, 2);
            assert!(launch_begin("outer1"));
            device_read(b, 0, 5); // OOB in outer
            launch_end();
            let ((), inner) = with_sanitizer(|| {
                assert!(launch_begin("inner"));
                launch_end();
            });
            assert!(inner.is_clean());
            assert_eq!(inner.checked_launches, 1);
            assert!(launch_begin("outer2"));
            launch_end();
        });
        assert_eq!(outer.checked_launches, 2);
        assert_eq!(outer.violations().len(), 1);
    }
}
