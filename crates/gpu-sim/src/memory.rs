//! Device-memory buffers with metered access.
//!
//! Three buffer kinds cover everything the MST kernels need:
//!
//! * [`ConstBuf`] — read-only device data (the CSR arrays). Plain `Vec<u32>`
//!   inside; reads are metered.
//! * [`BufU32`] — mutable 32-bit words with `atomicAdd`/`atomicCAS`
//!   (worklist cursors, parent arrays, per-edge MST flags).
//! * [`BufU64`] — mutable 64-bit words with `atomicMin` (the packed
//!   `weight:edge_id` reservation words).
//!
//! Every access takes a [`TaskCtx`] and self-classifies as *coalesced*
//! (consecutive lanes touch consecutive addresses — worklist reads/writes,
//! adjacency scans) or *gather* (data-dependent random address — parent
//! chains, per-vertex reservation words). Kernel authors choose the accessor
//! matching the actual access pattern, exactly the distinction an Nsight
//! profile of the CUDA code would surface.

use crate::counters::TaskCtx;
use crate::sanitize::{self, BufRef, ShadowBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Hands out process-unique buffer ids for the sanitizer's shadow maps.
fn next_uid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Read-only device buffer of `u32` (the graph's CSR arrays).
#[derive(Debug, Clone)]
pub struct ConstBuf {
    data: Vec<u32>,
    /// Shadow identity; clones share it (read-only data, same allocation
    /// semantics as an `Arc`'d upload).
    uid: u64,
}

impl ConstBuf {
    /// Uploads a host slice (metering of the H2D copy is the device's job).
    pub fn from_slice(data: &[u32]) -> Self {
        Self::from_vec(data.to_vec())
    }

    /// Uploads an owned host vector without copying it.
    pub fn from_vec(data: Vec<u32>) -> Self {
        Self {
            data,
            uid: next_uid(),
        }
    }

    /// Unmetered host-side view of the uploaded words (the host kept its
    /// copy; reading it costs nothing on the device).
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.data
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes (for memcpy metering).
    pub fn size_bytes(&self) -> u64 {
        4 * self.data.len() as u64
    }

    /// Coalesced read (sequential scan patterns).
    #[inline]
    pub fn ld(&self, ctx: &mut TaskCtx, i: usize) -> u32 {
        ctx.charge_coalesced(4);
        if sanitize::active() {
            sanitize::device_read(self.shadow_ref(), sanitize::current_task(), i);
        }
        self.data[i]
    }

    /// Random-address read (data-dependent indexing).
    #[inline]
    pub fn ld_gather(&self, ctx: &mut TaskCtx, i: usize) -> u32 {
        ctx.charge_gather();
        if sanitize::active() {
            sanitize::device_read(self.shadow_ref(), sanitize::current_task(), i);
        }
        self.data[i]
    }

    /// Warp-coalesced span read: 32 lanes issue one load instruction that
    /// covers `len` consecutive words (one access, `4·len` bytes). Models a
    /// warp cooperatively scanning an adjacency-list chunk.
    #[inline]
    pub fn ld_span(&self, ctx: &mut TaskCtx, start: usize, len: usize) -> &[u32] {
        ctx.charge_coalesced(4 * len as u64);
        if sanitize::active() {
            sanitize::device_read_span(self.shadow_ref(), sanitize::current_task(), start, len);
        }
        &self.data[start..start + len]
    }

    /// Single-thread row read with sector reuse: a thread walking its own
    /// row sequentially pays one 32-byte sector fetch per 8 words and rides
    /// the sector for the rest. Charges a gather only on sector boundaries
    /// relative to `row_start`.
    #[inline]
    pub fn ld_row(&self, ctx: &mut TaskCtx, i: usize, row_start: usize) -> u32 {
        if (i - row_start).is_multiple_of(8) {
            ctx.charge_gather();
        }
        if sanitize::active() {
            sanitize::device_read(self.shadow_ref(), sanitize::current_task(), i);
        }
        self.data[i]
    }
}

impl ShadowBuf for ConstBuf {
    fn shadow_ref(&self) -> BufRef {
        BufRef {
            uid: self.uid,
            kind: "const",
            len: self.data.len(),
        }
    }
}

/// Mutable device buffer of 32-bit words.
///
/// The buffer distinguishes its *logical* length (what kernels may touch,
/// what [`BufU32::size_bytes`] meters) from its *physical* capacity. The
/// [`crate::arena::DeviceArena`] pools buffers by power-of-two capacity
/// class and retargets the logical length on reuse, so a recycled buffer
/// meters exactly like a freshly allocated one.
#[derive(Debug)]
pub struct BufU32 {
    data: Vec<AtomicU32>,
    len: usize,
    uid: u64,
}

impl BufU32 {
    /// Allocates `len` words initialized to `init`.
    pub fn new(len: usize, init: u32) -> Self {
        Self {
            data: (0..len).map(|_| AtomicU32::new(init)).collect(),
            len,
            uid: next_uid(),
        }
    }

    /// Uploads a host slice.
    pub fn from_slice(data: &[u32]) -> Self {
        Self {
            data: data.iter().map(|&x| AtomicU32::new(x)).collect(),
            len: data.len(),
            uid: next_uid(),
        }
    }

    /// Logical number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Physical capacity in words (≥ [`BufU32::len`]).
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Retargets the logical length within the physical capacity. Word
    /// contents are *unspecified* until (re)initialized — callers either
    /// run a setup kernel, [`BufU32::fill`], or [`BufU32::host_write_slice`]
    /// before the first read, exactly as a `cudaMalloc`'d region requires.
    pub fn retarget(&mut self, len: usize) {
        assert!(len <= self.data.len(), "retarget beyond physical capacity");
        self.len = len;
    }

    /// Size in bytes (for memcpy metering).
    pub fn size_bytes(&self) -> u64 {
        4 * self.len as u64
    }

    /// Coalesced read.
    #[inline]
    #[must_use]
    pub fn ld(&self, ctx: &mut TaskCtx, i: usize) -> u32 {
        ctx.charge_coalesced(4);
        if sanitize::active() {
            sanitize::device_read(self.shadow_ref(), sanitize::current_task(), i);
        }
        self.data[i].load(Ordering::Relaxed)
    }

    /// Random-address read.
    #[inline]
    #[must_use]
    pub fn ld_gather(&self, ctx: &mut TaskCtx, i: usize) -> u32 {
        ctx.charge_gather();
        if sanitize::active() {
            sanitize::device_read(self.shadow_ref(), sanitize::current_task(), i);
        }
        self.data[i].load(Ordering::Relaxed)
    }

    /// Coalesced write.
    #[inline]
    pub fn st(&self, ctx: &mut TaskCtx, i: usize, v: u32) {
        ctx.charge_coalesced(4);
        if sanitize::active() {
            sanitize::device_write(self.shadow_ref(), sanitize::current_task(), i, u64::from(v));
        }
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// Random-address write.
    #[inline]
    pub fn st_scatter(&self, ctx: &mut TaskCtx, i: usize, v: u32) {
        ctx.charge_gather();
        if sanitize::active() {
            sanitize::device_write(self.shadow_ref(), sanitize::current_task(), i, u64::from(v));
        }
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// `atomicAdd`: returns the previous value (worklist slot allocation).
    #[inline]
    pub fn atomic_add(&self, ctx: &mut TaskCtx, i: usize, v: u32) -> u32 {
        ctx.charge_atomic();
        if sanitize::active() {
            sanitize::device_rmw(self.shadow_ref(), sanitize::current_task(), i);
        }
        self.data[i].fetch_add(v, Ordering::AcqRel)
    }

    /// Warp-aggregated `atomicAdd` on a shared counter: when every thread
    /// of a warp increments the *same address* (worklist cursors), the
    /// hardware coalesces the warp into a single atomic, so the amortized
    /// per-thread cost is a register shuffle plus 1/32 of an atomic —
    /// modeled as one cheap coalesced access.
    #[inline]
    pub fn atomic_add_aggregated(&self, ctx: &mut TaskCtx, i: usize, v: u32) -> u32 {
        ctx.charge_coalesced(4);
        if sanitize::active() {
            sanitize::device_rmw(self.shadow_ref(), sanitize::current_task(), i);
        }
        self.data[i].fetch_add(v, Ordering::AcqRel)
    }

    /// `atomicCAS`: returns `Ok(previous)` on success, `Err(actual)` on
    /// failure; a failure is charged as a retry.
    #[inline]
    pub fn atomic_cas(
        &self,
        ctx: &mut TaskCtx,
        i: usize,
        expect: u32,
        new: u32,
    ) -> Result<u32, u32> {
        ctx.charge_atomic();
        if sanitize::active() {
            sanitize::device_rmw(self.shadow_ref(), sanitize::current_task(), i);
        }
        match self.data[i].compare_exchange(expect, new, Ordering::AcqRel, Ordering::Acquire) {
            Ok(p) => Ok(p),
            Err(a) => {
                ctx.charge_cas_retry();
                Err(a)
            }
        }
    }

    /// `atomicMin` on 32-bit words.
    #[inline]
    pub fn atomic_min(&self, ctx: &mut TaskCtx, i: usize, v: u32) -> u32 {
        ctx.charge_atomic();
        if sanitize::active() {
            sanitize::device_rmw(self.shadow_ref(), sanitize::current_task(), i);
        }
        self.data[i].fetch_min(v, Ordering::AcqRel)
    }

    /// Vectorized coalesced load of 4 consecutive words (CUDA `int4`):
    /// one access instruction for 16 bytes — the AoS 4-tuple read.
    #[inline]
    #[must_use]
    pub fn ld4(&self, ctx: &mut TaskCtx, base: usize) -> [u32; 4] {
        ctx.charge_coalesced(16);
        if sanitize::active() {
            sanitize::device_read_span(self.shadow_ref(), sanitize::current_task(), base, 4);
        }
        [
            self.data[base].load(Ordering::Relaxed),
            self.data[base + 1].load(Ordering::Relaxed),
            self.data[base + 2].load(Ordering::Relaxed),
            self.data[base + 3].load(Ordering::Relaxed),
        ]
    }

    /// Vectorized coalesced store of 4 consecutive words (one access).
    #[inline]
    pub fn st4(&self, ctx: &mut TaskCtx, base: usize, v: [u32; 4]) {
        ctx.charge_coalesced(16);
        for (k, x) in v.into_iter().enumerate() {
            if sanitize::active() {
                sanitize::device_write(
                    self.shadow_ref(),
                    sanitize::current_task(),
                    base + k,
                    u64::from(x),
                );
            }
            self.data[base + k].store(x, Ordering::Relaxed);
        }
    }

    /// Unmetered host-side read (after a simulated D2H copy). Host reads of
    /// uninitialized words are deliberately not sanitized — copying back a
    /// partially-written region is normal host behavior.
    #[must_use]
    pub fn host_read(&self, i: usize) -> u32 {
        self.data[i].load(Ordering::Acquire)
    }

    /// Unmetered host-side write (before a simulated H2D copy).
    pub fn host_write(&self, i: usize, v: u32) {
        sanitize::on_host_write(self.uid, i, i + 1);
        self.data[i].store(v, Ordering::Release)
    }

    /// Unmetered host-side snapshot of the logical contents.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u32> {
        self.data[..self.len]
            .iter()
            .map(|x| x.load(Ordering::Acquire))
            .collect()
    }

    /// Unmetered host-side fill (cudaMemset analogue; meter it via the
    /// device if the fill is part of the measured region).
    pub fn fill(&self, v: u32) {
        sanitize::on_host_write(self.uid, 0, self.len);
        for x in &self.data[..self.len] {
            x.store(v, Ordering::Release);
        }
    }

    /// Unmetered host-side bulk write starting at word 0 (the host-staging
    /// step before a metered `memcpy_h2d`).
    pub fn host_write_slice(&self, data: &[u32]) {
        assert!(
            data.len() <= self.len,
            "host_write_slice beyond logical length"
        );
        sanitize::on_host_write(self.uid, 0, data.len());
        for (x, &v) in self.data.iter().zip(data) {
            x.store(v, Ordering::Release);
        }
    }

    /// Unmetered host-side write of the identity sequence `0, 1, 2, …`
    /// (common initial parent/color arrays) without a staging allocation.
    pub fn host_write_iota(&self) {
        sanitize::on_host_write(self.uid, 0, self.len);
        for (i, x) in self.data[..self.len].iter().enumerate() {
            x.store(i as u32, Ordering::Release);
        }
    }
}

impl ShadowBuf for BufU32 {
    fn shadow_ref(&self) -> BufRef {
        BufRef {
            uid: self.uid,
            kind: "u32",
            len: self.len,
        }
    }
}

/// Mutable device buffer of 64-bit words (packed `weight:edge_id`
/// reservations). Logical length vs physical capacity works as in
/// [`BufU32`].
#[derive(Debug)]
pub struct BufU64 {
    data: Vec<AtomicU64>,
    len: usize,
    uid: u64,
}

impl BufU64 {
    /// Allocates `len` words initialized to `init`.
    pub fn new(len: usize, init: u64) -> Self {
        Self {
            data: (0..len).map(|_| AtomicU64::new(init)).collect(),
            len,
            uid: next_uid(),
        }
    }

    /// Logical number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Physical capacity in words (≥ [`BufU64::len`]).
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Retargets the logical length within the physical capacity; contents
    /// are unspecified until reinitialized (see [`BufU32::retarget`]).
    pub fn retarget(&mut self, len: usize) {
        assert!(len <= self.data.len(), "retarget beyond physical capacity");
        self.len = len;
    }

    /// Size in bytes (for memcpy metering).
    pub fn size_bytes(&self) -> u64 {
        8 * self.len as u64
    }

    /// Coalesced read.
    #[inline]
    #[must_use]
    pub fn ld(&self, ctx: &mut TaskCtx, i: usize) -> u64 {
        ctx.charge_coalesced(8);
        if sanitize::active() {
            sanitize::device_read(self.shadow_ref(), sanitize::current_task(), i);
        }
        self.data[i].load(Ordering::Relaxed)
    }

    /// Random-address read (e.g. the guard load before an atomicMin).
    #[inline]
    #[must_use]
    pub fn ld_gather(&self, ctx: &mut TaskCtx, i: usize) -> u64 {
        ctx.charge_gather();
        if sanitize::active() {
            sanitize::device_read(self.shadow_ref(), sanitize::current_task(), i);
        }
        self.data[i].load(Ordering::Relaxed)
    }

    /// Coalesced write.
    #[inline]
    pub fn st(&self, ctx: &mut TaskCtx, i: usize, v: u64) {
        ctx.charge_coalesced(8);
        if sanitize::active() {
            sanitize::device_write(self.shadow_ref(), sanitize::current_task(), i, v);
        }
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// Random-address write.
    #[inline]
    pub fn st_scatter(&self, ctx: &mut TaskCtx, i: usize, v: u64) {
        ctx.charge_gather();
        if sanitize::active() {
            sanitize::device_write(self.shadow_ref(), sanitize::current_task(), i, v);
        }
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// 64-bit `atomicMin` — the deterministic-reservation primitive.
    #[inline]
    pub fn atomic_min(&self, ctx: &mut TaskCtx, i: usize, v: u64) -> u64 {
        ctx.charge_atomic();
        if sanitize::active() {
            sanitize::device_rmw(self.shadow_ref(), sanitize::current_task(), i);
        }
        self.data[i].fetch_min(v, Ordering::AcqRel)
    }

    /// Cache-resident random read: the reservation words are touched by
    /// every edge of a component, so guard loads overwhelmingly hit L2.
    /// Charged as a cheap 8-byte access instead of a DRAM sector — this is
    /// what makes the paper's atomic-guard optimization profitable.
    #[inline]
    #[must_use]
    pub fn ld_cached(&self, ctx: &mut TaskCtx, i: usize) -> u64 {
        ctx.charge_coalesced(8);
        if sanitize::active() {
            sanitize::device_read(self.shadow_ref(), sanitize::current_task(), i);
        }
        self.data[i].load(Ordering::Relaxed)
    }

    /// Unmetered host-side read.
    #[must_use]
    pub fn host_read(&self, i: usize) -> u64 {
        self.data[i].load(Ordering::Acquire)
    }

    /// Unmetered host-side fill.
    pub fn fill(&self, v: u64) {
        sanitize::on_host_write(self.uid, 0, self.len);
        for x in &self.data[..self.len] {
            x.store(v, Ordering::Release);
        }
    }
}

impl ShadowBuf for BufU64 {
    fn shadow_ref(&self) -> BufRef {
        BufRef {
            uid: self.uid,
            kind: "u64",
            len: self.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_buf_reads_meter() {
        let b = ConstBuf::from_slice(&[10, 20, 30]);
        let mut ctx = TaskCtx::new();
        assert_eq!(b.ld(&mut ctx, 1), 20);
        assert_eq!(b.ld_gather(&mut ctx, 2), 30);
        assert_eq!(ctx.coalesced_bytes, 4);
        assert_eq!(ctx.gather_accesses, 1);
        assert_eq!(b.size_bytes(), 12);
    }

    #[test]
    fn ld_span_is_one_access() {
        let b = ConstBuf::from_slice(&(0..64).collect::<Vec<u32>>());
        let mut ctx = TaskCtx::new();
        let s = b.ld_span(&mut ctx, 8, 32);
        assert_eq!(s[0], 8);
        assert_eq!(s.len(), 32);
        assert_eq!(ctx.accesses, 1);
        assert_eq!(ctx.coalesced_bytes, 128);
    }

    #[test]
    fn ld_row_charges_per_sector() {
        let b = ConstBuf::from_slice(&(0..64).collect::<Vec<u32>>());
        let mut ctx = TaskCtx::new();
        for i in 10..30 {
            let _ = b.ld_row(&mut ctx, i, 10);
        }
        // 20 words starting at the row origin: sectors at offsets 0, 8, 16.
        assert_eq!(ctx.gather_accesses, 3);
    }

    #[test]
    fn buf_u32_atomic_add_allocates_slots() {
        let b = BufU32::new(1, 0);
        let mut ctx = TaskCtx::new();
        assert_eq!(b.atomic_add(&mut ctx, 0, 1), 0);
        assert_eq!(b.atomic_add(&mut ctx, 0, 1), 1);
        assert_eq!(b.host_read(0), 2);
        assert_eq!(ctx.atomics, 2);
    }

    #[test]
    fn buf_u32_cas_success_and_failure() {
        let b = BufU32::new(1, 5);
        let mut ctx = TaskCtx::new();
        assert_eq!(b.atomic_cas(&mut ctx, 0, 5, 9), Ok(5));
        assert_eq!(b.atomic_cas(&mut ctx, 0, 5, 7), Err(9));
        assert_eq!(ctx.cas_retries, 1);
        assert_eq!(ctx.atomics, 2);
    }

    #[test]
    fn buf_u64_atomic_min_keeps_minimum() {
        let b = BufU64::new(2, u64::MAX);
        let mut ctx = TaskCtx::new();
        b.atomic_min(&mut ctx, 0, 100);
        b.atomic_min(&mut ctx, 0, 50);
        b.atomic_min(&mut ctx, 0, 80);
        assert_eq!(b.host_read(0), 50);
        assert_eq!(b.host_read(1), u64::MAX);
    }

    #[test]
    fn stores_and_loads_roundtrip() {
        let b = BufU32::new(4, 0);
        let mut ctx = TaskCtx::new();
        b.st(&mut ctx, 2, 42);
        b.st_scatter(&mut ctx, 3, 43);
        assert_eq!(b.ld(&mut ctx, 2), 42);
        assert_eq!(b.ld_gather(&mut ctx, 3), 43);
    }

    #[test]
    fn fill_resets_all() {
        let b = BufU64::new(3, 7);
        b.fill(u64::MAX);
        for i in 0..3 {
            assert_eq!(b.host_read(i), u64::MAX);
        }
    }

    #[test]
    fn vectorized_tuple_roundtrip_is_one_access() {
        let b = BufU32::new(8, 0);
        let mut ctx = TaskCtx::new();
        b.st4(&mut ctx, 4, [1, 2, 3, 4]);
        assert_eq!(b.ld4(&mut ctx, 4), [1, 2, 3, 4]);
        assert_eq!(ctx.accesses, 2);
        assert_eq!(ctx.coalesced_bytes, 32);
    }

    #[test]
    fn concurrent_atomic_min_is_exact() {
        let b = BufU64::new(1, u64::MAX);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let b = &b;
                s.spawn(move || {
                    let mut ctx = TaskCtx::new();
                    for k in 0..1000u64 {
                        b.atomic_min(&mut ctx, 0, (t + 1) * 1_000_000 - k);
                    }
                });
            }
        });
        assert_eq!(b.host_read(0), 1_000_000 - 999);
    }
}
