//! Cost-model parameters for the simulated GPUs.

/// First-order performance description of a GPU plus the event weights of
/// the cost model. Two built-in profiles describe the paper's test GPUs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// Sustained device-memory bandwidth in bytes/second.
    pub mem_bw: f64,
    /// Bandwidth available to a single warp chasing a critical path, in
    /// bytes/second. Divides the device bandwidth by the number of warps
    /// needed to saturate it; this term models load imbalance (a hub vertex
    /// processed by one thread/warp bottlenecks the whole kernel).
    pub warp_bw: f64,
    /// Fixed kernel-launch overhead in seconds (driver + dispatch).
    pub launch_overhead: f64,
    /// DRAM sector size in bytes; a random (uncoalesced) access always
    /// transfers a full sector.
    pub sector_bytes: u64,
    /// Byte-equivalent surcharge per atomic operation (L2 serialization).
    pub atomic_penalty_bytes: u64,
    /// Byte-equivalent surcharge per failed CAS (retry round trip).
    pub cas_retry_penalty_bytes: u64,
    /// Byte-equivalent issue/transaction overhead per access instruction
    /// (what a vectorized 16-byte tuple load saves over four scalar loads).
    pub access_overhead_bytes: u64,
    /// Host-to-device / device-to-host effective transfer bandwidth in
    /// bytes/s. The paper's memcpy columns imply ~6-8 GB/s (pageable host
    /// memory), well under the PCIe link peak.
    pub pcie_bw: f64,
    /// Fixed latency per memcpy call in seconds.
    pub memcpy_latency: f64,
}

impl GpuProfile {
    /// NVIDIA Titan V (System 1 of the paper): Volta, 80 SMs, 5,120 lanes,
    /// HBM2 at ~650 GB/s sustained, PCIe 3.0 x16.
    ///
    /// The launch overhead is scaled down ~8× from the physical ~3 µs: the
    /// reproduction's input suite is ~30–100× smaller than the paper's
    /// graphs, and keeping the physical value would make dispatch dominate
    /// every code equally, erasing the traffic differences the paper
    /// actually measures. Scaling the overhead with the inputs preserves
    /// the paper's overhead-to-traffic regime.
    pub const TITAN_V: GpuProfile = GpuProfile {
        name: "Titan V",
        mem_bw: 550.0e9,
        warp_bw: 550.0e9 / 512.0,
        launch_overhead: 0.4e-6,
        sector_bytes: 32,
        atomic_penalty_bytes: 24,
        cas_retry_penalty_bytes: 48,
        access_overhead_bytes: 10,
        pcie_bw: 7.0e9,
        memcpy_latency: 2.0e-6,
    };

    /// NVIDIA RTX 3080 Ti (System 2): Ampere, 80 SMs, 10,240 lanes, GDDR6X
    /// at ~912 GB/s peak (~760 sustained), PCIe 4.0 x16. Launch overhead
    /// scaled as for [`Self::TITAN_V`].
    pub const RTX_3080_TI: GpuProfile = GpuProfile {
        name: "RTX 3080 Ti",
        mem_bw: 760.0e9,
        warp_bw: 760.0e9 / 512.0,
        launch_overhead: 0.3e-6,
        sector_bytes: 32,
        atomic_penalty_bytes: 18,
        cas_retry_penalty_bytes: 36,
        access_overhead_bytes: 10,
        pcie_bw: 8.5e9,
        memcpy_latency: 1.6e-6,
    };

    /// Simulated duration of a kernel launch given aggregate statistics.
    ///
    /// `total_bytes` is all metered traffic; `critical_bytes` is the largest
    /// single task's traffic (a warp task divides its traffic by the 32
    /// cooperating lanes before reporting it).
    pub fn kernel_time(&self, total_bytes: u64, critical_bytes: u64) -> f64 {
        let throughput_bound = total_bytes as f64 / self.mem_bw;
        let critical_bound = critical_bytes as f64 / self.warp_bw;
        self.launch_overhead + throughput_bound.max(critical_bound)
    }

    /// Simulated duration of one host↔device copy of `bytes`.
    pub fn memcpy_time(&self, bytes: u64) -> f64 {
        self.memcpy_latency + bytes as f64 / self.pcie_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // guards future profile edits
    fn profiles_differ() {
        assert!(GpuProfile::RTX_3080_TI.mem_bw > GpuProfile::TITAN_V.mem_bw);
        assert!(GpuProfile::RTX_3080_TI.pcie_bw > GpuProfile::TITAN_V.pcie_bw);
    }

    #[test]
    fn kernel_time_includes_overhead() {
        let p = GpuProfile::TITAN_V;
        assert!(p.kernel_time(0, 0) >= p.launch_overhead);
    }

    #[test]
    fn kernel_time_scales_with_traffic() {
        let p = GpuProfile::TITAN_V;
        let t1 = p.kernel_time(1 << 20, 0);
        let t2 = p.kernel_time(1 << 24, 0);
        assert!(t2 > t1);
    }

    #[test]
    fn critical_path_dominates_imbalanced_kernels() {
        let p = GpuProfile::TITAN_V;
        // A kernel whose traffic all sits in one task is bound by warp
        // bandwidth, not device bandwidth.
        let balanced = p.kernel_time(1 << 24, 32);
        let imbalanced = p.kernel_time(1 << 24, 1 << 24);
        assert!(imbalanced > 10.0 * balanced);
    }

    #[test]
    fn memcpy_faster_on_system2() {
        let bytes = 1 << 26;
        assert!(
            GpuProfile::RTX_3080_TI.memcpy_time(bytes) < GpuProfile::TITAN_V.memcpy_time(bytes)
        );
    }
}
