//! Warp-level execution context.
//!
//! CUDA warps execute 32 lanes in lockstep and exchange data with `ballot`
//! and `shfl`. The simulator models a warp-capable task as a [`WarpCtx`]
//! holding **two** metering contexts:
//!
//! * [`WarpCtx::serial`] — accesses performed by a single lane (the
//!   thread-granularity path of the paper's hybrid scheme, used for
//!   low-degree vertices). These bytes sit on the task's critical path in
//!   full.
//! * [`WarpCtx::parallel`] — accesses spread across the 32 cooperating
//!   lanes (the warp-granularity path for high-degree vertices). The
//!   device divides this traffic by [`WARP_SIZE`] when computing the task's
//!   critical-path contribution, which is exactly the benefit of the
//!   paper's hybrid parallelization.
//!
//! Kernels choose per-vertex which context to meter against, mirroring the
//! `d(v) < 4` branch on the GPU.

use crate::counters::TaskCtx;
use crate::sanitize;

/// Number of lanes in a warp.
pub const WARP_SIZE: usize = 32;

/// Execution context of one warp-capable task.
#[derive(Debug, Default)]
pub struct WarpCtx {
    /// Metering context for single-lane (thread-granularity) work.
    pub serial: TaskCtx,
    /// Metering context for lane-parallel (warp-granularity) work.
    pub parallel: TaskCtx,
}

impl WarpCtx {
    /// Fresh context.
    pub fn new() -> Self {
        Self::default()
    }

    /// `__ballot_sync` analogue: evaluates up to 32 lane predicates and
    /// packs them into a mask (lane 0 = bit 0). Register-only: free in the
    /// cost model.
    ///
    /// Under the sanitizer, a ballot over an *empty* active mask is flagged
    /// by synccheck: on hardware `__ballot_sync(0, …)` is undefined — a
    /// sync primitive must name at least one participating lane.
    pub fn ballot<I: IntoIterator<Item = bool>>(&self, lanes: I) -> u32 {
        let mut mask = 0u32;
        let mut count = 0usize;
        for (lane, pred) in lanes.into_iter().enumerate() {
            assert!(lane < WARP_SIZE, "ballot takes at most {WARP_SIZE} lanes");
            count += 1;
            if pred {
                mask |= 1 << lane;
            }
        }
        if sanitize::active() && count == 0 {
            sanitize::warp_divergence(
                sanitize::current_task(),
                "ballot over an empty active mask (no participating lanes)",
                0,
            );
        }
        mask
    }

    /// `__shfl_sync` analogue: every lane reads `values[src_lane]`.
    /// Register-only: free in the cost model.
    ///
    /// Under the sanitizer, sourcing a lane outside the participating set
    /// is flagged by synccheck (divergent source lane) and reads as 0, the
    /// hardware's unspecified-result analogue; unsanitized it panics as
    /// before.
    pub fn shfl(&self, values: &[u64], src_lane: usize) -> u64 {
        assert!(values.len() <= WARP_SIZE);
        if sanitize::active() && src_lane >= values.len() {
            sanitize::warp_divergence(
                sanitize::current_task(),
                "shfl sources a lane outside the participating set",
                src_lane,
            );
            return 0;
        }
        values[src_lane]
    }

    /// Warp-wide minimum via butterfly shuffles (register-only).
    pub fn reduce_min(&self, values: &[u64]) -> Option<u64> {
        assert!(values.len() <= WARP_SIZE);
        values.iter().copied().min()
    }

    /// Iterates a range in lockstep rounds of up to 32 items, as warp
    /// threads striding an adjacency list do. Yields `(start, len)` per
    /// round.
    pub fn rounds(&self, len: usize) -> impl Iterator<Item = (usize, usize)> {
        (0..len)
            .step_by(WARP_SIZE)
            .map(move |s| (s, WARP_SIZE.min(len - s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_packs_bits() {
        let w = WarpCtx::new();
        let mask = w.ballot([true, false, true, true]);
        assert_eq!(mask, 0b1101);
        assert_eq!(mask.count_ones(), 3);
    }

    #[test]
    fn ballot_empty_is_zero() {
        let w = WarpCtx::new();
        assert_eq!(w.ballot(std::iter::empty()), 0);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn ballot_rejects_33_lanes() {
        let w = WarpCtx::new();
        let _ = w.ballot(std::iter::repeat_n(true, 33));
    }

    #[test]
    fn shfl_broadcasts() {
        let w = WarpCtx::new();
        assert_eq!(w.shfl(&[9, 8, 7], 1), 8);
    }

    #[test]
    fn reduce_min_finds_minimum() {
        let w = WarpCtx::new();
        assert_eq!(w.reduce_min(&[5, 2, 9]), Some(2));
        assert_eq!(w.reduce_min(&[]), None);
    }

    #[test]
    fn rounds_cover_range_in_warp_chunks() {
        let w = WarpCtx::new();
        let r: Vec<_> = w.rounds(70).collect();
        assert_eq!(r, vec![(0, 32), (32, 32), (64, 6)]);
        assert_eq!(w.rounds(0).count(), 0);
        assert_eq!(w.rounds(32).collect::<Vec<_>>(), vec![(0, 32)]);
    }

    #[test]
    fn contexts_meter_independently() {
        let mut w = WarpCtx::new();
        w.serial.charge_coalesced(4);
        w.parallel.charge_coalesced(128);
        assert_eq!(w.serial.coalesced_bytes, 4);
        assert_eq!(w.parallel.coalesced_bytes, 128);
    }
}
