//! Reusable device-buffer arena and constant-upload cache.
//!
//! The simulator meters *device events* (coalesced bytes, gathers, atomics,
//! launches, H2D/D2H transfer bytes) but executes on the host — and the
//! host-side cost of a run was dominated by allocating and initializing the
//! same device buffers over and over: every [`crate::Device`] run built its
//! CSR [`ConstBuf`]s, worklists, parent arrays and reservation words from
//! scratch. Two pieces remove that churn:
//!
//! * [`DeviceArena`] — pools of [`BufU32`]/[`BufU64`] keyed by power-of-two
//!   **capacity class**. `acquire` pops a pooled buffer (or allocates one of
//!   the class size) and retargets its logical length, so `len()`/
//!   `size_bytes()` — and therefore every metered quantity — are identical
//!   to a fresh allocation. `release` returns the buffer to its class pool.
//! * [`ConstCache`] — immutable uploads ([`ConstBuf`]) keyed by
//!   `(owner key, tag)` and shared via [`Arc`]. A graph's CSR arrays are
//!   uploaded once and reused by every code in a harness run.
//!
//! # Metering invariants
//!
//! Neither structure touches the cost model. Buffer *construction* has
//! always been unmetered (the H2D transfer is charged separately by
//! [`crate::Device::memcpy_h2d`], which callers keep issuing per run); an
//! arena hit merely skips the host allocation. When reused contents must be
//! re-initialized, callers use the same unmetered host-side writes
//! (`fill`, `host_write_slice`, `host_write_iota`) that the constructors
//! performed — any *modeled* transfer for them is charged exactly where it
//! was before. The `tests/golden_counters.rs` suite pins this bit-for-bit.
//!
//! # Thread-local scratch
//!
//! [`with_scratch`] hands out a per-thread [`Scratch`] (arena + cache) so
//! run functions keep their signatures while sharing storage across calls.
//! Borrows must be short — acquire/release inside the closure, never across
//! kernel execution — because re-entrant use panics (`RefCell`).

use crate::memory::{BufU32, BufU64, ConstBuf};
use crate::sanitize::{self, ShadowBuf};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Smallest pooled capacity: tiny buffers all share one class, which keeps
/// the pool map small without wasting meaningful memory.
const MIN_CLASS: usize = 64;

/// Capacity class of a requested logical length.
fn capacity_class(len: usize) -> usize {
    len.next_power_of_two().max(MIN_CLASS)
}

/// Pools of reusable mutable device buffers, keyed by capacity class.
#[derive(Debug, Default)]
pub struct DeviceArena {
    u32_free: HashMap<usize, Vec<BufU32>>,
    u64_free: HashMap<usize, Vec<BufU64>>,
}

impl DeviceArena {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires a `u32` buffer of logical length `len` with *unspecified*
    /// contents (the `cudaMalloc` analogue). Use when a setup kernel or
    /// host write initializes every word that will be read.
    pub fn acquire_u32_uninit(&mut self, len: usize) -> BufU32 {
        let class = capacity_class(len);
        let mut b = match self.u32_free.get_mut(&class).and_then(Vec::pop) {
            Some(b) => b,
            None => BufU32::new(class, 0),
        };
        b.retarget(len);
        sanitize::on_uninit_acquire(b.shadow_ref());
        b
    }

    /// Acquires a `u32` buffer with every word set to `init` (unmetered
    /// host fill, like `BufU32::new`).
    pub fn acquire_u32(&mut self, len: usize, init: u32) -> BufU32 {
        let b = self.acquire_u32_uninit(len);
        b.fill(init);
        b
    }

    /// Acquires a `u32` buffer initialized from a host slice (unmetered,
    /// like `BufU32::from_slice`).
    pub fn acquire_u32_from(&mut self, data: &[u32]) -> BufU32 {
        let b = self.acquire_u32_uninit(data.len());
        b.host_write_slice(data);
        b
    }

    /// Acquires a `u64` buffer with unspecified contents.
    pub fn acquire_u64_uninit(&mut self, len: usize) -> BufU64 {
        let class = capacity_class(len);
        let mut b = match self.u64_free.get_mut(&class).and_then(Vec::pop) {
            Some(b) => b,
            None => BufU64::new(class, 0),
        };
        b.retarget(len);
        sanitize::on_uninit_acquire(b.shadow_ref());
        b
    }

    /// Acquires a `u64` buffer with every word set to `init`.
    pub fn acquire_u64(&mut self, len: usize, init: u64) -> BufU64 {
        let b = self.acquire_u64_uninit(len);
        b.fill(init);
        b
    }

    /// Returns a buffer to its capacity-class pool. Under the sanitizer
    /// the buffer is marked released: further device access (through a
    /// stale clone of its shadow identity) is a memcheck violation until
    /// it is re-acquired.
    pub fn release_u32(&mut self, b: BufU32) {
        sanitize::on_release(b.shadow_ref());
        self.u32_free.entry(b.capacity()).or_default().push(b);
    }

    /// Returns a buffer to its capacity-class pool (see
    /// [`DeviceArena::release_u32`] for sanitizer semantics).
    pub fn release_u64(&mut self, b: BufU64) {
        sanitize::on_release(b.shadow_ref());
        self.u64_free.entry(b.capacity()).or_default().push(b);
    }

    /// Total bytes held in the free pools (diagnostics).
    pub fn pooled_bytes(&self) -> u64 {
        let b32: u64 = self
            .u32_free
            .iter()
            .map(|(class, v)| 4 * *class as u64 * v.len() as u64)
            .sum();
        let b64: u64 = self
            .u64_free
            .iter()
            .map(|(class, v)| 8 * *class as u64 * v.len() as u64)
            .sum();
        b32 + b64
    }

    /// Drops every pooled buffer.
    pub fn clear(&mut self) {
        self.u32_free.clear();
        self.u64_free.clear();
    }
}

/// Cache of immutable device uploads, keyed by `(owner key, tag)`.
///
/// The owner key is typically a graph's unique id; the tag names which
/// derived array the entry holds (`"csr/adjacency"`, `"gunrock/ep_u"`, …).
#[derive(Debug, Default)]
pub struct ConstCache {
    map: HashMap<(u64, &'static str), Arc<ConstBuf>>,
}

impl ConstCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached upload for `(key, tag)`, building it on first use.
    pub fn get_or_upload(
        &mut self,
        key: u64,
        tag: &'static str,
        build: impl FnOnce() -> ConstBuf,
    ) -> Arc<ConstBuf> {
        let buf = self
            .map
            .entry((key, tag))
            .or_insert_with(|| Arc::new(build()))
            .clone();
        // Cache hits re-label so a sanitizer session started after the
        // upload still reports the human-readable tag.
        crate::sanitize::label(&*buf, tag);
        buf
    }

    /// Drops every entry belonging to `key` (all tags).
    pub fn evict(&mut self, key: u64) {
        self.map.retain(|(k, _), _| *k != key);
    }

    /// Number of cached uploads.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total bytes resident in the cache (diagnostics).
    pub fn resident_bytes(&self) -> u64 {
        self.map.values().map(|b| b.size_bytes()).sum()
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// Per-thread reusable device storage: buffer arena + upload cache.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Mutable-buffer pools.
    pub arena: DeviceArena,
    /// Immutable-upload cache.
    pub consts: ConstCache,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Runs `f` with this thread's [`Scratch`]. Keep the borrow short:
/// acquire/look up, return, and call again later to release. Nested calls
/// panic (re-entrant `RefCell` borrow).
pub fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Diagnostic snapshot of this thread's scratch: `(cached upload bytes,
/// pooled arena bytes)`.
pub fn scratch_footprint() -> (u64, u64) {
    with_scratch(|s| (s.consts.resident_bytes(), s.arena.pooled_bytes()))
}

/// Drops every cached upload and pooled buffer on this thread.
pub fn clear_scratch() {
    with_scratch(|s| {
        s.arena.clear();
        s.consts.clear();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_reuses_released_capacity() {
        let mut a = DeviceArena::new();
        let b = a.acquire_u32(100, 7);
        assert_eq!(b.len(), 100);
        assert_eq!(b.capacity(), 128);
        assert_eq!(b.host_read(99), 7);
        a.release_u32(b);
        assert_eq!(a.pooled_bytes(), 4 * 128);
        // Same class, different logical length: the pooled buffer comes back.
        let c = a.acquire_u32(70, 3);
        assert_eq!(c.capacity(), 128);
        assert_eq!(c.len(), 70);
        assert_eq!(c.size_bytes(), 280);
        assert_eq!(a.pooled_bytes(), 0);
    }

    #[test]
    fn metered_sizes_match_fresh_allocation() {
        let mut a = DeviceArena::new();
        let warm = a.acquire_u64(40, 0);
        a.release_u64(warm);
        let reused = a.acquire_u64(33, u64::MAX);
        let fresh = BufU64::new(33, u64::MAX);
        assert_eq!(reused.len(), fresh.len());
        assert_eq!(reused.size_bytes(), fresh.size_bytes());
        assert_eq!(reused.host_read(32), fresh.host_read(32));
    }

    #[test]
    fn acquire_from_slice_matches_from_slice() {
        let mut a = DeviceArena::new();
        let data: Vec<u32> = (0..50).map(|i| i * 3).collect();
        let b = a.acquire_u32_from(&data);
        assert_eq!(b.to_vec(), data);
        a.release_u32(b);
        let b = a.acquire_u32_from(&data[..20]);
        assert_eq!(b.to_vec(), &data[..20]);
    }

    #[test]
    fn iota_initialization() {
        let mut a = DeviceArena::new();
        let b = a.acquire_u32_uninit(10);
        b.host_write_iota();
        assert_eq!(b.to_vec(), (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn const_cache_uploads_once() {
        let mut c = ConstCache::new();
        let mut builds = 0;
        for _ in 0..3 {
            let b = c.get_or_upload(1, "csr/adjacency", || {
                builds += 1;
                ConstBuf::from_slice(&[1, 2, 3])
            });
            assert_eq!(b.len(), 3);
        }
        assert_eq!(builds, 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.resident_bytes(), 12);
    }

    #[test]
    fn evict_drops_all_tags_of_a_key() {
        let mut c = ConstCache::new();
        c.get_or_upload(1, "a", || ConstBuf::from_slice(&[1]));
        c.get_or_upload(1, "b", || ConstBuf::from_slice(&[2]));
        c.get_or_upload(2, "a", || ConstBuf::from_slice(&[3]));
        c.evict(1);
        assert_eq!(c.len(), 1);
        let survived = c.get_or_upload(2, "a", || unreachable!("cached"));
        assert_eq!(survived.len(), 1);
    }

    #[test]
    fn thread_local_scratch_round_trip() {
        clear_scratch();
        let b = with_scratch(|s| s.arena.acquire_u32(500, 0));
        with_scratch(|s| s.arena.release_u32(b));
        let (consts, pooled) = scratch_footprint();
        assert_eq!(consts, 0);
        assert_eq!(pooled, 4 * 512);
        clear_scratch();
        assert_eq!(scratch_footprint(), (0, 0));
    }
}
