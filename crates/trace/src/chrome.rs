//! Chrome trace-event JSON exporter (Perfetto / `chrome://tracing`).
//!
//! The session's two timelines map onto two tracks of one process:
//! `tid 0` = "GPU (simulated)" carries sim-clock ranges plus `X`
//! (complete) events for kernel launches, memcpys, and sync reads;
//! `tid 1` = "CPU (wall)" carries wall-clock ranges. Timestamps are
//! microseconds, formatted with fixed 3-decimal precision so identical
//! sessions serialize to identical bytes (the golden trace test pins
//! this).
//!
//! The exporter streams straight into one output `String` — events are
//! not cloned or re-buffered (the `from_vec` audit for this PR: the only
//! allocation is the output itself).

use crate::json::{self, Value};
use crate::{Clock, Event, TraceSession};
use std::fmt::Write as _;

const PID: u32 = 1;

fn tid(clock: Clock) -> u32 {
    match clock {
        Clock::Sim => 0,
        Clock::Wall => 1,
    }
}

/// Serializes a session as Chrome trace-event JSON.
pub fn export(session: &TraceSession) -> String {
    // Rough size guess: ~120 bytes per event plus headers.
    let mut out = String::with_capacity(256 + session.events().len() * 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"name\":\"thread_name\",\"args\":{{\"name\":\"GPU (simulated)\"}}}},\n"
    ));
    out.push_str(&format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":1,\"name\":\"thread_name\",\"args\":{{\"name\":\"CPU (wall)\"}}}}"
    ));
    for ev in session.events() {
        out.push_str(",\n");
        write_event(&mut out, ev);
    }
    if session.dropped_events > 0 {
        out.push_str(",\n");
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"name\":\"dropped_events\",\"args\":{{\"count\":{}}}}}",
            session.dropped_events
        );
    }
    out.push_str("\n]}\n");
    out
}

fn write_ts(out: &mut String, us: f64) {
    // Fixed precision (nanosecond granularity) keeps serialization stable
    // across runs for the deterministic sim clock.
    let _ = write!(out, "{us:.3}");
}

fn write_event(out: &mut String, ev: &Event) {
    match ev {
        Event::Begin { name, clock, ts_us } => {
            let _ = write!(
                out,
                "{{\"ph\":\"B\",\"pid\":{PID},\"tid\":{},\"ts\":",
                tid(*clock)
            );
            write_ts(out, *ts_us);
            out.push_str(",\"name\":");
            json::write_escaped(out, name);
            out.push('}');
        }
        Event::End {
            clock,
            ts_us,
            metrics,
        } => {
            let _ = write!(
                out,
                "{{\"ph\":\"E\",\"pid\":{PID},\"tid\":{},\"ts\":",
                tid(*clock)
            );
            write_ts(out, *ts_us);
            if !metrics.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in metrics.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::write_escaped(out, k);
                    out.push(':');
                    json::write_f64(out, *v);
                }
                out.push('}');
            }
            out.push('}');
        }
        Event::Launch {
            name,
            ts_us,
            dur_us,
            metrics,
        } => {
            let _ = write!(out, "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":0,\"ts\":");
            write_ts(out, *ts_us);
            out.push_str(",\"dur\":");
            write_ts(out, *dur_us);
            out.push_str(",\"name\":");
            json::write_escaped(out, name);
            let _ = write!(
                out,
                ",\"args\":{{\"tasks\":{},\"coalesced_bytes\":{},\"gather_accesses\":{},\"atomics\":{},\"cas_retries\":{},\"accesses\":{},\"imbalance\":",
                metrics.tasks,
                metrics.coalesced_bytes,
                metrics.gather_accesses,
                metrics.atomics,
                metrics.cas_retries,
                metrics.accesses,
            );
            let _ = write!(out, "{:.3}", metrics.imbalance);
            out.push_str("}}");
        }
        Event::Memcpy {
            name,
            ts_us,
            dur_us,
            bytes,
        } => {
            let _ = write!(out, "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":0,\"ts\":");
            write_ts(out, *ts_us);
            out.push_str(",\"dur\":");
            write_ts(out, *dur_us);
            out.push_str(",\"name\":");
            json::write_escaped(out, name);
            let _ = write!(out, ",\"args\":{{\"bytes\":{bytes}}}}}");
        }
    }
}

/// Structural validation of an exported trace: parses the JSON, checks
/// every event carries the required keys, timestamps are non-decreasing
/// per track, `B`/`E` events balance with proper nesting, and complete
/// events have non-negative durations. Returns the number of trace
/// events checked.
pub fn validate(text: &str) -> Result<usize, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;
    // Per-tid state: (last timestamp, open B-span depth).
    let mut last_ts = [f64::NEG_INFINITY; 2];
    let mut depth = [0i64; 2];
    let mut checked = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        let tid = ev
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as usize;
        if tid >= 2 {
            return Err(format!("event {i}: unknown tid {tid}"));
        }
        let ts = ev
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if ts < last_ts[tid] {
            return Err(format!(
                "event {i}: ts {ts} decreases on tid {tid} (last {})",
                last_ts[tid]
            ));
        }
        last_ts[tid] = ts;
        match ph {
            "B" => {
                ev.get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: B without name"))?;
                depth[tid] += 1;
            }
            "E" => {
                depth[tid] -= 1;
                if depth[tid] < 0 {
                    return Err(format!("event {i}: E without matching B on tid {tid}"));
                }
            }
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: X without dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur {dur}"));
                }
                ev.get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: X without name"))?;
            }
            other => return Err(format!("event {i}: unknown ph {other:?}")),
        }
        checked += 1;
    }
    if depth.iter().any(|&d| d != 0) {
        return Err(format!("unbalanced B/E events: final depths {depth:?}"));
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{range, with_trace, LaunchMetrics};

    #[test]
    fn export_validates_and_contains_events() {
        let ((), session) = with_trace(|| {
            let _run = range!(sim: "run");
            crate::on_launch(
                "kernel1",
                LaunchMetrics {
                    tasks: 10,
                    atomics: 5,
                    sim_seconds: 2e-6,
                    imbalance: 1.5,
                    ..Default::default()
                },
            );
            crate::on_memcpy("memcpy_d2h", 4096, 1e-6);
        });
        let text = session.chrome_trace();
        let n = validate(&text).unwrap();
        assert_eq!(n, 4); // B, X launch, X memcpy, E
        assert!(text.contains("\"kernel1\""));
        assert!(text.contains("\"memcpy_d2h\""));
        assert!(text.contains("GPU (simulated)"));
    }

    #[test]
    fn validate_rejects_unbalanced_and_nonmonotonic() {
        let bad = r#"{"traceEvents":[{"ph":"B","pid":1,"tid":0,"ts":0,"name":"x"}]}"#;
        assert!(validate(bad).unwrap_err().contains("unbalanced"));
        let bad = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":0,"ts":5,"name":"x"},
            {"ph":"E","pid":1,"tid":0,"ts":1}]}"#;
        assert!(validate(bad).unwrap_err().contains("decreases"));
        let bad = r#"{"traceEvents":[{"ph":"E","pid":1,"tid":0,"ts":0}]}"#;
        assert!(validate(bad).unwrap_err().contains("without matching B"));
    }

    #[test]
    fn wall_and_sim_tracks_are_independent() {
        let ((), session) = with_trace(|| {
            let _w = range!(wall: "host-phase");
            let _s = range!(sim: "device-phase");
            crate::on_launch(
                "k",
                LaunchMetrics {
                    sim_seconds: 1e-6,
                    ..Default::default()
                },
            );
        });
        let text = session.chrome_trace();
        validate(&text).expect("mixed-clock trace validates");
        assert!(text.contains("\"tid\":1")); // wall track used
    }
}
