//! The machine-readable profile: deterministic per-kernel and per-round
//! aggregates of one trace session.
//!
//! Only *simulated*-clock quantities enter the profile (kernel seconds,
//! memcpy seconds, metered counters, round spans on the sim timeline, the
//! find-hop histogram) — wall-clock durations are excluded so that a
//! profile of a deterministic run serializes to identical bytes across
//! machines. This is what lets CI diff a fresh `bench_snapshot --trace`
//! profile against a checked-in fixture.

use crate::json::{self, Value};
use crate::{Clock, Event, HopHistogram, TraceSession, HOP_BUCKETS};
use std::fmt::Write as _;

/// Range name treated as an iteration boundary by the round aggregator.
pub const ROUND_SPAN: &str = "round";

/// Per-kernel aggregate over one session, in first-launch order.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel name as passed to `Device::launch`.
    pub name: String,
    /// Number of launches.
    pub launches: u64,
    /// Total simulated seconds across launches.
    pub sim_seconds: f64,
    /// Share of the session's total *launch* seconds (sync reads excluded,
    /// so shares match a fold over `Device::records()` exactly; 0 when no
    /// launches).
    pub share: f64,
    /// Total atomics across launches.
    pub atomics: u64,
    /// Total failed CAS attempts across launches.
    pub cas_retries: u64,
    /// Largest per-launch imbalance ratio observed.
    pub max_imbalance: f64,
    /// Launch-count-weighted mean imbalance ratio.
    pub mean_imbalance: f64,
}

/// One `"round"` span's snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundProfile {
    /// Zero-based round ordinal within the session.
    pub index: usize,
    /// Simulated seconds spent in the round (0 for wall-clock rounds —
    /// wall durations are nondeterministic and excluded by design).
    pub sim_seconds: f64,
    /// Metrics captured at the round's close (counter deltas plus
    /// explicit attaches), in capture order.
    pub metrics: Vec<(String, f64)>,
}

impl RoundProfile {
    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// Deterministic profile of one trace session.
#[must_use = "a Profile is the session's aggregate; export, print, or diff it"]
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// Per-kernel aggregates in first-launch order.
    pub kernels: Vec<KernelProfile>,
    /// Per-round snapshots in execution order.
    pub rounds: Vec<RoundProfile>,
    /// Total simulated kernel seconds (sum over launches).
    pub total_kernel_seconds: f64,
    /// Total simulated memcpy seconds (bulk copies and sync reads).
    pub total_memcpy_seconds: f64,
    /// Session-wide find-hop histogram.
    pub hops: HopHistogram,
}

impl Profile {
    /// Builds the profile from a finished session.
    pub fn from_session(session: &TraceSession) -> Self {
        let mut kernels: Vec<KernelProfile> = Vec::new();
        let mut total_kernel = 0.0f64;
        // Launch-only seconds, summed in event order: bit-identical to any
        // in-order fold over `Device::records()`, so `share` agrees exactly
        // with a record-scan share (`kernel_profile`'s historical path).
        let mut launch_total = 0.0f64;
        let mut total_memcpy = 0.0f64;
        let mut rounds = Vec::new();
        // Stack of (is_round, clock, open sim ts) mirroring Begin/End.
        let mut span_stack: Vec<(bool, Clock, f64)> = Vec::new();
        let mut sim_cursor = 0.0f64;
        for ev in session.events() {
            match ev {
                Event::Launch {
                    name,
                    dur_us,
                    metrics,
                    ..
                } => {
                    sim_cursor += dur_us;
                    total_kernel += metrics.sim_seconds;
                    launch_total += metrics.sim_seconds;
                    let k = match kernels.iter_mut().find(|k| k.name == *name) {
                        Some(k) => k,
                        None => {
                            kernels.push(KernelProfile {
                                name: name.clone(),
                                launches: 0,
                                sim_seconds: 0.0,
                                share: 0.0,
                                atomics: 0,
                                cas_retries: 0,
                                max_imbalance: 0.0,
                                mean_imbalance: 0.0,
                            });
                            kernels.last_mut().expect("just pushed")
                        }
                    };
                    k.launches += 1;
                    k.sim_seconds += metrics.sim_seconds;
                    k.atomics += metrics.atomics;
                    k.cas_retries += metrics.cas_retries;
                    k.max_imbalance = k.max_imbalance.max(metrics.imbalance);
                    // Accumulate; divided by launches at the end.
                    k.mean_imbalance += metrics.imbalance;
                }
                Event::Memcpy { name, dur_us, .. } => {
                    sim_cursor += dur_us;
                    if *name == "sync_read" {
                        total_kernel += dur_us / 1e6;
                    } else {
                        total_memcpy += dur_us / 1e6;
                    }
                }
                Event::Begin { name, clock, .. } => {
                    span_stack.push((name == ROUND_SPAN, *clock, sim_cursor));
                }
                Event::End { metrics, .. } => {
                    if let Some((is_round, clock, open_sim)) = span_stack.pop() {
                        if is_round {
                            rounds.push(RoundProfile {
                                index: rounds.len(),
                                sim_seconds: match clock {
                                    Clock::Sim => (sim_cursor - open_sim) / 1e6,
                                    Clock::Wall => 0.0,
                                },
                                metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
                            });
                        }
                    }
                }
            }
        }
        for k in &mut kernels {
            if k.launches > 0 {
                k.mean_imbalance /= k.launches as f64;
            }
            if launch_total > 0.0 {
                k.share = k.sim_seconds / launch_total;
            }
        }
        Profile {
            kernels,
            rounds,
            total_kernel_seconds: total_kernel,
            total_memcpy_seconds: total_memcpy,
            hops: *session.hop_histogram(),
        }
    }

    /// Looks up a kernel aggregate by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelProfile> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Serializes the profile as JSON (stable byte-for-byte for
    /// deterministic sessions; `f64`s use shortest round-trip form).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"ecl-trace-profile/1\",\n  \"total_kernel_seconds\": ");
        json::write_f64(&mut out, self.total_kernel_seconds);
        out.push_str(",\n  \"total_memcpy_seconds\": ");
        json::write_f64(&mut out, self.total_memcpy_seconds);
        out.push_str(",\n  \"kernels\": [");
        for (i, k) in self.kernels.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            json::write_escaped(&mut out, &k.name);
            let _ = write!(out, ", \"launches\": {}, \"sim_seconds\": ", k.launches);
            json::write_f64(&mut out, k.sim_seconds);
            out.push_str(", \"share\": ");
            json::write_f64(&mut out, k.share);
            let _ = write!(
                out,
                ", \"atomics\": {}, \"cas_retries\": {}, \"max_imbalance\": ",
                k.atomics, k.cas_retries
            );
            json::write_f64(&mut out, k.max_imbalance);
            out.push_str(", \"mean_imbalance\": ");
            json::write_f64(&mut out, k.mean_imbalance);
            out.push('}');
        }
        out.push_str("\n  ],\n  \"rounds\": [");
        for (i, r) in self.rounds.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(out, "    {{\"index\": {}, \"sim_seconds\": ", r.index);
            json::write_f64(&mut out, r.sim_seconds);
            out.push_str(", \"metrics\": {");
            for (j, (k, v)) in r.metrics.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                json::write_escaped(&mut out, k);
                out.push_str(": ");
                json::write_f64(&mut out, *v);
            }
            out.push_str("}}");
        }
        out.push_str("\n  ],\n  \"find_hops\": {\"calls\": ");
        let _ = write!(out, "{}", self.hops.calls);
        let _ = write!(out, ", \"total_hops\": {}", self.hops.total_hops);
        out.push_str(", \"buckets\": [");
        for (i, b) in self.hops.buckets.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}\n}\n");
        out
    }

    /// Parses a profile previously written by [`Profile::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        if doc.get("schema").and_then(Value::as_str) != Some("ecl-trace-profile/1") {
            return Err("not an ecl-trace-profile/1 document".into());
        }
        let num = |v: &Value, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing number `{key}`"))
        };
        let int = |v: &Value, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing integer `{key}`"))
        };
        let mut kernels = Vec::new();
        for k in doc
            .get("kernels")
            .and_then(Value::as_arr)
            .ok_or("missing kernels")?
        {
            kernels.push(KernelProfile {
                name: k
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("kernel missing name")?
                    .to_string(),
                launches: int(k, "launches")?,
                sim_seconds: num(k, "sim_seconds")?,
                share: num(k, "share")?,
                atomics: int(k, "atomics")?,
                cas_retries: int(k, "cas_retries")?,
                max_imbalance: num(k, "max_imbalance")?,
                mean_imbalance: num(k, "mean_imbalance")?,
            });
        }
        let mut rounds = Vec::new();
        for r in doc
            .get("rounds")
            .and_then(Value::as_arr)
            .ok_or("missing rounds")?
        {
            let metrics = match r.get("metrics") {
                Some(Value::Obj(m)) => m
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v)))
                    .collect(),
                _ => Vec::new(),
            };
            rounds.push(RoundProfile {
                index: int(r, "index")? as usize,
                sim_seconds: num(r, "sim_seconds")?,
                metrics,
            });
        }
        let mut hops = HopHistogram::default();
        if let Some(h) = doc.get("find_hops") {
            hops.calls = int(h, "calls")?;
            hops.total_hops = int(h, "total_hops")?;
            if let Some(buckets) = h.get("buckets").and_then(Value::as_arr) {
                for (i, b) in buckets.iter().take(HOP_BUCKETS).enumerate() {
                    hops.buckets[i] = b.as_u64().ok_or("bad bucket")?;
                }
            }
        }
        Ok(Profile {
            kernels,
            rounds,
            total_kernel_seconds: num(&doc, "total_kernel_seconds")?,
            total_memcpy_seconds: num(&doc, "total_memcpy_seconds")?,
            hops,
        })
    }

    /// Compares `self` (current) against `baseline`, flagging per-kernel
    /// and total simulated-time regressions above `threshold` (e.g.
    /// `0.05` = 5%). Kernels below 0.1% share are reported but never
    /// flagged (noise floor).
    pub fn diff(&self, baseline: &Profile, threshold: f64) -> DiffReport {
        let mut lines = Vec::new();
        let mut regressions = Vec::new();
        let rel = |new: f64, old: f64| -> f64 {
            if old > 0.0 {
                (new - old) / old
            } else if new > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        };
        let total_delta = rel(self.total_kernel_seconds, baseline.total_kernel_seconds);
        lines.push(format!(
            "total kernel seconds: {:.6e} -> {:.6e} ({:+.2}%)",
            baseline.total_kernel_seconds,
            self.total_kernel_seconds,
            total_delta * 100.0
        ));
        if total_delta > threshold {
            regressions.push(format!(
                "total kernel time regressed {:+.2}% (> {:.0}%)",
                total_delta * 100.0,
                threshold * 100.0
            ));
        }
        for k in &self.kernels {
            match baseline.kernel(&k.name) {
                None => lines.push(format!("kernel `{}`: new (not in baseline)", k.name)),
                Some(b) => {
                    let d = rel(k.sim_seconds, b.sim_seconds);
                    lines.push(format!(
                        "kernel `{}`: {:.6e} -> {:.6e} ({:+.2}%), launches {} -> {}",
                        k.name,
                        b.sim_seconds,
                        k.sim_seconds,
                        d * 100.0,
                        b.launches,
                        k.launches
                    ));
                    if d > threshold && k.share >= 1e-3 {
                        regressions.push(format!(
                            "kernel `{}` regressed {:+.2}% (> {:.0}%)",
                            k.name,
                            d * 100.0,
                            threshold * 100.0
                        ));
                    }
                }
            }
        }
        for b in &baseline.kernels {
            if self.kernel(&b.name).is_none() {
                lines.push(format!("kernel `{}`: removed (baseline only)", b.name));
            }
        }
        if self.rounds.len() != baseline.rounds.len() {
            lines.push(format!(
                "rounds: {} -> {}",
                baseline.rounds.len(),
                self.rounds.len()
            ));
        }
        for (cur, old) in self.rounds.iter().zip(baseline.rounds.iter()) {
            let (c, o) = (cur.metric("worklist_in"), old.metric("worklist_in"));
            if let (Some(c), Some(o)) = (c, o) {
                if c != o {
                    lines.push(format!("round {}: worklist_in {} -> {}", cur.index, o, c));
                }
            }
        }
        DiffReport { lines, regressions }
    }

    /// Pretty per-kernel table (§5.1-style shares), largest share first.
    pub fn kernel_table(&self) -> String {
        let mut rows: Vec<&KernelProfile> = self.kernels.iter().collect();
        rows.sort_by(|a, b| b.sim_seconds.total_cmp(&a.sim_seconds));
        let mut out = String::new();
        out.push_str(
            "kernel                      launches     sim ms   share   atomics  cas_retry  imb(max)\n",
        );
        for k in rows {
            let _ = writeln!(
                out,
                "{:<26} {:>9} {:>10.4} {:>6.1}% {:>9} {:>10} {:>9.2}",
                k.name,
                k.launches,
                k.sim_seconds * 1e3,
                k.share * 100.0,
                k.atomics,
                k.cas_retries,
                k.max_imbalance
            );
        }
        let launch_seconds: f64 = self.kernels.iter().map(|k| k.sim_seconds).sum();
        let _ = writeln!(
            out,
            "{:<26} {:>9} {:>10.4} {:>6.1}%",
            "TOTAL (launches)",
            self.kernels.iter().map(|k| k.launches).sum::<u64>(),
            launch_seconds * 1e3,
            100.0
        );
        // `total_kernel_seconds` additionally carries loop-control sync
        // reads (which stall the device like kernel time but are no kernel).
        let sync_seconds = self.total_kernel_seconds - launch_seconds;
        if sync_seconds > 0.0 {
            let _ = writeln!(
                out,
                "{:<26} {:>9} {:>10.4}",
                "sync_read (loop control)",
                "",
                sync_seconds * 1e3
            );
        }
        if self.total_memcpy_seconds > 0.0 {
            let _ = writeln!(
                out,
                "{:<26} {:>9} {:>10.4}",
                "memcpy (bulk)",
                "",
                self.total_memcpy_seconds * 1e3
            );
        }
        out
    }

    /// Pretty per-round table: sim time plus the captured metrics.
    pub fn round_table(&self) -> String {
        let mut out = String::new();
        if self.rounds.is_empty() {
            return out;
        }
        out.push_str("round     sim ms   metrics\n");
        for r in &self.rounds {
            let metrics = r
                .metrics
                .iter()
                .map(|(k, v)| {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        format!("{k}={}", *v as i64)
                    } else {
                        format!("{k}={v:.3}")
                    }
                })
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "{:>5} {:>10.4}   {}",
                r.index,
                r.sim_seconds * 1e3,
                metrics
            );
        }
        if self.hops.calls > 0 {
            let _ = writeln!(
                out,
                "find: {} calls, mean {:.2} hops, max bucket {} — histogram {:?}",
                self.hops.calls,
                self.hops.mean(),
                self.hops.max_bucket(),
                &self.hops.buckets[..=self.hops.max_bucket()]
            );
        }
        out
    }
}

/// Result of [`Profile::diff`].
#[must_use = "inspect regressions to decide pass/fail"]
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Human-readable per-kernel/per-round delta lines.
    pub lines: Vec<String>,
    /// Regressions above the threshold (empty = pass).
    pub regressions: Vec<String>,
}

impl DiffReport {
    /// True when no regression exceeded the threshold.
    pub fn is_pass(&self) -> bool {
        self.regressions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{range, with_trace, LaunchMetrics};

    fn sample_session() -> TraceSession {
        let ((), s) = with_trace(|| {
            let _run = range!(sim: "run");
            for round in 0..3u32 {
                let _r = range!(sim: "round");
                crate::attach("worklist_in", (100 >> round) as f64);
                crate::on_launch(
                    "kernel1",
                    LaunchMetrics {
                        tasks: 100,
                        atomics: 10,
                        cas_retries: 2,
                        sim_seconds: 3e-6,
                        imbalance: 2.0,
                        ..Default::default()
                    },
                );
                crate::on_launch(
                    "kernel2",
                    LaunchMetrics {
                        tasks: 100,
                        sim_seconds: 1e-6,
                        imbalance: 1.0,
                        ..Default::default()
                    },
                );
                crate::record_find_hops(2);
            }
            crate::on_memcpy("sync_read", 4, 5e-7);
            crate::on_memcpy("memcpy_d2h", 1 << 20, 1e-5);
        });
        s
    }

    #[test]
    fn profile_aggregates_kernels_and_rounds() {
        let p = sample_session().profile();
        assert_eq!(p.kernels.len(), 2);
        let k1 = p.kernel("kernel1").unwrap();
        assert_eq!(k1.launches, 3);
        assert!((k1.sim_seconds - 9e-6).abs() < 1e-18);
        assert_eq!(k1.atomics, 30);
        assert_eq!(k1.cas_retries, 6);
        assert!((k1.max_imbalance - 2.0).abs() < 1e-12);
        // total kernel = 12e-6 launches + 5e-7 sync read
        assert!((p.total_kernel_seconds - 1.25e-5).abs() < 1e-18);
        assert!((p.total_memcpy_seconds - 1e-5).abs() < 1e-18);
        // Share is over *launch* seconds (12e-6), not launch + sync read.
        assert!((k1.share - 9e-6 / 1.2e-5).abs() < 1e-12);
        assert_eq!(p.rounds.len(), 3);
        assert_eq!(p.rounds[0].metric("worklist_in"), Some(100.0));
        assert_eq!(p.rounds[2].metric("worklist_in"), Some(25.0));
        assert!((p.rounds[0].sim_seconds - 4e-6).abs() < 1e-18);
        assert_eq!(p.hops.calls, 3);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let p = sample_session().profile();
        let text = p.to_json();
        let back = Profile::from_json(&text).unwrap();
        assert_eq!(back.kernels, p.kernels);
        assert_eq!(back.total_kernel_seconds, p.total_kernel_seconds);
        assert_eq!(back.total_memcpy_seconds, p.total_memcpy_seconds);
        assert_eq!(back.hops, p.hops);
        assert_eq!(back.rounds.len(), p.rounds.len());
        for (a, b) in back.rounds.iter().zip(p.rounds.iter()) {
            assert_eq!(a.sim_seconds, b.sim_seconds);
            // Object keys sort on parse; compare as sets.
            let mut am = a.metrics.clone();
            let mut bm = b.metrics.clone();
            am.sort_by(|x, y| x.0.cmp(&y.0));
            bm.sort_by(|x, y| x.0.cmp(&y.0));
            assert_eq!(am, bm);
        }
        // Re-serializing the round-tripped struct must be stable once keys
        // are in parsed order.
        assert_eq!(Profile::from_json(&back.to_json()).unwrap(), back);
    }

    #[test]
    fn diff_flags_regressions_over_threshold() {
        let base = sample_session().profile();
        let mut cur = base.clone();
        cur.kernels[0].sim_seconds *= 1.10;
        cur.total_kernel_seconds += base.kernels[0].sim_seconds * 0.10;
        let report = cur.diff(&base, 0.05);
        assert!(!report.is_pass());
        assert!(report.regressions.iter().any(|r| r.contains("kernel1")));
        // Identical profiles pass.
        assert!(base.diff(&base, 0.05).is_pass());
        // Improvements pass.
        let mut faster = base.clone();
        faster.kernels[0].sim_seconds *= 0.5;
        faster.total_kernel_seconds -= base.kernels[0].sim_seconds * 0.5;
        assert!(faster.diff(&base, 0.05).is_pass());
    }

    #[test]
    fn tables_render() {
        let p = sample_session().profile();
        let kt = p.kernel_table();
        assert!(kt.contains("kernel1"));
        assert!(kt.contains("TOTAL"));
        let rt = p.round_table();
        assert!(rt.contains("worklist_in=100"));
        assert!(rt.contains("find: 3 calls"));
    }
}
