//! A minimal JSON reader/writer, just enough for the exporters.
//!
//! The workspace builds offline with no serde; the trace formats (Chrome
//! trace-event JSON and the profile schema) are small and flat, so a
//! ~150-line recursive-descent parser and an escaping writer keep the
//! crate dependency-free. Numbers are `f64` (all values we serialize fit
//! without loss: counters stay below 2^53 on tiny/benchmark scales).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, held as `f64`.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is not preserved (keys are sorted),
    /// which is fine for our schemas.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `f64` when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64` when it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `&str` when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice when it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{s}` at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let ch = rest.chars().next().expect("nonempty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` in Rust's shortest round-trip representation, which
/// is also valid JSON for every finite value (no exponent is emitted for
/// the magnitudes we produce; non-finite values are clamped to 0, which
/// our schemas never contain).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a":[1,2.5,-3e-2],"b":"x\n\"y\"","c":true,"d":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-3e-2)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{}x").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let original = "line1\nline2\t\"quoted\" \\slash\u{0001}";
        let mut buf = String::new();
        write_escaped(&mut buf, original);
        let parsed = parse(&buf).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn f64_round_trips_through_text() {
        for v in [0.0, 1.0, 0.1234567890123, 11.174, 1e-9, 123456.789] {
            let mut buf = String::new();
            write_f64(&mut buf, v);
            assert_eq!(parse(&buf).unwrap().as_f64(), Some(v));
        }
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse(r#""héllo → wörld""#).unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
        let v = parse(r#""\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
