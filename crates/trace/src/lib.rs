//! `ecl-trace`: an nsys-style tracing and profiling layer for the
//! simulator and CPU backends.
//!
//! The collector mirrors the sanitizer's design (`ecl_gpu_sim::sanitize`):
//!
//! * **Zero cost when off.** The hot-path gate is a const-initialized
//!   thread-local `Cell<bool>` ([`active`]); instrumentation points pay one
//!   predictable branch when no session is installed. Nothing on
//!   `TaskCtx` is widened and no metered counter changes, so golden
//!   counters are bit-identical with tracing on or off.
//! * **Scoped activation.** [`with_trace`] installs a fresh session on the
//!   current thread, runs a closure, and returns the finished
//!   [`TraceSession`]. Pre-existing sessions (including the ambient one)
//!   are suspended for the scope and restored afterwards, even on unwind.
//! * **Ambient activation.** Setting `ECL_TRACE=1` materializes a session
//!   lazily at the first instrumentation point; [`take_ambient`] collects
//!   it (the bench runner uses this to honor the env var without a
//!   `--trace` flag).
//!
//! Two clocks coexist in one session:
//!
//! * [`Clock::Sim`] — the *simulated* device timeline, in microseconds
//!   from session start. It advances only when the device reports a
//!   kernel launch, a bulk memcpy, or a loop-control sync read; host work
//!   between launches is invisible to it, exactly like a CUDA stream
//!   timeline in nsys.
//! * [`Clock::Wall`] — host monotonic time since session start, used by
//!   the CPU backend and host-side phases (filter planning, CSR upload).
//!
//! Ranges are NVTX-style: `let _r = ecl_trace::range!(sim: "kernel1");`
//! opens a span closed on drop. At close, each span is annotated with the
//! *delta* of session-wide counters accumulated inside it (launches,
//! atomics, CAS retries, find calls/hops) plus any explicit
//! [`attach`]ed metrics (e.g. worklist sizes) — this is what gives the
//! per-round snapshots without threading state through the algorithms.

#![forbid(unsafe_code)]
// Belt under the forbid above: if an audited `unsafe` block is ever
// admitted here, its unsafe operations must still be spelled out inside
// nested `unsafe {}` with their own SAFETY justification (the ecl-lint
// unsafe-audit rule checks both).
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::sync::OnceLock;
use std::time::Instant;

pub mod chrome;
pub mod json;
pub mod profile;

pub use profile::{DiffReport, KernelProfile, Profile, RoundProfile};

/// Cap on recorded events per session; a runaway loop under ambient
/// tracing degrades to counting ([`TraceSession::dropped_events`]) instead
/// of ballooning memory.
pub const MAX_EVENTS: usize = 1 << 20;

/// Number of find-hop histogram buckets: bucket `i` counts find calls
/// that walked exactly `i` parent links, the last bucket everything at or
/// beyond `HOP_BUCKETS - 1`.
pub const HOP_BUCKETS: usize = 17;

/// Which timeline a range is stamped against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Simulated device time (advanced by launches, memcpys, sync reads).
    Sim,
    /// Host monotonic time since session start.
    Wall,
}

/// Histogram of parent-chain lengths walked by `find()` calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopHistogram {
    /// `buckets[i]` = calls with exactly `i` hops; last bucket is `>= 16`.
    pub buckets: [u64; HOP_BUCKETS],
    /// Sum of hops over all calls.
    pub total_hops: u64,
    /// Number of recorded find calls.
    pub calls: u64,
}

impl Default for HopHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; HOP_BUCKETS],
            total_hops: 0,
            calls: 0,
        }
    }
}

impl HopHistogram {
    /// Records one find call that walked `hops` parent links.
    #[inline]
    pub fn record(&mut self, hops: u32) {
        let b = (hops as usize).min(HOP_BUCKETS - 1);
        self.buckets[b] += 1;
        self.total_hops += hops as u64;
        self.calls += 1;
    }

    /// Mean hops per call (0 when no calls were recorded).
    pub fn mean(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.calls as f64
        }
    }

    /// Index of the highest non-empty bucket (0 when empty).
    pub fn max_bucket(&self) -> usize {
        self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &HopHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.total_hops += other.total_hops;
        self.calls += other.calls;
    }
}

/// Per-launch metrics the device reports to the tracer, derived from the
/// already-metered `LaunchStats` plus the launch's simulated duration.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LaunchMetrics {
    /// Tasks (threads or warps) executed.
    pub tasks: u64,
    /// Bytes moved by coalesced accesses.
    pub coalesced_bytes: u64,
    /// Random (gather/scatter) accesses.
    pub gather_accesses: u64,
    /// Atomic operations issued.
    pub atomics: u64,
    /// Failed CAS attempts.
    pub cas_retries: u64,
    /// Access instructions issued.
    pub accesses: u64,
    /// Simulated duration of the launch in seconds.
    pub sim_seconds: f64,
    /// Max-task over mean-task byte-equivalent traffic — the warp/task
    /// imbalance ratio (1.0 = perfectly balanced; large = one task
    /// dominates the critical path). 1.0 for empty launches.
    pub imbalance: f64,
}

/// One recorded trace event, in session order.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Range open.
    Begin {
        /// Range name.
        name: Cow<'static, str>,
        /// Timeline the range is stamped on.
        clock: Clock,
        /// Open timestamp in microseconds on that timeline.
        ts_us: f64,
    },
    /// Range close (matches the innermost unclosed [`Event::Begin`]).
    End {
        /// Timeline of the matching open.
        clock: Clock,
        /// Close timestamp in microseconds on that timeline.
        ts_us: f64,
        /// Metrics snapshotted at close: counter deltas over the span
        /// plus explicitly [`attach`]ed values.
        metrics: Vec<(Cow<'static, str>, f64)>,
    },
    /// A kernel launch (complete event on the simulated timeline).
    Launch {
        /// Kernel name.
        name: String,
        /// Launch start in simulated microseconds.
        ts_us: f64,
        /// Simulated duration in microseconds.
        dur_us: f64,
        /// The launch's metered counters.
        metrics: LaunchMetrics,
    },
    /// A bulk host↔device copy or loop-control sync read (complete event
    /// on the simulated timeline).
    Memcpy {
        /// `"memcpy_h2d"`, `"memcpy_d2h"`, or `"sync_read"`.
        name: &'static str,
        /// Start in simulated microseconds.
        ts_us: f64,
        /// Simulated duration in microseconds.
        dur_us: f64,
        /// Bytes moved (4 for sync reads).
        bytes: u64,
    },
}

impl Event {
    /// The timeline this event belongs to.
    pub fn clock(&self) -> Clock {
        match self {
            Event::Begin { clock, .. } | Event::End { clock, .. } => *clock,
            Event::Launch { .. } | Event::Memcpy { .. } => Clock::Sim,
        }
    }
}

/// Aggregate of one wall-clock span name over a session (see
/// [`TraceSession::wall_breakdown`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WallKernel {
    /// Span name as opened by `range!(wall: ...)`.
    pub name: String,
    /// Number of times a span with this name closed.
    pub calls: u64,
    /// Inclusive wall seconds (nested spans counted).
    pub total_seconds: f64,
    /// Exclusive wall seconds (time not inside any nested wall span).
    pub self_seconds: f64,
}

/// Session-wide running totals used for per-span delta metrics.
#[derive(Debug, Clone, Copy, Default)]
struct Totals {
    launches: u64,
    atomics: u64,
    cas_retries: u64,
    find_calls: u64,
    find_hops: u64,
}

/// An open range on the span stack. The name lives only in the
/// [`Event::Begin`] record; the close event is positional.
#[derive(Debug)]
struct Span {
    clock: Clock,
    base: Totals,
    attached: Vec<(Cow<'static, str>, f64)>,
}

#[derive(Debug)]
struct TraceState {
    start: Instant,
    sim_us: f64,
    events: Vec<Event>,
    open: Vec<Span>,
    totals: Totals,
    hops: HopHistogram,
    dropped: u64,
}

impl TraceState {
    fn new() -> Self {
        Self {
            start: Instant::now(),
            sim_us: 0.0,
            events: Vec::new(),
            open: Vec::new(),
            totals: Totals::default(),
            hops: HopHistogram::default(),
            dropped: 0,
        }
    }

    fn wall_us(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e6
    }

    fn ts(&self, clock: Clock) -> f64 {
        match clock {
            Clock::Sim => self.sim_us,
            Clock::Wall => self.wall_us(),
        }
    }

    fn push(&mut self, ev: Event) {
        if self.events.len() < MAX_EVENTS {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    fn close_top(&mut self) {
        let Some(span) = self.open.pop() else { return };
        let ts = self.ts(span.clock);
        let mut metrics = Vec::new();
        let d = &self.totals;
        let b = &span.base;
        for (name, v) in [
            ("launches", d.launches - b.launches),
            ("atomics", d.atomics - b.atomics),
            ("cas_retries", d.cas_retries - b.cas_retries),
            ("find_calls", d.find_calls - b.find_calls),
            ("find_hops", d.find_hops - b.find_hops),
        ] {
            if v > 0 {
                metrics.push((Cow::Borrowed(name), v as f64));
            }
        }
        metrics.extend(span.attached);
        self.push(Event::End {
            clock: span.clock,
            ts_us: ts,
            metrics,
        });
    }

    fn finish(mut self) -> TraceSession {
        while !self.open.is_empty() {
            self.close_top();
        }
        // Bridge the session totals into ecl-metrics: a metrics session that
        // wraps one or more trace sessions sees the same aggregates the
        // trace profile exports, under stable `ecl.trace.*` names.
        if ecl_metrics::active() {
            ecl_metrics::counter!(TRACE_LAUNCHES, self.totals.launches);
            ecl_metrics::counter!(TRACE_ATOMICS, self.totals.atomics);
            ecl_metrics::counter!(TRACE_CAS_RETRIES, self.totals.cas_retries);
            ecl_metrics::counter!(TRACE_FIND_CALLS, self.totals.find_calls);
            ecl_metrics::counter!(TRACE_FIND_HOPS, self.totals.find_hops);
            ecl_metrics::counter!(TRACE_SIM_US, self.sim_us.round().max(0.0) as u64);
        }
        TraceSession {
            events: self.events,
            hops: self.hops,
            dropped_events: self.dropped,
            sim_us: self.sim_us,
        }
    }
}

/// The finished result of a tracing session: the event log plus
/// session-wide aggregates. Obtained from [`with_trace`] or
/// [`take_ambient`].
#[must_use = "a TraceSession holds the collected trace; export or inspect it"]
#[derive(Debug, Clone)]
pub struct TraceSession {
    events: Vec<Event>,
    hops: HopHistogram,
    /// Events beyond [`MAX_EVENTS`], counted but not kept.
    pub dropped_events: u64,
    sim_us: f64,
}

impl TraceSession {
    /// The recorded events, in session order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Session-wide find-hop histogram.
    pub fn hop_histogram(&self) -> &HopHistogram {
        &self.hops
    }

    /// Aggregates the **wall-clock** spans by name: inclusive and exclusive
    /// (self) seconds per span name, in first-seen order. This is the
    /// host-side per-kernel cost table the bench snapshot embeds; it is
    /// deliberately *not* part of [`Profile`]'s serialized JSON, which must
    /// stay byte-stable on deterministic sim-only runs.
    ///
    /// Simulated spans are walked for nesting (an `End` is positional and
    /// may close either clock) but contribute no wall time; a wall span
    /// nested through a sim span still credits its nearest wall ancestor.
    pub fn wall_breakdown(&self) -> Vec<WallKernel> {
        struct Frame {
            name: Cow<'static, str>,
            wall: bool,
            begin_us: f64,
            child_us: f64,
        }
        let mut out: Vec<WallKernel> = Vec::new();
        let mut stack: Vec<Frame> = Vec::new();
        for ev in &self.events {
            match ev {
                Event::Begin { name, clock, ts_us } => stack.push(Frame {
                    name: name.clone(),
                    wall: *clock == Clock::Wall,
                    begin_us: *ts_us,
                    child_us: 0.0,
                }),
                Event::End { ts_us, .. } => {
                    // Positional close; a missing Begin (dropped past
                    // MAX_EVENTS) leaves the stack untouched.
                    let Some(f) = stack.pop() else { continue };
                    if f.wall {
                        let total_us = ts_us - f.begin_us;
                        let k = match out.iter_mut().find(|k| k.name == f.name) {
                            Some(k) => k,
                            None => {
                                out.push(WallKernel {
                                    name: f.name.to_string(),
                                    calls: 0,
                                    total_seconds: 0.0,
                                    self_seconds: 0.0,
                                });
                                out.last_mut().expect("just pushed")
                            }
                        };
                        k.calls += 1;
                        k.total_seconds += total_us / 1e6;
                        k.self_seconds += (total_us - f.child_us) / 1e6;
                        if let Some(parent) = stack.last_mut() {
                            parent.child_us += total_us;
                        }
                    } else if let Some(parent) = stack.last_mut() {
                        // Sim spans take no wall time themselves; pass any
                        // nested wall time through to the enclosing span.
                        parent.child_us += f.child_us;
                    }
                }
                Event::Launch { .. } | Event::Memcpy { .. } => {}
            }
        }
        out
    }

    /// Final simulated timestamp (microseconds): total device time the
    /// session observed.
    pub fn sim_us(&self) -> f64 {
        self.sim_us
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Exports the session as Chrome trace-event JSON (loadable in
    /// Perfetto / `chrome://tracing`).
    pub fn chrome_trace(&self) -> String {
        chrome::export(self)
    }

    /// Builds the deterministic machine-readable profile (per-kernel and
    /// per-round aggregates over the simulated timeline).
    pub fn profile(&self) -> Profile {
        Profile::from_session(self)
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<Option<TraceState>> = const { RefCell::new(None) };
}

/// True when a trace session is active on this thread *right now* — the
/// hot-path gate: a const-initialized thread-local read, one predictable
/// branch when off.
#[inline]
pub fn active() -> bool {
    ACTIVE.get()
}

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("ECL_TRACE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// True when a session is (or, via `ECL_TRACE`, would be) active on this
/// thread. Instrumentation points that may *create* the ambient session
/// gate on this; per-access hot paths gate on [`active`].
#[inline]
pub fn enabled() -> bool {
    ACTIVE.get() || env_enabled()
}

/// Runs `f` against the session state, materializing the ambient
/// `ECL_TRACE` session first if needed. `None` when tracing is off.
fn with_state<R>(f: impl FnOnce(&mut TraceState) -> R) -> Option<R> {
    if !ACTIVE.get() {
        if !env_enabled() {
            return None;
        }
        STATE.with(|s| *s.borrow_mut() = Some(TraceState::new()));
        ACTIVE.set(true);
    }
    STATE.with(|s| s.borrow_mut().as_mut().map(f))
}

/// Restores the previous session (if any) when a scoped session exits,
/// including on unwind.
struct ScopeGuard {
    prev: Option<TraceState>,
    taken: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.taken {
            let prev = self.prev.take();
            ACTIVE.set(prev.is_some());
            STATE.with(|s| *s.borrow_mut() = prev);
        }
    }
}

/// Runs `f` under a fresh trace session on this thread and returns its
/// result together with the finished [`TraceSession`]. A pre-existing
/// session (including the ambient `ECL_TRACE` one) is suspended for the
/// scope and restored afterwards.
pub fn with_trace<R>(f: impl FnOnce() -> R) -> (R, TraceSession) {
    let prev = STATE.with(|s| s.borrow_mut().take());
    STATE.with(|s| *s.borrow_mut() = Some(TraceState::new()));
    ACTIVE.set(true);
    let mut guard = ScopeGuard { prev, taken: false };
    let out = f();
    let finished = STATE
        .with(|s| s.borrow_mut().take())
        .expect("trace session vanished mid-scope");
    guard.taken = true;
    let prev = guard.prev.take();
    ACTIVE.set(prev.is_some());
    STATE.with(|s| *s.borrow_mut() = prev);
    (out, finished.finish())
}

/// Takes the ambient session (materialized by `ECL_TRACE=1`) off this
/// thread, finishing it. `None` when no session is active.
pub fn take_ambient() -> Option<TraceSession> {
    if !ACTIVE.get() {
        return None;
    }
    let state = STATE.with(|s| s.borrow_mut().take())?;
    ACTIVE.set(false);
    Some(state.finish())
}

// ---------------------------------------------------------------------------
// Instrumentation hooks.

/// Opens a named range on `clock`. Prefer the RAII [`range!`] macro; this
/// explicit form exists for non-lexical spans and must be balanced by
/// [`close_range`] (the `xtask lint-metering` check enforces per-file
/// balance in kernel code).
pub fn open_range(name: impl Into<Cow<'static, str>>, clock: Clock) {
    let name = name.into();
    with_state(|s| {
        let ts = s.ts(clock);
        s.push(Event::Begin {
            name,
            clock,
            ts_us: ts,
        });
        s.open.push(Span {
            clock,
            base: s.totals,
            attached: Vec::new(),
        });
    });
}

/// Closes the innermost open range, snapshotting its metric deltas.
/// No-op when tracing is off or no range is open.
pub fn close_range() {
    if !active() {
        return;
    }
    with_state(|s| s.close_top());
}

/// Attaches a named metric to the innermost open range (reported in its
/// close snapshot). No-op when tracing is off.
#[inline]
pub fn attach(name: &'static str, value: f64) {
    if !active() {
        return;
    }
    with_state(|s| {
        if let Some(span) = s.open.last_mut() {
            span.attached.push((Cow::Borrowed(name), value));
        }
    });
}

/// Records one `find()` call that walked `hops` parent links. No-op when
/// tracing is off — callers keep the hop count in a register and pay one
/// thread-local read here.
#[inline]
pub fn record_find_hops(hops: u32) {
    if !active() {
        return;
    }
    with_state(|s| {
        s.hops.record(hops);
        s.totals.find_calls += 1;
        s.totals.find_hops += hops as u64;
    });
}

/// Device hook: records a kernel launch and advances the simulated clock
/// by its duration. Called by `Device::launch`/`launch_warps`.
pub fn on_launch(name: &str, m: LaunchMetrics) {
    with_state(|s| {
        let ts = s.sim_us;
        let dur = m.sim_seconds * 1e6;
        s.push(Event::Launch {
            name: name.to_string(),
            ts_us: ts,
            dur_us: dur,
            metrics: m,
        });
        s.sim_us += dur;
        s.totals.launches += 1;
        s.totals.atomics += m.atomics;
        s.totals.cas_retries += m.cas_retries;
    });
}

/// Device hook: records a bulk copy or sync read and advances the
/// simulated clock. `name` is `"memcpy_h2d"`, `"memcpy_d2h"`, or
/// `"sync_read"`.
pub fn on_memcpy(name: &'static str, bytes: u64, seconds: f64) {
    with_state(|s| {
        let ts = s.sim_us;
        let dur = seconds * 1e6;
        s.push(Event::Memcpy {
            name,
            ts_us: ts,
            dur_us: dur,
            bytes,
        });
        s.sim_us += dur;
    });
}

/// A guard that closes its range on drop. Construct via [`range!`].
#[must_use = "binding the guard keeps the range open for the scope; an unbound guard closes immediately"]
#[derive(Debug)]
pub struct RangeGuard {
    armed: bool,
}

impl RangeGuard {
    /// Opens a range when tracing is enabled; returns a disarmed guard
    /// otherwise (so a session starting mid-scope sees no spurious close).
    pub fn open(name: impl Into<Cow<'static, str>>, clock: Clock) -> Self {
        if !enabled() {
            return Self { armed: false };
        }
        open_range(name, clock);
        Self { armed: true }
    }
}

impl Drop for RangeGuard {
    fn drop(&mut self) {
        if self.armed {
            close_range();
        }
    }
}

/// Opens an NVTX-style RAII range: `let _r = range!(sim: "kernel1");`
/// (simulated clock), `range!(wall: "populate")` or bare `range!("x")`
/// (host wall clock). The guard must be bound to a name — an unbound
/// temporary closes the range immediately.
#[macro_export]
macro_rules! range {
    (sim: $name:expr) => {
        $crate::RangeGuard::open($name, $crate::Clock::Sim)
    };
    (wall: $name:expr) => {
        $crate::RangeGuard::open($name, $crate::Clock::Wall)
    };
    ($name:expr) => {
        $crate::RangeGuard::open($name, $crate::Clock::Wall)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hooks_are_noops() {
        assert!(!active());
        record_find_hops(5);
        attach("x", 1.0);
        close_range();
        let _g = RangeGuard::open("dead", Clock::Wall);
        assert!(!active());
    }

    #[test]
    fn with_trace_collects_ranges_and_launches() {
        let ((), session) = with_trace(|| {
            let _run = range!(sim: "run");
            on_launch(
                "k1",
                LaunchMetrics {
                    tasks: 4,
                    atomics: 2,
                    sim_seconds: 1e-6,
                    imbalance: 1.0,
                    ..Default::default()
                },
            );
            attach("worklist", 42.0);
        });
        assert!(!active());
        let evs = session.events();
        assert_eq!(evs.len(), 3);
        assert!(
            matches!(&evs[0], Event::Begin { name, clock: Clock::Sim, ts_us } if name == "run" && *ts_us == 0.0)
        );
        assert!(
            matches!(&evs[1], Event::Launch { name, ts_us, .. } if name == "k1" && *ts_us == 0.0)
        );
        let Event::End { ts_us, metrics, .. } = &evs[2] else {
            panic!("expected End, got {:?}", evs[2]);
        };
        assert_eq!(*ts_us, 1.0); // 1 µs of simulated time
        assert!(metrics.contains(&(Cow::Borrowed("launches"), 1.0)));
        assert!(metrics.contains(&(Cow::Borrowed("atomics"), 2.0)));
        assert!(metrics.contains(&(Cow::Borrowed("worklist"), 42.0)));
        assert_eq!(session.sim_us(), 1.0);
    }

    #[test]
    fn span_deltas_are_scoped_to_the_span() {
        let ((), session) = with_trace(|| {
            on_launch(
                "outside",
                LaunchMetrics {
                    atomics: 100,
                    sim_seconds: 0.0,
                    ..Default::default()
                },
            );
            let _r = range!(sim: "round");
            on_launch(
                "inside",
                LaunchMetrics {
                    atomics: 3,
                    sim_seconds: 0.0,
                    ..Default::default()
                },
            );
        });
        let Event::End { metrics, .. } = session.events().last().unwrap() else {
            panic!("expected trailing End");
        };
        assert!(metrics.contains(&(Cow::Borrowed("atomics"), 3.0)));
        assert!(metrics.contains(&(Cow::Borrowed("launches"), 1.0)));
    }

    #[test]
    fn nested_sessions_suspend_and_restore() {
        let ((), outer) = with_trace(|| {
            on_launch("a", LaunchMetrics::default());
            let ((), inner) = with_trace(|| {
                on_launch("b", LaunchMetrics::default());
            });
            assert_eq!(inner.events().len(), 1);
            assert!(active(), "outer session restored");
            on_launch("c", LaunchMetrics::default());
        });
        let names: Vec<_> = outer
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Launch { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, ["a", "c"]);
    }

    #[test]
    fn hop_histogram_records_and_saturates() {
        let mut h = HopHistogram::default();
        h.record(0);
        h.record(3);
        h.record(100);
        assert_eq!(h.calls, 3);
        assert_eq!(h.total_hops, 103);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[HOP_BUCKETS - 1], 1);
        assert_eq!(h.max_bucket(), HOP_BUCKETS - 1);
        assert!((h.mean() - 103.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wall_breakdown_aggregates_self_and_total() {
        let ((), session) = with_trace(|| {
            let _outer = range!(wall: "solve");
            for _ in 0..2 {
                let _inner = range!(wall: "kernel1");
                std::hint::black_box(0u64);
            }
            // A sim span nested in the wall span must not break the
            // wall-ancestor crediting.
            let _sim = range!(sim: "round");
            let _deep = range!(wall: "kernel2");
        });
        let bd = session.wall_breakdown();
        let names: Vec<_> = bd.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(names, ["kernel1", "kernel2", "solve"]);
        let solve = bd.iter().find(|k| k.name == "solve").unwrap();
        let k1 = bd.iter().find(|k| k.name == "kernel1").unwrap();
        let k2 = bd.iter().find(|k| k.name == "kernel2").unwrap();
        assert_eq!(k1.calls, 2);
        assert_eq!(solve.calls, 1);
        assert!(solve.total_seconds >= k1.total_seconds + k2.total_seconds);
        // Self time excludes every nested wall span, including kernel2
        // reached through the sim span.
        let expect_self = solve.total_seconds - k1.total_seconds - k2.total_seconds;
        assert!((solve.self_seconds - expect_self).abs() < 1e-9);
        assert!(bd.iter().all(|k| k.self_seconds >= 0.0));
    }

    #[test]
    fn dangling_open_ranges_are_closed_at_finish() {
        let ((), session) = with_trace(|| {
            open_range("left-open", Clock::Sim);
        });
        assert_eq!(session.events().len(), 2);
        assert!(matches!(session.events()[1], Event::End { .. }));
    }

    #[test]
    fn unbound_range_guard_closes_immediately() {
        let ((), session) = with_trace(|| {
            {
                let _r = range!(sim: "scoped");
            }
            on_launch("after", LaunchMetrics::default());
        });
        assert!(
            matches!(&session.events()[1], Event::End { .. }),
            "range closed before the launch"
        );
    }
}
