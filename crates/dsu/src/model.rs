//! Exhaustive interleaving checker for [`crate::AtomicDsu`].
//!
//! Compiled only under `--cfg ecl_model`. In that configuration
//! [`crate::atomic`] swaps its `std::sync::atomic` imports for the
//! [`shim`] types below, which route every atomic operation through a
//! cooperative scheduler: each worker thread parks at a *yield point*
//! immediately before each load/store/CAS, and a controller thread grants
//! the floor to exactly one runnable worker per step. [`explore`] then
//! drives a depth-first search over every such grant sequence — an
//! exhaustive enumeration of the sequentially-consistent interleavings of
//! the scenario — replaying a decision prefix and branching on the last
//! step with an untried choice until the schedule tree is exhausted.
//!
//! # What is checked on every explored schedule
//!
//! * **Linearizability of the final partition** — the scenario's `check`
//!   closure runs after all workers join and typically compares the
//!   quiescent partition against [`crate::SeqDsu`] over the same edge
//!   multiset (any interleaving of correct unions must yield the unique
//!   reference partition).
//! * **Dynamic memory-ordering contracts** — exploration itself is
//!   sequentially consistent (the shim executes every operation with
//!   `SeqCst`), so weaker-than-declared orderings cannot be *observed*
//!   directly; instead the shim checks the *declared* orderings against
//!   the crate's documented protocol:
//!   - every `compare_exchange` must publish with at least
//!     `AcqRel`/`Acquire` (the union CAS is the only release point that
//!     makes a merge visible to the reservation checks downstream), and
//!   - every relaxed `store` must be **root-preserving**: the stored
//!     parent may only move a node *up* its own ancestor chain
//!     (`new >= old` under union-by-index), which is exactly the benign
//!     race the halving comments claim.
//!
//!   The `--cfg ecl_model_weak_union` test configuration weakens the
//!   union CAS to `Relaxed`; the contract check turns that into a
//!   violation on every schedule that attempts a merge, which the test
//!   suite asserts.

use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// One global exploration at a time: the shim's thread-locals are
/// per-worker, but pinned schedule counts assume no foreign threads
/// interleave with a scenario, so explorations from concurrently running
/// `#[test]`s serialize here.
fn explore_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

thread_local! {
    /// Set while the current thread is a registered scenario worker; shim
    /// operations consult this to find their gate. Unset (e.g. on the
    /// controller thread, or in ordinary unit tests compiled under
    /// `ecl_model`) the shim executes operations directly, unscheduled.
    static WORKER: std::cell::RefCell<Option<(Arc<Gate>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Worker status as seen by the controller.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Running user code between yield points.
    Running,
    /// Parked at a yield point, waiting for the floor.
    Parked,
    /// Body returned.
    Finished,
}

/// One scheduling decision: `(chosen index, number of runnable workers)`.
type Decision = (usize, usize);

struct GateState {
    status: Vec<Status>,
    /// The worker currently holding the floor, if any.
    active: Option<usize>,
    /// Decisions taken so far this run.
    trace: Vec<Decision>,
    /// Decision prefix to replay (DFS backtracking state).
    prefix: Vec<usize>,
    /// Contract violations observed this run.
    violations: Vec<String>,
}

/// Cooperative gate serializing scenario workers: one runnable worker holds
/// the floor at a time, and the controller picks who goes next.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl Gate {
    fn new(workers: usize, prefix: Vec<usize>) -> Self {
        Self {
            state: Mutex::new(GateState {
                status: vec![Status::Running; workers],
                active: None,
                trace: Vec::new(),
                prefix,
                violations: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, GateState> {
        self.state.lock().expect("model gate poisoned")
    }

    /// Parks the calling worker until the controller grants it the floor.
    /// Called by the shim immediately before every atomic operation.
    fn yield_point(&self, tid: usize) {
        let mut st = self.lock();
        if st.active == Some(tid) {
            st.active = None;
        }
        st.status[tid] = Status::Parked;
        self.cv.notify_all();
        while st.active != Some(tid) {
            st = self.cv.wait(st).expect("model gate poisoned");
        }
        st.status[tid] = Status::Running;
        // Keep `active == Some(tid)`: the floor is held through the
        // operation and released at the next yield point (or at finish).
    }

    /// Marks the calling worker finished and releases the floor.
    fn finish(&self, tid: usize) {
        let mut st = self.lock();
        st.status[tid] = Status::Finished;
        if st.active == Some(tid) {
            st.active = None;
        }
        self.cv.notify_all();
    }

    /// Records a contract violation (worker context only).
    fn violation(&self, msg: String) {
        let mut st = self.lock();
        if st.violations.len() < 64 {
            st.violations.push(msg);
        }
    }

    /// Drives one full run: repeatedly waits for quiescence (no worker
    /// holds the floor, none is running) and grants the floor to the
    /// runnable worker selected by the replay prefix, defaulting to the
    /// first. Returns when every worker has finished.
    fn controller(&self) {
        let mut st = self.lock();
        loop {
            while st.active.is_some() || st.status.iter().any(|s| *s == Status::Running) {
                st = self.cv.wait(st).expect("model gate poisoned");
            }
            let runnable: Vec<usize> = (0..st.status.len())
                .filter(|&t| st.status[t] == Status::Parked)
                .collect();
            if runnable.is_empty() {
                return; // all finished
            }
            let step = st.trace.len();
            let choice = st.prefix.get(step).copied().unwrap_or(0);
            assert!(
                choice < runnable.len(),
                "nondeterministic scenario: replay step {step} expects choice {choice} \
                 but only {} workers are runnable",
                runnable.len()
            );
            st.trace.push((choice, runnable.len()));
            st.active = Some(runnable[choice]);
            self.cv.notify_all();
        }
    }
}

/// Shim replacements for `std::sync::atomic` used by [`crate::atomic`]
/// under `--cfg ecl_model`.
///
/// Operations execute with real `SeqCst` atomics (the exploration is over
/// sequentially-consistent interleavings); the *declared* ordering is kept
/// only for the dynamic contract checks described at the module level.
pub mod shim {
    use super::WORKER;

    /// Mirror of `std::sync::atomic::Ordering` carrying the ordering the
    /// call site *declared* (execution is always `SeqCst`).
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    #[allow(missing_docs)]
    pub enum Ordering {
        Relaxed,
        Acquire,
        Release,
        AcqRel,
        SeqCst,
    }

    impl Ordering {
        fn publishes(self) -> bool {
            matches!(self, Ordering::AcqRel | Ordering::SeqCst)
        }
        fn acquires(self) -> bool {
            matches!(
                self,
                Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
            )
        }
    }

    use std::sync::atomic::Ordering::SeqCst;

    /// Model-checked stand-in for `std::sync::atomic::AtomicU32`: yields to
    /// the scheduler before every operation and enforces the DSU's
    /// memory-ordering contracts.
    #[derive(Debug)]
    pub struct AtomicU32 {
        inner: std::sync::atomic::AtomicU32,
    }

    /// Runs `f` after parking at a yield point when the calling thread is a
    /// registered scenario worker; otherwise runs it directly.
    fn scheduled<R>(f: impl FnOnce(Option<&super::Gate>) -> R) -> R {
        WORKER.with(|w| {
            let guard = w.borrow();
            match guard.as_ref() {
                Some((gate, tid)) => {
                    gate.yield_point(*tid);
                    f(Some(gate))
                }
                None => f(None),
            }
        })
    }

    impl AtomicU32 {
        /// Creates a new atomic (no yield: construction is pre-scenario).
        pub fn new(v: u32) -> Self {
            Self {
                inner: std::sync::atomic::AtomicU32::new(v),
            }
        }

        /// Scheduled load. The declared ordering is recorded but carries no
        /// contract: the DSU tolerates arbitrarily stale parent reads.
        pub fn load(&self, _order: Ordering) -> u32 {
            scheduled(|_| self.inner.load(SeqCst))
        }

        /// Scheduled store. Contract: a parent store may only move a node
        /// *up* its ancestor chain (`new >= old`), the benign race the
        /// halving paths rely on.
        pub fn store(&self, val: u32, _order: Ordering) {
            scheduled(|gate| {
                let old = self.inner.load(SeqCst);
                if val < old {
                    if let Some(g) = gate {
                        g.violation(format!(
                            "store contract: parent moved down its chain ({old} -> {val})"
                        ));
                    }
                }
                self.inner.store(val, SeqCst);
            })
        }

        /// Scheduled compare-exchange. Contract: the union CAS is the sole
        /// release point that publishes a merge, so the declared success
        /// ordering must be at least `AcqRel` and the failure ordering at
        /// least `Acquire`.
        pub fn compare_exchange(
            &self,
            current: u32,
            new: u32,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u32, u32> {
            scheduled(|gate| {
                if let Some(g) = gate {
                    if !success.publishes() {
                        g.violation(format!(
                            "ordering contract: union CAS success ordering {success:?} \
                             is weaker than AcqRel — a winning merge may not be \
                             published before dependent reads"
                        ));
                    }
                    if !failure.acquires() {
                        g.violation(format!(
                            "ordering contract: union CAS failure ordering {failure:?} \
                             is weaker than Acquire — a losing thread may retry \
                             against an unsynchronized root"
                        ));
                    }
                }
                self.inner.compare_exchange(current, new, SeqCst, SeqCst)
            })
        }

        /// Exclusive access (no yield: `&mut self` proves quiescence).
        pub fn get_mut(&mut self) -> &mut u32 {
            self.inner.get_mut()
        }
    }
}

/// Result of one [`explore`] call.
#[derive(Debug)]
pub struct Explored {
    /// Number of distinct schedules (grant sequences) explored.
    pub schedules: u64,
    /// Contract violations and `check` failures, tagged with the schedule
    /// index they occurred on (capped; exploration continues regardless).
    pub violations: Vec<String>,
}

/// Exhaustively explores every sequentially-consistent interleaving of a
/// scenario.
///
/// * `threads` — number of worker threads (decision points multiply
///   fast; keep scenarios at 2–3 workers over 4–8 vertices).
/// * `setup` — builds the fresh shared state for one run; runs on the
///   controller thread, unscheduled.
/// * `body` — the per-worker code, `body(tid, &state)`; every shim atomic
///   operation inside is a scheduling point.
/// * `check` — runs after all workers join (quiescent); push a message to
///   report a property violation on this schedule.
///
/// Returns the number of schedules explored and all recorded violations.
/// Scenarios must be deterministic apart from scheduling: a replayed
/// prefix meeting a different runnable count panics.
pub fn explore<S: Sync>(
    threads: usize,
    mut setup: impl FnMut() -> S,
    body: impl Fn(usize, &S) + Send + Sync,
    mut check: impl FnMut(&S, &mut Vec<String>),
) -> Explored {
    let _serial = explore_lock().lock().expect("explore lock poisoned");
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0u64;
    let mut violations = Vec::new();
    loop {
        let gate = Arc::new(Gate::new(threads, std::mem::take(&mut prefix)));
        let state = setup();
        std::thread::scope(|s| {
            for tid in 0..threads {
                let gate = Arc::clone(&gate);
                let state = &state;
                let body = &body;
                s.spawn(move || {
                    WORKER.with(|w| *w.borrow_mut() = Some((Arc::clone(&gate), tid)));
                    body(tid, state);
                    WORKER.with(|w| *w.borrow_mut() = None);
                    gate.finish(tid);
                });
            }
            gate.controller();
        });
        schedules += 1;

        let mut st = gate.lock();
        for v in st.violations.drain(..) {
            if violations.len() < 64 {
                violations.push(format!("schedule {schedules}: {v}"));
            }
        }
        let mut run_checks = Vec::new();
        check(&state, &mut run_checks);
        for v in run_checks {
            if violations.len() < 64 {
                violations.push(format!("schedule {schedules}: {v}"));
            }
        }

        // DFS backtrack: rewind to the deepest decision with an untried
        // alternative and replay up to it.
        let mut decisions = std::mem::take(&mut st.trace);
        drop(st);
        loop {
            match decisions.pop() {
                None => {
                    return Explored {
                        schedules,
                        violations,
                    }
                }
                Some((c, n)) if c + 1 < n => {
                    prefix = decisions.iter().map(|&(c, _)| c).collect();
                    prefix.push(c + 1);
                    break;
                }
                Some(_) => {}
            }
        }
    }
}
