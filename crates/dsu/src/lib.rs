//! Disjoint-set (union-find) substrates for the ECL-MST reproduction.
//!
//! The paper's unified Kruskal/Borůvka parallelization leans entirely on a
//! disjoint-set structure: cycle detection (`find` on both endpoints),
//! component merging (`union` via `atomicCAS`), and the studied
//! path-compression schemes. This crate provides:
//!
//! * [`SeqDsu`] — sequential union-find with selectable compression
//!   ([`Compression`]) and union policies ([`UnionPolicy`]), used by the
//!   serial baselines (Kruskal, Filter-Kruskal) and the verification path.
//! * [`AtomicDsu`] — a lock-free concurrent union-find built on
//!   `AtomicU32` compare-and-swap, mirroring the CUDA code's `atomicCAS`
//!   union and the find variants the paper evaluates: no compression (for
//!   the *implicit* path-compression scheme), path halving, and
//!   "intermediate pointer jumping" (Jaiganesh & Burtscher's GPU-optimized
//!   scheme used by the "No Implicit Path Compression" de-optimization).

#![forbid(unsafe_code)]
// Belt under the forbid above: if an audited `unsafe` block is ever
// admitted here, its unsafe operations must still be spelled out inside
// nested `unsafe {}` with their own SAFETY justification (the ecl-lint
// unsafe-audit rule checks both).
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod atomic;
#[cfg(ecl_model)]
pub mod model;
pub mod seq;
pub mod verify;

pub use atomic::{AtomicDsu, FindPolicy};
pub use seq::{Compression, SeqDsu, UnionPolicy};
