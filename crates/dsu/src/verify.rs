//! Partition-equivalence checks between union-find implementations.
//!
//! Two disjoint-set structures are equivalent when they induce the same
//! partition of `0..n`, regardless of which member each picked as
//! representative. These helpers normalize label vectors so partitions can
//! be compared directly; the workspace's property tests use them to check
//! every DSU variant against a naive reference.

use std::collections::HashMap;

/// Canonicalizes a label vector: each partition class is renamed to the
/// smallest element index at which it first appears.
pub fn canonical_partition(labels: &[u32]) -> Vec<u32> {
    let mut rename: HashMap<u32, u32> = HashMap::new();
    labels
        .iter()
        .enumerate()
        .map(|(i, &l)| *rename.entry(l).or_insert(i as u32))
        .collect()
}

/// True when two label vectors describe the same partition.
pub fn same_partition(a: &[u32], b: &[u32]) -> bool {
    a.len() == b.len() && canonical_partition(a) == canonical_partition(b)
}

/// Naive reference partition: repeatedly relabels until fixpoint. O(n·m)
/// but obviously correct; only for tests on small inputs.
pub fn naive_partition(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let mut label: Vec<u32> = (0..n as u32).collect();
    loop {
        let mut changed = false;
        for &(x, y) in edges {
            let (lx, ly) = (label[x as usize], label[y as usize]);
            let m = lx.min(ly);
            if lx != m {
                label[x as usize] = m;
                changed = true;
            }
            if ly != m {
                label[y as usize] = m;
                changed = true;
            }
        }
        if !changed {
            return label;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AtomicDsu, FindPolicy, SeqDsu};
    use rand::{Rng, SeedableRng};

    #[test]
    fn canonical_is_idempotent() {
        let labels = vec![5, 5, 2, 2, 9];
        let c = canonical_partition(&labels);
        assert_eq!(canonical_partition(&c), c);
        assert_eq!(c, vec![0, 0, 2, 2, 4]);
    }

    #[test]
    fn same_partition_ignores_representative_choice() {
        assert!(same_partition(&[7, 7, 3], &[0, 0, 9]));
        assert!(!same_partition(&[1, 1, 1], &[0, 0, 2]));
        assert!(!same_partition(&[0, 0], &[0, 0, 0]));
    }

    #[test]
    fn naive_partition_handles_cycles() {
        let labels = naive_partition(4, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn all_structures_agree_with_naive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for trial in 0..20 {
            let n = rng.gen_range(1..80usize);
            let m = rng.gen_range(0..150usize);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
                .collect();
            let reference = naive_partition(n, &edges);

            let mut seq = SeqDsu::new(n);
            for &(x, y) in &edges {
                seq.union(x, y);
            }
            let seq_labels: Vec<u32> = (0..n as u32).map(|v| seq.find(v)).collect();
            assert!(
                same_partition(&seq_labels, &reference),
                "trial {trial}: SeqDsu diverges from naive"
            );

            let atomic = AtomicDsu::new(n);
            for &(x, y) in &edges {
                atomic.union(x, y, FindPolicy::Halving);
            }
            assert!(
                same_partition(&atomic.labels(FindPolicy::NoCompression), &reference),
                "trial {trial}: AtomicDsu diverges from naive"
            );
        }
    }
}
