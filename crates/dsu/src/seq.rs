//! Sequential union-find.

/// Path-compression scheme applied during [`SeqDsu::find`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compression {
    /// Full two-pass path compression (every node on the path points at the
    /// root afterwards).
    #[default]
    Full,
    /// Path halving: every node points at its grandparent.
    Halving,
    /// Path splitting: every node on the path points at its grandparent,
    /// walking one step at a time.
    Splitting,
    /// No compression (useful for measuring chain lengths).
    None,
}

/// Union policy deciding which root absorbs the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnionPolicy {
    /// Union by rank (tree height bound).
    #[default]
    ByRank,
    /// Union by size (subtree cardinality).
    BySize,
    /// The lower-id root points at the higher-id root — the policy the
    /// lock-free GPU code uses ("e.g., the vertex with the highest ID in the
    /// set" becomes the representative), kept here so sequential and atomic
    /// structures can be compared representative-for-representative.
    ByIndex,
}

/// Sequential disjoint-set forest.
///
/// ```
/// use ecl_dsu::SeqDsu;
/// let mut d = SeqDsu::new(4);
/// assert!(d.union(0, 1));      // merged: a tree edge
/// assert!(!d.union(1, 0));     // already joined: a cycle edge
/// assert!(d.same(0, 1));
/// assert_eq!(d.num_sets(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct SeqDsu {
    parent: Vec<u32>,
    /// rank (ByRank) or size (BySize); unused for ByIndex.
    aux: Vec<u32>,
    compression: Compression,
    policy: UnionPolicy,
    num_sets: usize,
}

impl SeqDsu {
    /// Creates `n` singleton sets with default policies.
    pub fn new(n: usize) -> Self {
        Self::with_policies(n, Compression::default(), UnionPolicy::default())
    }

    /// Creates `n` singleton sets with explicit policies.
    pub fn with_policies(n: usize, compression: Compression, policy: UnionPolicy) -> Self {
        assert!(n <= u32::MAX as usize);
        Self {
            parent: (0..n as u32).collect(),
            aux: vec![if policy == UnionPolicy::BySize { 1 } else { 0 }; n],
            compression,
            policy,
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Finds the representative of `x`, applying the configured compression.
    pub fn find(&mut self, x: u32) -> u32 {
        match self.compression {
            Compression::Full => {
                let root = self.root_of(x);
                let mut cur = x;
                while self.parent[cur as usize] != root {
                    let next = self.parent[cur as usize];
                    self.parent[cur as usize] = root;
                    cur = next;
                }
                root
            }
            Compression::Halving => {
                let mut cur = x;
                while self.parent[cur as usize] != cur {
                    let grand = self.parent[self.parent[cur as usize] as usize];
                    self.parent[cur as usize] = grand;
                    cur = grand;
                }
                cur
            }
            Compression::Splitting => {
                let mut cur = x;
                while self.parent[cur as usize] != cur {
                    let next = self.parent[cur as usize];
                    let grand = self.parent[next as usize];
                    self.parent[cur as usize] = grand;
                    cur = next;
                }
                cur
            }
            Compression::None => self.root_of(x),
        }
    }

    /// Finds the representative without mutating (no compression).
    pub fn root_of(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// True when `x` and `y` are in the same set.
    pub fn same(&mut self, x: u32, y: u32) -> bool {
        self.find(x) == self.find(y)
    }

    /// Merges the sets of `x` and `y`. Returns `true` when they were
    /// previously disjoint (i.e. an edge between them is a tree edge).
    pub fn union(&mut self, x: u32, y: u32) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (winner, loser) = match self.policy {
            UnionPolicy::ByRank => {
                let (hx, hy) = (self.aux[rx as usize], self.aux[ry as usize]);
                if hx == hy {
                    self.aux[rx as usize] += 1;
                    (rx, ry)
                } else if hx > hy {
                    (rx, ry)
                } else {
                    (ry, rx)
                }
            }
            UnionPolicy::BySize => {
                let (sx, sy) = (self.aux[rx as usize], self.aux[ry as usize]);
                let (w, l) = if sx >= sy { (rx, ry) } else { (ry, rx) };
                self.aux[w as usize] = sx + sy;
                (w, l)
            }
            UnionPolicy::ByIndex => (rx.max(ry), rx.min(ry)),
        };
        self.parent[loser as usize] = winner;
        self.num_sets -= 1;
        true
    }

    /// Length of the parent chain from `x` to its root (0 when `x` is a
    /// root) — used by tests and the path-compression ablation.
    pub fn chain_length(&self, mut x: u32) -> usize {
        let mut hops = 0;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
            hops += 1;
        }
        hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_COMPRESSIONS: [Compression; 4] = [
        Compression::Full,
        Compression::Halving,
        Compression::Splitting,
        Compression::None,
    ];
    const ALL_POLICIES: [UnionPolicy; 3] = [
        UnionPolicy::ByRank,
        UnionPolicy::BySize,
        UnionPolicy::ByIndex,
    ];

    #[test]
    fn singletons_are_their_own_reps() {
        let mut d = SeqDsu::new(5);
        for x in 0..5 {
            assert_eq!(d.find(x), x);
        }
        assert_eq!(d.num_sets(), 5);
    }

    #[test]
    fn union_merges_and_reports() {
        let mut d = SeqDsu::new(4);
        assert!(d.union(0, 1));
        assert!(!d.union(0, 1));
        assert!(d.same(0, 1));
        assert!(!d.same(0, 2));
        assert_eq!(d.num_sets(), 3);
    }

    #[test]
    fn transitivity_via_chain() {
        for c in ALL_COMPRESSIONS {
            for p in ALL_POLICIES {
                let mut d = SeqDsu::with_policies(10, c, p);
                for i in 0..9 {
                    d.union(i, i + 1);
                }
                assert!(d.same(0, 9), "{c:?}/{p:?}");
                assert_eq!(d.num_sets(), 1);
            }
        }
    }

    #[test]
    fn by_index_picks_highest_id_rep() {
        let mut d = SeqDsu::with_policies(5, Compression::Full, UnionPolicy::ByIndex);
        d.union(0, 3);
        assert_eq!(d.find(0), 3);
        d.union(3, 1);
        assert_eq!(d.find(1), 3);
        d.union(4, 0);
        assert_eq!(d.find(0), 4);
    }

    #[test]
    fn full_compression_flattens() {
        let mut d = SeqDsu::with_policies(8, Compression::Full, UnionPolicy::ByIndex);
        for i in 0..7 {
            d.union(i, i + 1);
        }
        let _ = d.find(0);
        assert!(d.chain_length(0) <= 1);
    }

    #[test]
    fn halving_shortens_chains() {
        let mut d = SeqDsu::with_policies(16, Compression::None, UnionPolicy::ByIndex);
        for i in 0..15 {
            d.union(i, i + 1);
        }
        // Manually build a long chain, then halve.
        let before = d.chain_length(0);
        let mut h = d.clone();
        h.compression = Compression::Halving;
        let _ = h.find(0);
        assert!(h.chain_length(0) < before.max(1));
    }

    #[test]
    fn no_compression_never_mutates() {
        let mut d = SeqDsu::with_policies(8, Compression::None, UnionPolicy::ByIndex);
        for i in 0..7 {
            d.union(i, i + 1);
        }
        let parents_before = d.parent.clone();
        let _ = d.find(0);
        assert_eq!(d.parent, parents_before);
    }

    #[test]
    fn num_sets_tracks_all_policies() {
        for p in ALL_POLICIES {
            let mut d = SeqDsu::with_policies(6, Compression::Full, p);
            d.union(0, 1);
            d.union(2, 3);
            d.union(0, 2);
            assert_eq!(d.num_sets(), 3, "{p:?}");
        }
    }

    #[test]
    fn empty_structure() {
        let d = SeqDsu::new(0);
        assert!(d.is_empty());
        assert_eq!(d.num_sets(), 0);
    }
}
