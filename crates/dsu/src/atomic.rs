//! Lock-free concurrent union-find.
//!
//! This is the Rust analogue of the disjoint-set code at the heart of
//! ECL-MST: parents live in a flat array of `AtomicU32`, `union` is a
//! compare-and-swap loop ("The union operation on Line 30 involves an
//! atomicCAS"), and the representative of a set is its highest-id member
//! (union by index), which makes `union` lock-free without per-node rank
//! storage — concurrent winners simply retry from the new roots.

#[cfg(ecl_model)]
use crate::model::shim::{AtomicU32, Ordering};
#[cfg(not(ecl_model))]
use std::sync::atomic::{AtomicU32, Ordering};

/// Orderings of the union compare-exchange (success, failure). AcqRel: a
/// successful union publishes the merge before any subsequent reservation
/// check observes the new root.
#[cfg(not(ecl_model_weak_union))]
const UNION_CAS_ORD: (Ordering, Ordering) = (Ordering::AcqRel, Ordering::Acquire);

/// Deliberately broken orderings for the model-checker's negative test:
/// under `--cfg ecl_model_weak_union` the union CAS is weakened to
/// `Relaxed` and the checker's ordering contract must flag every merge.
#[cfg(ecl_model_weak_union)]
const UNION_CAS_ORD: (Ordering, Ordering) = (Ordering::Relaxed, Ordering::Relaxed);

/// Find strategy used by [`AtomicDsu::find`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FindPolicy {
    /// Walk to the root without writing. ECL-MST's default: compression
    /// happens *implicitly* when the find result replaces the endpoint on
    /// the next worklist, so the structure itself is never compressed.
    #[default]
    NoCompression,
    /// Path halving with benign-race relaxed stores, the GPU-friendly
    /// explicit scheme ("path-halving code for GPUs") used by the
    /// "No Implicit Path Compression" de-optimized variant.
    Halving,
    /// Intermediate pointer jumping (Jaiganesh & Burtscher): every node on
    /// the walked path is re-pointed at its grandparent.
    IntermediatePointerJumping,
    /// Cache-blocked grandparent chasing with *bounded* path halving: the
    /// walk loads parent and grandparent like [`FindPolicy::Halving`], but a
    /// halving store is issued only (a) for the first
    /// [`HALVING_WRITE_BOUND`] steps of the walk and (b) when the walked
    /// node sits in the same [`CACHE_BLOCK_VERTICES`]-element block of the
    /// parent array as the query, so compression never dirties cache lines
    /// outside the block a scan is currently streaming through. Returns the
    /// same root as every other policy (halving stores are root-preserving).
    BlockedHalving,
}

/// Maximum halving stores one [`FindPolicy::BlockedHalving`] find issues.
/// Long chains beyond the bound are chased read-only; the next find over the
/// same region finishes the compression incrementally.
pub const HALVING_WRITE_BOUND: u32 = 4;

/// Block granularity (in elements) of the [`FindPolicy::BlockedHalving`]
/// same-block test: 16 Ki parents × 4 B = 64 KiB, a handful of L2 pages, so
/// a blocked scan's compression writes stay inside the region it already
/// owns. Must be a power of two (the test is a single XOR + mask).
pub const CACHE_BLOCK_VERTICES: u32 = 1 << 14;

/// Lock-free disjoint-set forest over elements `0..n`.
///
/// ```
/// use ecl_dsu::{AtomicDsu, FindPolicy};
/// let d = AtomicDsu::new(3);
/// std::thread::scope(|s| {
///     s.spawn(|| d.union(0, 1, FindPolicy::Halving));
///     s.spawn(|| d.union(1, 2, FindPolicy::Halving));
/// });
/// assert_eq!(d.num_sets(), 1);
/// // The representative is the highest id in the set (union by index).
/// assert_eq!(d.find(0, FindPolicy::NoCompression), 2);
/// ```
#[derive(Debug)]
pub struct AtomicDsu {
    parent: Vec<AtomicU32>,
}

impl AtomicDsu {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        Self {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Resets every element to a singleton (requires exclusive access, so
    /// no atomics needed — used between benchmark repetitions).
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p.get_mut() = i as u32;
        }
    }

    #[inline]
    fn load_parent(&self, x: u32) -> u32 {
        // Relaxed suffices: parents only ever move toward the root, and the
        // algorithm tolerates stale reads (a stale parent is still in the
        // same set; callers re-check roots under CAS in `union`).
        self.parent[x as usize].load(Ordering::Relaxed)
    }

    /// Finds the current representative of `x` under the given policy.
    ///
    /// Returns the root *and* the number of parent hops walked (the hop
    /// count feeds the GPU cost model: each hop is a dependent global load).
    /// When an `ecl-metrics` session is active, every counted find also
    /// feeds the `ecl.dsu.find` / `find_hop` / `compression_write`
    /// counters; off, the telemetry costs one predictable branch.
    pub fn find_counted(&self, x: u32, policy: FindPolicy) -> (u32, u32) {
        let (root, hops, writes) = self.find_impl(x, policy);
        if ecl_metrics::active() {
            record_find_metrics(hops, writes);
        }
        (root, hops)
    }

    /// The policy dispatch behind [`find_counted`](Self::find_counted):
    /// returns `(root, hops, compression_writes)`.
    fn find_impl(&self, x: u32, policy: FindPolicy) -> (u32, u32, u32) {
        match policy {
            FindPolicy::NoCompression => {
                let mut cur = x;
                let mut hops = 0;
                loop {
                    let p = self.load_parent(cur);
                    if p == cur {
                        return (cur, hops, 0);
                    }
                    cur = p;
                    hops += 1;
                }
            }
            FindPolicy::Halving => {
                let mut cur = x;
                let mut hops = 0;
                let mut writes = 0;
                loop {
                    let p = self.load_parent(cur);
                    if p == cur {
                        return (cur, hops, writes);
                    }
                    let g = self.load_parent(p);
                    if g != p {
                        // Benign race: losing writers leave a still-valid
                        // (ancestor) parent in place.
                        self.parent[cur as usize].store(g, Ordering::Relaxed);
                        writes += 1;
                    }
                    cur = g;
                    hops += 1;
                }
            }
            FindPolicy::IntermediatePointerJumping => {
                let mut cur = x;
                let mut hops = 0;
                let mut writes = 0;
                loop {
                    let p = self.load_parent(cur);
                    if p == cur {
                        return (cur, hops, writes);
                    }
                    let g = self.load_parent(p);
                    if g != p {
                        self.parent[cur as usize].store(g, Ordering::Relaxed);
                        writes += 1;
                        cur = p; // advance one step, jumping intermediates
                    } else {
                        return (p, hops + 1, writes);
                    }
                    hops += 1;
                }
            }
            FindPolicy::BlockedHalving => {
                let block = x & !(CACHE_BLOCK_VERTICES - 1);
                let mut cur = x;
                let mut hops = 0;
                let mut writes = 0;
                loop {
                    let p = self.load_parent(cur);
                    if p == cur {
                        return (cur, hops, writes);
                    }
                    let g = self.load_parent(p);
                    if g != p
                        && writes < HALVING_WRITE_BOUND
                        && cur & !(CACHE_BLOCK_VERTICES - 1) == block
                    {
                        // Benign race, as in `Halving`: a losing writer
                        // leaves a still-valid ancestor in place.
                        self.parent[cur as usize].store(g, Ordering::Relaxed);
                        writes += 1;
                    }
                    cur = g;
                    hops += 1;
                }
            }
        }
    }

    /// Finds the current representative of `x`.
    #[inline]
    pub fn find(&self, x: u32, policy: FindPolicy) -> u32 {
        self.find_counted(x, policy).0
    }

    /// True when `x` and `y` are currently in the same set. (Under
    /// concurrent unions the answer is a snapshot, as on the GPU.)
    pub fn same(&self, x: u32, y: u32, policy: FindPolicy) -> bool {
        self.find(x, policy) == self.find(y, policy)
    }

    /// Lock-free union by index: the lower root is CAS-ed to point at the
    /// higher root; on contention the loser re-runs find from the moved
    /// root. Returns `true` when this call performed the merge and the
    /// number of CAS attempts (for the cost model).
    pub fn union_counted(&self, x: u32, y: u32, policy: FindPolicy) -> (bool, u32) {
        let (merged, attempts) = self.union_impl(x, y, policy);
        if ecl_metrics::active() {
            record_union_metrics(attempts);
        }
        (merged, attempts)
    }

    /// The CAS loop behind [`union_counted`](Self::union_counted).
    fn union_impl(&self, x: u32, y: u32, policy: FindPolicy) -> (bool, u32) {
        let mut rx = self.find(x, policy);
        let mut ry = self.find(y, policy);
        let mut attempts = 0;
        loop {
            if rx == ry {
                return (false, attempts);
            }
            let (lo, hi) = (rx.min(ry), rx.max(ry));
            attempts += 1;
            // See `UNION_CAS_ORD`: AcqRel so a successful union publishes
            // the merge before any subsequent reservation check observes
            // the new root.
            match self.parent[lo as usize].compare_exchange(
                lo,
                hi,
                UNION_CAS_ORD.0,
                UNION_CAS_ORD.1,
            ) {
                Ok(_) => return (true, attempts),
                Err(_) => {
                    // Someone re-parented lo concurrently; chase the roots
                    // and retry.
                    rx = self.find(lo, policy);
                    ry = self.find(hi, policy);
                }
            }
        }
    }

    /// Lock-free union by index (see [`Self::union_counted`]).
    #[inline]
    pub fn union(&self, x: u32, y: u32, policy: FindPolicy) -> bool {
        self.union_counted(x, y, policy).0
    }

    /// Snapshot of the number of disjoint sets (roots). Only meaningful in
    /// quiescent states.
    pub fn num_sets(&self) -> usize {
        (0..self.parent.len() as u32)
            .filter(|&v| self.load_parent(v) == v)
            .count()
    }

    /// Snapshot of all representatives (quiescent states only).
    pub fn labels(&self, policy: FindPolicy) -> Vec<u32> {
        (0..self.parent.len() as u32)
            .map(|v| self.find(v, policy))
            .collect()
    }

    /// Fills `out` with the representative of every element in **one**
    /// streaming pass — no pointer chasing. Quiescent states only.
    ///
    /// Union by index maintains `parent[v] >= v` (a root is only ever
    /// CAS-ed to a *higher* root, and halving stores re-point nodes at
    /// ancestors), so walking indices downward guarantees `out[parent[v]]`
    /// is already final when `v` is visited: each label is one sequential
    /// load plus one (already-cached, since `parent[v] >= v` was just
    /// written) lookup. Exactly equal to `labels(...)` but O(n) total
    /// instead of O(n · chain length) — the flat-DSU labeling pass the CPU
    /// codes run between their (barrier-separated) rounds.
    ///
    /// Debug builds assert the quiescence precondition as they go: every
    /// produced label must itself be a root. A concurrent union moves a
    /// root under us and trips the assertion (see the `ecl_model`
    /// scenario `flat_labels_quiescence_guard_trips_mid_union`), so a
    /// caller that streams labels mid-batch fails fast instead of
    /// returning a silently torn partition.
    pub fn flat_labels_into(&self, out: &mut Vec<u32>) {
        let n = self.parent.len();
        out.clear();
        out.resize(n, 0);
        for v in (0..n).rev() {
            let p = self.load_parent(v as u32);
            out[v] = if p as usize == v { p } else { out[p as usize] };
            debug_assert!(
                self.load_parent(out[v]) == out[v],
                "flat_labels_into at a non-quiescent point: label {} of element {v} is not a root",
                out[v],
            );
        }
    }
}

/// Out-of-line metrics publication for counted finds, `#[cold]` so the
/// metrics-off path compiles to a straight-line predictable branch.
#[cold]
fn record_find_metrics(hops: u32, writes: u32) {
    ecl_metrics::counter!(DSU_FIND);
    ecl_metrics::counter!(DSU_FIND_HOP, hops);
    ecl_metrics::counter!(DSU_COMPRESSION_WRITE, writes);
}

/// Out-of-line metrics publication for counted unions.
#[cold]
fn record_union_metrics(attempts: u32) {
    ecl_metrics::counter!(DSU_UNION);
    ecl_metrics::counter!(DSU_CAS_RETRY, attempts.saturating_sub(1));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{Compression, SeqDsu, UnionPolicy};
    use rand::{Rng, SeedableRng};

    const POLICIES: [FindPolicy; 4] = [
        FindPolicy::NoCompression,
        FindPolicy::Halving,
        FindPolicy::IntermediatePointerJumping,
        FindPolicy::BlockedHalving,
    ];

    #[test]
    fn singletons() {
        let d = AtomicDsu::new(4);
        for p in POLICIES {
            for x in 0..4 {
                assert_eq!(d.find(x, p), x);
            }
        }
        assert_eq!(d.num_sets(), 4);
    }

    #[test]
    fn metrics_session_counts_finds_unions_and_writes() {
        let d = AtomicDsu::new(8);
        let ((), snap) = ecl_metrics::with_metrics(|| {
            // Build a chain 0→1→…→5 then compress with a halving find.
            for x in 0..5 {
                d.union(x, x + 1, FindPolicy::NoCompression);
            }
            d.find(0, FindPolicy::Halving);
        });
        // Each union runs at least two finds (roots) plus the union call.
        assert_eq!(snap.counter("ecl.dsu.union"), 5);
        assert!(snap.counter("ecl.dsu.find") >= 11);
        assert!(snap.counter("ecl.dsu.find_hop") > 0);
        assert!(
            snap.counter("ecl.dsu.compression_write") > 0,
            "the halving find over a chain must issue compression writes"
        );
        // Serial driver: no lost CAS races.
        assert_eq!(snap.counter("ecl.dsu.cas_retry"), 0);

        // Outside the session the gate is closed again and finds are free
        // of side effects on the registry.
        d.find(0, FindPolicy::Halving);
        assert_eq!(ecl_metrics::Snapshot::collect().counter("ecl.dsu.find"), 0);
    }

    #[test]
    fn union_semantics() {
        let d = AtomicDsu::new(4);
        let p = FindPolicy::NoCompression;
        assert!(d.union(0, 1, p));
        assert!(!d.union(0, 1, p));
        assert!(d.same(0, 1, p));
        assert!(!d.same(0, 2, p));
        assert_eq!(d.num_sets(), 3);
    }

    #[test]
    fn representative_is_highest_id() {
        let d = AtomicDsu::new(6);
        let p = FindPolicy::NoCompression;
        d.union(0, 5, p);
        d.union(1, 0, p);
        assert_eq!(d.find(0, p), 5);
        assert_eq!(d.find(1, p), 5);
    }

    #[test]
    fn all_find_policies_agree_on_roots() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 200;
        let d = AtomicDsu::new(n);
        for _ in 0..300 {
            let x = rng.gen_range(0..n as u32);
            let y = rng.gen_range(0..n as u32);
            d.union(x, y, FindPolicy::Halving);
        }
        let base = d.labels(FindPolicy::NoCompression);
        for p in POLICIES {
            assert_eq!(d.labels(p), base, "{p:?}");
        }
    }

    #[test]
    fn matches_sequential_partition() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 500;
        let ops: Vec<(u32, u32)> = (0..800)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        let atomic = AtomicDsu::new(n);
        let mut seq = SeqDsu::with_policies(n, Compression::Full, UnionPolicy::ByIndex);
        for &(x, y) in &ops {
            atomic.union(x, y, FindPolicy::Halving);
            seq.union(x, y);
        }
        for x in 0..n as u32 {
            for y in (x + 1)..(x + 5).min(n as u32) {
                assert_eq!(
                    atomic.same(x, y, FindPolicy::NoCompression),
                    seq.same(x, y),
                    "partition mismatch at ({x},{y})"
                );
            }
        }
        assert_eq!(atomic.num_sets(), seq.num_sets());
    }

    #[test]
    fn concurrent_unions_linearize() {
        // Hammer the structure from many threads; the final partition must
        // equal the sequential partition of the same edge multiset.
        let n = 2_000usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let edges: Vec<(u32, u32)> = (0..10_000)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        let d = AtomicDsu::new(n);
        std::thread::scope(|s| {
            for chunk in edges.chunks(edges.len() / 8 + 1) {
                let d = &d;
                s.spawn(move || {
                    for &(x, y) in chunk {
                        d.union(x, y, FindPolicy::Halving);
                    }
                });
            }
        });
        let mut seq = SeqDsu::new(n);
        for &(x, y) in &edges {
            seq.union(x, y);
        }
        assert_eq!(d.num_sets(), seq.num_sets());
        let labels = d.labels(FindPolicy::NoCompression);
        for &(x, y) in &edges {
            assert_eq!(labels[x as usize], labels[y as usize]);
        }
    }

    #[test]
    fn concurrent_union_count_is_exact() {
        // Exactly one thread must win each merge: over any run, the number
        // of successful unions equals n - final_sets.
        let n = 1_000usize;
        let d = AtomicDsu::new(n);
        // Full path: under `--cfg ecl_model` the module-level `Ordering` is
        // the model shim's, which `AtomicUsize` does not accept.
        use std::sync::atomic::Ordering::Relaxed;
        let wins = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..8 {
                let d = &d;
                let wins = &wins;
                s.spawn(move || {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(t);
                    for _ in 0..5_000 {
                        let x = rng.gen_range(0..n as u32);
                        let y = rng.gen_range(0..n as u32);
                        if x != y && d.union(x, y, FindPolicy::Halving) {
                            wins.fetch_add(1, Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Relaxed), n - d.num_sets());
    }

    #[test]
    fn find_counted_reports_hops() {
        let d = AtomicDsu::new(4);
        let p = FindPolicy::NoCompression;
        // Build chain 0 -> 1 -> 2 -> 3 manually via unions.
        d.union(0, 1, p); // 0 -> 1
        d.union(1, 2, p); // 1 -> 2
        d.union(2, 3, p); // 2 -> 3
        let (root, hops) = d.find_counted(0, p);
        assert_eq!(root, 3);
        assert!(hops >= 1);
        let (_, root_hops) = d.find_counted(3, p);
        assert_eq!(root_hops, 0);
    }

    #[test]
    fn halving_reduces_subsequent_hops() {
        let d = AtomicDsu::new(64);
        let p = FindPolicy::NoCompression;
        for i in 0..63 {
            d.union(i, i + 1, p);
        }
        let (_, before) = d.find_counted(0, FindPolicy::NoCompression);
        let _ = d.find(0, FindPolicy::Halving);
        let (_, after) = d.find_counted(0, FindPolicy::NoCompression);
        assert!(
            after < before,
            "halving should shorten the chain: {before} -> {after}"
        );
    }

    #[test]
    fn reset_restores_singletons() {
        let mut d = AtomicDsu::new(5);
        d.union(0, 1, FindPolicy::Halving);
        d.reset();
        assert_eq!(d.num_sets(), 5);
    }

    #[test]
    fn flat_labels_match_find_labels() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for n in [0usize, 1, 2, 17, 500] {
            let d = AtomicDsu::new(n);
            for _ in 0..(2 * n) {
                let x = rng.gen_range(0..n.max(1) as u32);
                let y = rng.gen_range(0..n.max(1) as u32);
                d.union(x, y, FindPolicy::Halving);
            }
            let mut flat = Vec::new();
            d.flat_labels_into(&mut flat);
            assert_eq!(flat, d.labels(FindPolicy::NoCompression), "n={n}");
        }
    }

    #[test]
    fn flat_labels_reuses_buffer() {
        let d = AtomicDsu::new(8);
        d.union(2, 7, FindPolicy::NoCompression);
        let mut out = vec![99; 3]; // wrong size and stale content
        d.flat_labels_into(&mut out);
        assert_eq!(out.len(), 8);
        assert_eq!(out[2], 7);
        assert_eq!(out[7], 7);
        assert_eq!(out[0], 0);
    }

    #[test]
    fn blocked_halving_bounds_writes_and_compresses() {
        // A 64-long chain: one blocked find may rewrite at most
        // HALVING_WRITE_BOUND parents, and the root must be exact.
        let d = AtomicDsu::new(64);
        let p = FindPolicy::NoCompression;
        for i in 0..63 {
            d.union(i, i + 1, p);
        }
        let before: Vec<u32> = (0..64).map(|v| d.load_parent(v)).collect();
        let (root, _) = d.find_counted(0, FindPolicy::BlockedHalving);
        assert_eq!(root, 63);
        let after: Vec<u32> = (0..64).map(|v| d.load_parent(v)).collect();
        let rewritten = before.iter().zip(&after).filter(|(b, a)| b != a).count() as u32;
        assert!(rewritten >= 1, "should compress something");
        assert!(
            rewritten <= HALVING_WRITE_BOUND,
            "writes {rewritten} exceed bound"
        );
        // Repeated finds keep shortening the chain without changing roots.
        let (_, h1) = d.find_counted(0, FindPolicy::NoCompression);
        let _ = d.find(0, FindPolicy::BlockedHalving);
        let (_, h2) = d.find_counted(0, FindPolicy::NoCompression);
        assert!(h2 < h1);
    }

    #[test]
    fn blocked_halving_skips_out_of_block_writes() {
        // Chain crossing a cache-block boundary: nodes outside the query's
        // block must keep their parents even within the write bound.
        let n = CACHE_BLOCK_VERTICES as usize + 8;
        let d = AtomicDsu::new(n);
        let p = FindPolicy::NoCompression;
        // x at the end of block 0 links into block 1's chain.
        let x = CACHE_BLOCK_VERTICES - 1;
        d.union(x, CACHE_BLOCK_VERTICES, p);
        for i in CACHE_BLOCK_VERTICES..(n as u32 - 1) {
            d.union(i, i + 1, p);
        }
        let before: Vec<u32> = (CACHE_BLOCK_VERTICES..n as u32)
            .map(|v| d.load_parent(v))
            .collect();
        let (root, _) = d.find_counted(x, FindPolicy::BlockedHalving);
        assert_eq!(root, n as u32 - 1);
        let after: Vec<u32> = (CACHE_BLOCK_VERTICES..n as u32)
            .map(|v| d.load_parent(v))
            .collect();
        assert_eq!(before, after, "out-of-block parents must be untouched");
    }
}
