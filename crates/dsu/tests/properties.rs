//! Property-based tests: every DSU variant must induce the same partition
//! as the naive reference for arbitrary union sequences.

use ecl_dsu::verify::{naive_partition, same_partition};
use ecl_dsu::{AtomicDsu, Compression, FindPolicy, SeqDsu, UnionPolicy};
use proptest::prelude::*;

fn edges_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..120).prop_flat_map(|n| {
        let e = prop::collection::vec((0..n as u32, 0..n as u32), 0..200);
        (Just(n), e)
    })
}

proptest! {
    #[test]
    fn seq_all_policy_combinations_match_naive((n, edges) in edges_strategy()) {
        let reference = naive_partition(n, &edges);
        for c in [Compression::Full, Compression::Halving, Compression::Splitting, Compression::None] {
            for p in [UnionPolicy::ByRank, UnionPolicy::BySize, UnionPolicy::ByIndex] {
                let mut d = SeqDsu::with_policies(n, c, p);
                for &(x, y) in &edges {
                    d.union(x, y);
                }
                let labels: Vec<u32> = (0..n as u32).map(|v| d.find(v)).collect();
                prop_assert!(same_partition(&labels, &reference), "{c:?}/{p:?}");
            }
        }
    }

    #[test]
    fn atomic_all_find_policies_match_naive((n, edges) in edges_strategy()) {
        let reference = naive_partition(n, &edges);
        for p in [FindPolicy::NoCompression, FindPolicy::Halving, FindPolicy::IntermediatePointerJumping, FindPolicy::BlockedHalving] {
            let d = AtomicDsu::new(n);
            for &(x, y) in &edges {
                d.union(x, y, p);
            }
            prop_assert!(same_partition(&d.labels(FindPolicy::NoCompression), &reference), "{p:?}");
        }
    }

    #[test]
    fn union_returns_true_exactly_once_per_merge((n, edges) in edges_strategy()) {
        let mut d = SeqDsu::new(n);
        let mut wins = 0usize;
        for &(x, y) in &edges {
            if d.union(x, y) {
                wins += 1;
            }
        }
        prop_assert_eq!(wins, n - d.num_sets());
    }

    #[test]
    fn parallel_unions_match_naive((n, edges) in edges_strategy()) {
        let reference = naive_partition(n, &edges);
        let d = AtomicDsu::new(n);
        rayon::scope(|s| {
            for chunk in edges.chunks(edges.len() / 4 + 1) {
                let d = &d;
                s.spawn(move |_| {
                    for &(x, y) in chunk {
                        d.union(x, y, FindPolicy::Halving);
                    }
                });
            }
        });
        prop_assert!(same_partition(&d.labels(FindPolicy::NoCompression), &reference));
    }
}
