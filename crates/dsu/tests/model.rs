//! Exhaustive interleaving checks for `AtomicDsu` (`--cfg ecl_model`).
//!
//! Every test enumerates *all* sequentially-consistent schedules of a
//! small scenario via `ecl_dsu::model::explore` and asserts that the final
//! partition is linearizable — equal to the `SeqDsu` partition of the same
//! edge multiset — and that no dynamic contract (union-CAS ordering,
//! root-preserving stores) is violated on any schedule. Schedule counts
//! are pinned: a drift means yield points moved (an atomic op was added,
//! removed, or reordered) and the constants must be re-derived, not
//! papered over.
//!
//! Run with: `RUSTFLAGS="--cfg ecl_model" cargo test -p ecl-dsu --test model`
#![cfg(ecl_model)]

use ecl_dsu::model::explore;
use ecl_dsu::{AtomicDsu, FindPolicy, SeqDsu};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

/// Pushes a violation for every vertex pair on which the quiescent
/// partition differs from the sequential partition of `edges`.
fn check_partition(d: &AtomicDsu, n: usize, edges: &[(u32, u32)], out: &mut Vec<String>) {
    let mut seq = SeqDsu::new(n);
    for &(x, y) in edges {
        seq.union(x, y);
    }
    let labels = d.labels(FindPolicy::NoCompression);
    for x in 0..n as u32 {
        for y in (x + 1)..n as u32 {
            let together = labels[x as usize] == labels[y as usize];
            if together != seq.same(x, y) {
                out.push(format!(
                    "non-linearizable partition at ({x},{y}): atomic={together}, seq={}",
                    !together
                ));
            }
        }
    }
    // Union by index must hold in every quiescent state: parent[v] >= v.
    let mut flat = Vec::new();
    d.flat_labels_into(&mut flat);
    let slow = d.labels(FindPolicy::NoCompression);
    if flat != slow {
        out.push(format!("flat_labels_into diverges: {flat:?} vs {slow:?}"));
    }
}

/// Explores two workers each performing one union, checking partition
/// linearizability and `flat_labels_into` agreement on every schedule.
/// Returns the number of schedules explored.
fn explore_two_unions(n: usize, e0: (u32, u32), e1: (u32, u32), policy: FindPolicy) -> u64 {
    let edges = [e0, e1];
    let r = explore(
        2,
        || AtomicDsu::new(n),
        move |tid, d: &AtomicDsu| {
            let (x, y) = edges[tid];
            d.union(x, y, policy);
        },
        |d, out| check_partition(d, n, &edges, out),
    );
    assert_eq!(r.violations, Vec::<String>::new());
    r.schedules
}

#[test]
#[cfg_attr(
    ecl_model_weak_union,
    ignore = "weak-union build breaks orderings on purpose"
)]
fn disjoint_unions_linearize() {
    let schedules = explore_two_unions(4, (0, 1), (2, 3), FindPolicy::Halving);
    // Pinned: 3 scheduled ops per worker (2 root loads + 1 CAS), all
    // interleavings of two independent 3-op threads = C(6,3) = 20.
    assert_eq!(schedules, 20);
}

#[test]
#[cfg_attr(
    ecl_model_weak_union,
    ignore = "weak-union build breaks orderings on purpose"
)]
fn overlapping_unions_linearize() {
    // Shared vertex 1 — yet the two CASes still hit different slots (each
    // pair's lower root), so no schedule forces a retry and the count
    // matches the disjoint case.
    let schedules = explore_two_unions(3, (0, 1), (1, 2), FindPolicy::Halving);
    assert_eq!(schedules, 20);
}

#[test]
#[cfg_attr(
    ecl_model_weak_union,
    ignore = "weak-union build breaks orderings on purpose"
)]
fn overlapping_unions_linearize_without_compression() {
    let schedules = explore_two_unions(3, (0, 1), (1, 2), FindPolicy::NoCompression);
    assert_eq!(schedules, 20);
}

#[test]
#[cfg_attr(
    ecl_model_weak_union,
    ignore = "weak-union build breaks orderings on purpose"
)]
fn contended_same_edge_has_exactly_one_winner() {
    struct St {
        d: AtomicDsu,
        wins: AtomicUsize,
    }
    let r = explore(
        2,
        || St {
            d: AtomicDsu::new(2),
            wins: AtomicUsize::new(0),
        },
        |_tid, st: &St| {
            if st.d.union(0, 1, FindPolicy::Halving) {
                st.wins.fetch_add(1, Relaxed);
            }
        },
        |st, out| {
            if st.wins.load(Relaxed) != 1 {
                out.push(format!(
                    "expected exactly one winning union, got {}",
                    st.wins.load(Relaxed)
                ));
            }
            check_partition(&st.d, 2, &[(0, 1), (0, 1)], out);
        },
    );
    assert_eq!(r.violations, Vec::<String>::new());
    assert_eq!(r.schedules, 20);
}

#[test]
#[cfg_attr(
    ecl_model_weak_union,
    ignore = "weak-union build breaks orderings on purpose"
)]
fn three_workers_on_a_triangle_linearize() {
    let edges = [(0u32, 1u32), (1, 2), (0, 2)];
    let r = explore(
        3,
        || AtomicDsu::new(3),
        move |tid, d: &AtomicDsu| {
            let (x, y) = edges[tid];
            d.union(x, y, FindPolicy::NoCompression);
        },
        |d, out| check_partition(d, 3, &edges, out),
    );
    assert_eq!(r.violations, Vec::<String>::new());
    assert_eq!(r.schedules, 5_532);
}

#[test]
#[cfg_attr(
    ecl_model_weak_union,
    ignore = "weak-union build breaks orderings on purpose"
)]
fn halving_races_union_on_a_chain() {
    // Worker 0 compresses the chain 0->1->2->3 with path-halving finds
    // while worker 1 unions a new vertex onto it. The halving stores race
    // the union CAS; every interleaving must keep the partition intact
    // and every store must move parents only up the chain (the shim's
    // store contract checks that on each schedule).
    let setup = || {
        let d = AtomicDsu::new(5);
        d.union(0, 1, FindPolicy::NoCompression); // 0 -> 1
        d.union(1, 2, FindPolicy::NoCompression); // 1 -> 2
        d.union(2, 3, FindPolicy::NoCompression); // 2 -> 3
        d
    };
    let r = explore(
        2,
        setup,
        |tid, d: &AtomicDsu| {
            if tid == 0 {
                d.find(0, FindPolicy::Halving);
            } else {
                d.union(4, 0, FindPolicy::Halving);
            }
        },
        |d, out| {
            let edges = [(0, 1), (1, 2), (2, 3), (4, 0)];
            check_partition(d, 5, &edges, out);
        },
    );
    assert_eq!(r.violations, Vec::<String>::new());
    assert_eq!(r.schedules, 2_590);
}

#[test]
#[cfg_attr(
    ecl_model_weak_union,
    ignore = "weak-union build breaks orderings on purpose"
)]
fn blocked_halving_races_stay_root_preserving() {
    // Two workers run BlockedHalving finds over the same chain
    // concurrently: all stores are compression, and the store contract
    // (parent moves only upward) must hold on every schedule, as must the
    // roots both workers return.
    struct St {
        d: AtomicDsu,
        roots: [AtomicUsize; 2],
    }
    let r = explore(
        2,
        || {
            let d = AtomicDsu::new(6);
            for i in 0..5 {
                d.union(i, i + 1, FindPolicy::NoCompression); // chain 0->..->5
            }
            St {
                d,
                roots: [AtomicUsize::new(0), AtomicUsize::new(0)],
            }
        },
        |tid, st: &St| {
            let r = st.d.find(tid as u32, FindPolicy::BlockedHalving);
            st.roots[tid].store(r as usize, Relaxed);
        },
        |st, out| {
            for (tid, r) in st.roots.iter().enumerate() {
                if r.load(Relaxed) != 5 {
                    out.push(format!(
                        "worker {tid} found root {} on a 0..=5 chain",
                        r.load(Relaxed)
                    ));
                }
            }
            let edges: Vec<(u32, u32)> = (0..5).map(|i| (i, i + 1)).collect();
            check_partition(&st.d, 6, &edges, out);
        },
    );
    assert_eq!(r.violations, Vec::<String>::new());
    assert_eq!(r.schedules, 9_712);
}

#[test]
#[cfg(debug_assertions)]
#[cfg_attr(
    ecl_model_weak_union,
    ignore = "weak-union build breaks orderings on purpose"
)]
fn flat_labels_quiescence_guard_trips_mid_union() {
    // The quiescence guard in `flat_labels_into` must actually fire: one
    // worker streams labels while the other unions a new root over the
    // chain, and on at least one schedule the guard's re-load must catch
    // the label it just produced no longer being a root. Debug builds
    // only — the guard compiles out of release.
    use std::panic::{self, AssertUnwindSafe};
    let trips = AtomicUsize::new(0);
    // The default hook would print a backtrace line for every tripping
    // schedule; silence the guard's own panics and forward the rest.
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|info| {
        let ours = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("non-quiescent"));
        if !ours {
            eprintln!("{info}");
        }
    }));
    let r = explore(
        2,
        || {
            let d = AtomicDsu::new(3);
            d.union(0, 1, FindPolicy::NoCompression); // parent[0] = 1
            d
        },
        |tid, d: &AtomicDsu| {
            if tid == 0 {
                d.union(1, 2, FindPolicy::NoCompression); // re-roots 1 under 2
            } else {
                let mut labels = Vec::new();
                if panic::catch_unwind(AssertUnwindSafe(|| d.flat_labels_into(&mut labels)))
                    .is_err()
                {
                    trips.fetch_add(1, Relaxed);
                }
            }
        },
        |d, out| check_partition(d, 3, &[(0, 1), (1, 2)], out),
    );
    panic::set_hook(prev);
    assert_eq!(r.violations, Vec::<String>::new());
    assert!(
        trips.load(Relaxed) > 0,
        "no schedule tripped the quiescence guard across {} schedules",
        r.schedules
    );
}

/// Negative test: with the union CAS deliberately weakened to `Relaxed`
/// (`--cfg ecl_model_weak_union`), the checker's ordering contract must
/// flag every schedule that performs a merge.
#[test]
#[cfg(ecl_model_weak_union)]
fn weakened_union_cas_is_caught() {
    let r = explore(
        2,
        || AtomicDsu::new(4),
        |tid, d: &AtomicDsu| {
            let (x, y) = [(0, 1), (2, 3)][tid];
            d.union(x, y, FindPolicy::Halving);
        },
        |_d, _out| {},
    );
    assert!(
        !r.violations.is_empty(),
        "Relaxed union CAS must violate the ordering contract"
    );
    assert!(
        r.violations
            .iter()
            .any(|v| v.contains("weaker than AcqRel")),
        "violations should name the weak success ordering: {:?}",
        r.violations
    );
}
