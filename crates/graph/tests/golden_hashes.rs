//! Golden content hashes pinning generator + builder output byte-for-byte.
//!
//! The parallel input pipeline (chunked per-chunk RNG streams in the
//! generators, the parallel CSR build path) must reproduce the serial
//! pipeline's output *exactly* — same edge multiset, same weights, same arc
//! order, same edge ids. These hashes were captured from the serial
//! implementation before the parallel refactor; any divergence afterwards is
//! a determinism bug, not an acceptable drift.
//!
//! Regenerate (e.g. after an *intentional* generator change) with:
//!
//! ```text
//! GOLDEN_PRINT=1 cargo test -p ecl-graph --test golden_hashes -- --nocapture
//! ```

use ecl_graph::generators::*;
use ecl_graph::{suite, CsrGraph, SuiteScale};

/// FNV-1a 64 over every array of the CSR, in a fixed serialization order.
/// Any reordering of arcs, renumbering of edge ids, or weight change moves
/// the hash.
fn csr_hash(g: &CsrGraph) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |word: u32| {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(u32::try_from(g.num_vertices()).unwrap());
    for &w in g.row_starts() {
        eat(w);
    }
    for &w in g.adjacency() {
        eat(w);
    }
    for &w in g.arc_weights() {
        eat(w);
    }
    for &w in g.arc_edge_ids() {
        eat(w);
    }
    h
}

/// The 17 suite entries at Tiny, in suite order.
const SUITE_TINY: [(&str, u64); 17] = [
    ("2d-2e20.sym", 0xf7b340c1cc666f10),
    ("amazon0601", 0x804b0809910673d1),
    ("as-skitter", 0xaf553510da7a5be9),
    ("citationCiteseer", 0x1de94cda4b07e165),
    ("cit-Patents", 0x99308cb9b31e3bba),
    ("coPapersDBLP", 0x37e202f7508c6821),
    ("delaunay_n24", 0x942959447a8f11ed),
    ("europe_osm", 0xe03c34b7e0a9c098),
    ("in-2004", 0x6efb1143cf3ea5ea),
    ("internet", 0x0fd85cce15481bf9),
    ("kron_g500-logn21", 0x32a4eee4532728a6),
    ("r4-2e23.sym", 0x615eac072db5ddc0),
    ("rmat16.sym", 0x7913d83ceb2c4f70),
    ("rmat22.sym", 0xcc8a84979dd7f87b),
    ("soc-LiveJournal1", 0xe2d4f3979b954185),
    ("USA-road-d.NY", 0x0341a1e6e600d929),
    ("USA-road-d.USA", 0x83b043b71719602c),
];

/// Direct generator calls at off-suite parameters, covering every public
/// generator (the suite exercises neither `small_world` nor `geometric`).
fn direct_cases() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("grid2d(64,7)", grid2d(64, 7)),
        ("delaunay_like(48,11)", delaunay_like(48, 11)),
        ("uniform_random(4096,6.0,13)", uniform_random(4096, 6.0, 13)),
        ("rmat(12,8,17)", rmat(12, 8, 17)),
        ("kronecker(11,16,19)", kronecker(11, 16, 19)),
        ("small_world(4096,4,0.1,23)", small_world(4096, 4, 0.1, 23)),
        ("citation(4096,5,3,29)", citation(4096, 5, 3, 29)),
        (
            "preferential_attachment(4096,6,4,31)",
            preferential_attachment(4096, 6, 4, 31),
        ),
        ("webcrawl(4096,8,3,37)", webcrawl(4096, 8, 3, 37)),
        ("copapers(4096,24,41)", copapers(4096, 24, 41)),
        ("internet_topo(2048,3.0,43)", internet_topo(2048, 3.0, 43)),
        ("road_map(64,2.5,47)", road_map(64, 2.5, 47)),
        ("geometric(2048,0.05,53)", geometric(2048, 0.05, 53)),
    ]
}

const DIRECT: [(&str, u64); 13] = [
    ("grid2d(64,7)", 0x7225395ee7431005),
    ("delaunay_like(48,11)", 0x5f373e0f2f7dfd9a),
    ("uniform_random(4096,6.0,13)", 0x1ed9c543dc97431f),
    ("rmat(12,8,17)", 0xca2a4f276a27fac9),
    ("kronecker(11,16,19)", 0x10548ee86ebc4fff),
    ("small_world(4096,4,0.1,23)", 0x595126a53d93868d),
    ("citation(4096,5,3,29)", 0xac98bd46314691bd),
    ("preferential_attachment(4096,6,4,31)", 0xcfb097dc30f1d5c4),
    ("webcrawl(4096,8,3,37)", 0x10de13eec8d4ead0),
    ("copapers(4096,24,41)", 0x6e66b1f08ddb53a5),
    ("internet_topo(2048,3.0,43)", 0xff612c3ab461bd0c),
    ("road_map(64,2.5,47)", 0xc0ade2bdebb8e276),
    ("geometric(2048,0.05,53)", 0x9a7e135324be28cc),
];

fn check(observed: &[(String, u64)], expected: &[(&str, u64)]) {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        for (name, h) in observed {
            println!("    (\"{name}\", {h:#018x}),");
        }
        return;
    }
    assert_eq!(observed.len(), expected.len());
    for ((name, h), (ename, eh)) in observed.iter().zip(expected) {
        assert_eq!(name, ename, "case ordering drifted");
        assert_eq!(
            *h, *eh,
            "{name}: content hash {h:#018x} != golden {eh:#018x} \
             (generator or builder output is no longer byte-identical)"
        );
    }
}

#[test]
fn suite_tiny_hashes_are_golden() {
    let observed: Vec<(String, u64)> = suite(SuiteScale::Tiny)
        .iter()
        .map(|e| (e.name.to_string(), csr_hash(&e.graph)))
        .collect();
    check(&observed, &SUITE_TINY);
}

#[test]
fn direct_generator_hashes_are_golden() {
    let observed: Vec<(String, u64)> = direct_cases()
        .into_iter()
        .map(|(name, g)| (name.to_string(), csr_hash(&g)))
        .collect();
    check(&observed, &DIRECT);
}
