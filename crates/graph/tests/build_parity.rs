//! Parallel-vs-serial CSR build parity.
//!
//! `GraphBuilder::build_chunked` (the chunk-parallel arc sort + row merge
//! behind `build`) must produce bit-identical CSRs to
//! `GraphBuilder::build_serial` (the legacy counting sort kept as the
//! oracle) on every suite topology — same row starts, same
//! adjacency order, same weights, same edge-id assignment. The parallel path
//! must also be schedule-independent: pinning it to one thread via
//! `par::with_serial_input` cannot change a byte.

use ecl_graph::par::with_serial_input;
use ecl_graph::{suite, CsrGraph, GraphBuilder, SuiteScale};

/// Rebuilds `g`'s edge list through both build paths and compares.
fn assert_parity(name: &str, g: &CsrGraph) {
    // Recover the undirected edge list in edge-id order, then feed it to
    // fresh builders in a scrambled order so the comparison exercises the
    // sort + dedup stages, not just pass-through.
    let mut edges: Vec<(u32, u32, u32)> = g
        .edges()
        .map(|e| (e.src.max(e.dst), e.src.min(e.dst), e.weight))
        .collect();
    edges.reverse();
    // A few duplicates with heavier weights: dedup must keep the originals.
    let dupes: Vec<_> = edges
        .iter()
        .step_by(7)
        .map(|&(u, v, w)| (v, u, w.saturating_add(1)))
        .collect();
    edges.extend(dupes);

    let n = g.num_vertices();
    let build = |serial: bool| -> CsrGraph {
        let mut b = GraphBuilder::with_capacity(n, edges.len());
        b.extend_edges(edges.iter().copied());
        if serial {
            b.build_serial()
        } else {
            b.build_chunked()
        }
    };
    let parallel = build(false);
    let serial = build(true);
    assert_eq!(
        parallel, serial,
        "{name}: parallel build diverged from the serial oracle"
    );
    let pinned = with_serial_input(|| build(false));
    assert_eq!(
        parallel, pinned,
        "{name}: parallel build is schedule-dependent"
    );
    parallel
        .validate()
        .unwrap_or_else(|e| panic!("{name}: {e}"));
}

#[test]
fn suite_entries_build_identically() {
    for e in suite(SuiteScale::Tiny) {
        assert_parity(e.name, &e.graph);
    }
}

#[test]
fn empty_and_degenerate_graphs() {
    for (n, edges) in [
        (0usize, vec![]),
        (1, vec![]),
        (5, vec![]),
        (2, vec![(0u32, 1u32, 7u32)]),
        (3, vec![(0, 1, 1), (0, 1, 2), (1, 0, 1), (1, 2, 5)]),
    ] {
        let mk = |serial: bool| {
            let mut b = GraphBuilder::new(n);
            b.extend_edges(edges.iter().copied());
            if serial {
                b.build_serial()
            } else {
                b.build_chunked()
            }
        };
        assert_eq!(mk(false), mk(true), "n={n}");
        mk(false).validate().unwrap();
    }
}

#[test]
fn msf_counters_identical_across_paths() {
    // The built CSR feeds the MST codes; identical bytes must give
    // identical forests. Spot-check with the serial Kruskal reference on a
    // scrambled rebuild of one multi-component suite entry.
    let entries = suite(SuiteScale::Tiny);
    let e = entries
        .iter()
        .find(|e| !e.is_mst_input())
        .expect("suite has MSF inputs");
    let edges: Vec<(u32, u32, u32)> = e
        .graph
        .edges()
        .map(|ed| (ed.src, ed.dst, ed.weight))
        .collect();
    let n = e.graph.num_vertices();
    let forest_weight = |g: &CsrGraph| {
        let mut sorted: Vec<(u32, u32, u32)> =
            g.edges().map(|ed| (ed.weight, ed.src, ed.dst)).collect();
        sorted.sort_unstable();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let mut total = 0u64;
        for (w, u, v) in sorted {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru as usize] = rv;
                total += u64::from(w);
            }
        }
        total
    };
    let mk = |serial: bool| {
        let mut b = GraphBuilder::new(n);
        b.extend_edges(edges.iter().copied());
        if serial {
            b.build_serial()
        } else {
            b.build_chunked()
        }
    };
    let (p, s) = (mk(false), mk(true));
    assert_eq!(p, s);
    assert_eq!(forest_weight(&p), forest_weight(&s));
}
