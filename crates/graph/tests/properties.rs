//! Property-based tests of the graph substrate: builder invariants,
//! serialization round-trips, malformed-input rejection, and generator
//! contracts.

use ecl_graph::builder::append_isolated;
use ecl_graph::stats::{component_labels, connected_components};
use ecl_graph::{io, CsrGraph, GraphBuilder};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (1usize..80).prop_flat_map(|n| {
        prop::collection::vec((0..n as u32, 0..n as u32, 1..10_000u32), 0..200).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new(n);
                for (u, v, w) in edges {
                    if u != v {
                        b.add_edge(u, v, w);
                    }
                }
                b.build()
            },
        )
    })
}

proptest! {
    #[test]
    fn builder_output_always_validates(g in arb_graph()) {
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn binary_roundtrip_is_identity(g in arb_graph()) {
        let bytes = io::to_binary(&g).unwrap();
        let h = io::from_binary(&bytes).unwrap();
        prop_assert_eq!(g, h);
    }

    #[test]
    fn text_roundtrip_is_identity(g in arb_graph()) {
        let text = io::to_text(&g);
        let h = io::from_text(&text).unwrap();
        prop_assert_eq!(g, h);
    }

    #[test]
    fn from_binary_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Arbitrary bytes must be rejected gracefully, never panic.
        let _ = io::from_binary(&bytes);
    }

    #[test]
    fn from_binary_rejects_any_truncation(g in arb_graph()) {
        let bytes = io::to_binary(&g).unwrap();
        if bytes.len() >= 4 {
            let cut = bytes.len() - 4;
            prop_assert!(io::from_binary(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn from_text_never_panics_on_garbage(s in "\\PC{0,200}") {
        let _ = io::from_text(&s);
    }

    #[test]
    fn degrees_sum_to_arc_count(g in arb_graph()) {
        let sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, g.num_arcs());
    }

    #[test]
    fn edges_iterator_covers_each_id_once(g in arb_graph()) {
        let mut ids: Vec<u32> = g.edges().map(|e| e.id).collect();
        ids.sort_unstable();
        let expect: Vec<u32> = (0..g.num_edges() as u32).collect();
        prop_assert_eq!(ids, expect);
    }

    #[test]
    fn component_labels_consistent_with_count(g in arb_graph()) {
        let labels = component_labels(&g);
        let mut distinct: Vec<u32> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(distinct.len(), connected_components(&g));
        for e in g.edges() {
            prop_assert_eq!(labels[e.src as usize], labels[e.dst as usize]);
        }
    }

    #[test]
    fn append_isolated_preserves_edges_and_adds_components(
        g in arb_graph(),
        extra in 0usize..20,
    ) {
        let padded = append_isolated(&g, extra);
        prop_assert_eq!(padded.num_edges(), g.num_edges());
        prop_assert_eq!(padded.num_vertices(), g.num_vertices() + extra);
        prop_assert_eq!(
            connected_components(&padded),
            connected_components(&g) + extra
        );
        prop_assert!(padded.validate().is_ok());
    }

    #[test]
    fn average_degree_formula(g in arb_graph()) {
        let expect = g.num_arcs() as f64 / g.num_vertices() as f64;
        prop_assert!((g.average_degree() - expect).abs() < 1e-12);
    }
}
