//! Deterministic parallel execution for the input pipeline.
//!
//! Everything in this module obeys one contract: **the result is a pure
//! function of the inputs, independent of the thread budget**. Work is cut
//! into chunks whose boundaries depend only on the data size (never on the
//! core count), each chunk computes a value that no other chunk can observe,
//! and results are recombined in chunk order. Running on one thread or
//! sixteen therefore produces identical bytes — the property the golden
//! generator hashes and the cross-run suite determinism tests pin.
//!
//! The thread budget comes from [`rayon::current_num_threads`] (the vendored
//! shim reads `RAYON_NUM_THREADS`, defaulting to the host parallelism);
//! [`with_serial_input`] and the `ECL_SERIAL_INPUT` environment variable
//! force a budget of one so parity tests can compare scheduled-serial
//! against threaded execution.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

thread_local! {
    static FORCE_SERIAL: Cell<bool> = const { Cell::new(false) };
}

/// True when chunked work must run on the calling thread (scoped
/// [`with_serial_input`] or ambient `ECL_SERIAL_INPUT=1`).
pub fn serial_input() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    FORCE_SERIAL.with(Cell::get)
        || *ENV.get_or_init(|| {
            std::env::var("ECL_SERIAL_INPUT").is_ok_and(|v| !v.is_empty() && v != "0")
        })
}

/// Runs `f` with the parallel helpers pinned to one thread. The chunked
/// algorithms still run chunk by chunk — just in order on this thread — so
/// comparing against an unpinned run checks scheduling-independence.
pub fn with_serial_input<R>(f: impl FnOnce() -> R) -> R {
    FORCE_SERIAL.with(|c| {
        let prev = c.replace(true);
        let r = f();
        c.set(prev);
        r
    })
}

/// Worker-thread budget for the helpers below.
pub fn max_threads() -> usize {
    if serial_input() {
        1
    } else {
        rayon::current_num_threads()
    }
}

/// Cuts `0..total` into consecutive ranges of roughly `target` elements.
/// Boundaries depend only on `total` and `target` — never the thread count —
/// so per-chunk RNG stream positions are stable across hosts.
pub fn chunk_ranges(total: usize, target: usize) -> Vec<Range<usize>> {
    let target = target.max(1);
    let chunks = total.div_ceil(target).max(1);
    let base = total / chunks;
    let extra = total % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut lo = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        out.push(lo..lo + len);
        lo += len;
    }
    out
}

/// Maps `f` over `items` on up to [`max_threads`] workers, returning results
/// in item order. Workers self-schedule off an atomic index, so chunk cost
/// imbalance does not serialize the tail.
pub fn par_map<T: Sync, R: Send + Sync>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
    let threads = max_threads().min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<R>> = items.iter().map(|_| OnceLock::new()).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let computed = slots[i].set(f(i, &items[i])).is_ok();
                debug_assert!(computed, "chunk {i} scheduled twice");
            });
        }
    });
    slots
        .into_iter()
        .map(|c| c.into_inner().expect("every chunk ran"))
        .collect()
}

/// [`par_map`] over the chunking of `0..total`: `f` receives each range and
/// the results come back in range order.
pub fn run_chunks<R: Send + Sync>(
    total: usize,
    target: usize,
    f: impl Fn(Range<usize>) -> R + Sync,
) -> Vec<R> {
    let ranges = chunk_ranges(total, target);
    par_map(&ranges, |_, r| f(r.clone()))
}

/// Runs `f` once per owned task, distributing tasks round-robin over the
/// thread budget. For tasks that carry `&mut` slices (disjoint by
/// construction at the call site) where no result is needed.
pub fn par_tasks<T: Send>(tasks: Vec<T>, f: impl Fn(T) + Sync) {
    let threads = max_threads().min(tasks.len());
    if threads <= 1 {
        for task in tasks {
            f(task);
        }
        return;
    }
    let mut batches: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
    for (k, task) in tasks.into_iter().enumerate() {
        batches[k % threads].push(task);
    }
    std::thread::scope(|s| {
        for batch in batches {
            s.spawn(|| {
                for task in batch {
                    f(task);
                }
            });
        }
    });
}

/// Splits `data` at the given ascending cut points (relative to the start of
/// `data`, final implicit cut at `data.len()`) and hands each piece, with its
/// index, to `f` in parallel.
pub fn par_split_mut<T: Send>(data: &mut [T], cuts: &[usize], f: impl Fn(usize, &mut [T]) + Sync) {
    let mut rest = data;
    let mut prev = 0;
    let mut tasks: Vec<(usize, &mut [T])> = Vec::with_capacity(cuts.len() + 1);
    for (i, &c) in cuts.iter().enumerate() {
        let (head, tail) = rest.split_at_mut(c - prev);
        tasks.push((i, head));
        rest = tail;
        prev = c;
    }
    tasks.push((cuts.len(), rest));
    par_tasks(tasks, |(i, piece)| f(i, piece));
}

/// For `len` records sorted by a `u32` key in `0..n`, returns the `n + 1`
/// partition offsets: `out[k]` = number of records with key `< k`. This *is*
/// the exclusive prefix sum of the per-key counts, read off the sorted order
/// with an embarrassingly parallel binary search per key chunk.
pub fn sorted_key_offsets(n: usize, len: usize, key_at: impl Fn(usize) -> u32 + Sync) -> Vec<u32> {
    let chunks = run_chunks(n + 1, 1 << 16, |r| {
        let mut part = Vec::with_capacity(r.len());
        for k in r {
            // partition_point over the record indices for key < k.
            let (mut lo, mut hi) = (0usize, len);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if (key_at(mid) as usize) < k {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            part.push(u32::try_from(lo).expect("arc count fits u32"));
        }
        part
    });
    let mut out = Vec::with_capacity(n + 1);
    for part in chunks {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for total in [0usize, 1, 7, 100, 65_537] {
            for target in [1usize, 3, 64, 1 << 16] {
                let ranges = chunk_ranges(total, target);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
                assert_eq!(expect, total);
                assert!(!ranges.is_empty());
            }
        }
    }

    #[test]
    fn par_map_ordered_and_serial_identical() {
        let items: Vec<u64> = (0..1000).collect();
        let threaded = par_map(&items, |i, &x| x * 2 + i as u64);
        let serial = with_serial_input(|| par_map(&items, |i, &x| x * 2 + i as u64));
        assert_eq!(threaded, serial);
        assert_eq!(threaded[500], 1500);
    }

    #[test]
    fn par_split_mut_disjoint_pieces() {
        let mut v = vec![0u32; 100];
        par_split_mut(&mut v, &[10, 40], |i, piece| {
            for x in piece.iter_mut() {
                *x = i as u32 + 1;
            }
        });
        assert!(v[..10].iter().all(|&x| x == 1));
        assert!(v[10..40].iter().all(|&x| x == 2));
        assert!(v[40..].iter().all(|&x| x == 3));
    }

    #[test]
    fn sorted_key_offsets_match_counting() {
        let keys: Vec<u32> = vec![0, 0, 1, 3, 3, 3, 7];
        let n = 9;
        let offsets = sorted_key_offsets(n, keys.len(), |i| keys[i]);
        let mut counts = vec![0u32; n + 1];
        for &k in &keys {
            counts[k as usize + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        assert_eq!(offsets, counts);
    }
}
