//! Road-map generator — twin of `USA-road-d.NY`, `USA-road-d.USA` and
//! `europe_osm` (average degree 2.1–2.8, maximum degree ≤ 13, single
//! component, enormous diameter).

use crate::par;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};

/// Generates a planar road-network-like graph on a `side × side` lattice:
/// a random spanning tree of the lattice (a "maze", giving the huge diameter
/// and degree ≤ 4 backbone of real road networks) plus enough random extra
/// lattice edges to reach `avg_degree`.
///
/// `avg_degree` must be in `[2, 4)`; real road maps sit at 2.1–2.8.
pub fn road_map(side: usize, avg_degree: f64, seed: u64) -> CsrGraph {
    assert!(side >= 2);
    assert!(
        (2.0..4.0).contains(&avg_degree),
        "road maps have average degree in [2, 4)"
    );
    let n = side * side;

    // Enumerate lattice edges — deterministic, so row chunks need no stream
    // at all. The Fisher–Yates shuffle (one draw per swap) and the
    // union-find maze scan (draw-free) are inherently serial; the weight
    // stream, one draw per emitted edge, chunk-attaches afterwards.
    let at = |r: usize, c: usize| (r * side + c) as VertexId;
    let rows_per_chunk = (super::EMIT_CHUNK / (2 * side)).max(1);
    let mut lattice: Vec<(VertexId, VertexId)> = par::run_chunks(side, rows_per_chunk, |rows| {
        let mut out = Vec::with_capacity(rows.len() * 2 * side);
        for r in rows {
            for c in 0..side {
                if c + 1 < side {
                    out.push((at(r, c), at(r, c + 1)));
                }
                if r + 1 < side {
                    out.push((at(r, c), at(r + 1, c)));
                }
            }
        }
        out
    })
    .concat();
    // Shuffle, then take a spanning tree via union-find (random-order
    // Kruskal = uniform-ish random maze).
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for i in (1..lattice.len()).rev() {
        lattice.swap(i, rng.gen_range(0..=i));
    }
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(n);
    let mut extras: Vec<(VertexId, VertexId)> = Vec::new();
    for (u, v) in lattice {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru as usize] = rv;
            pairs.push((u, v));
        } else {
            extras.push((u, v));
        }
    }
    // Add back random lattice edges until the average degree target is hit.
    let target_edges = (n as f64 * avg_degree / 2.0) as usize;
    let need = target_edges.saturating_sub(n - 1).min(extras.len());
    pairs.extend(extras.into_iter().take(need));

    let triples = super::weighted(seed ^ 0x0AD5, 0, &pairs);
    GraphBuilder::from_normalized(n, triples).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn connected_and_low_degree() {
        let g = road_map(30, 2.4, 1);
        assert_eq!(connected_components(&g), 1);
        assert!(
            g.average_degree() < 4.0,
            "avg degree {}",
            g.average_degree()
        );
        assert!(g.max_degree() <= 4);
        g.validate().unwrap();
    }

    #[test]
    fn hits_degree_target() {
        let g = road_map(40, 2.8, 2);
        assert!(
            (g.average_degree() - 2.8).abs() < 0.2,
            "avg {}",
            g.average_degree()
        );
    }

    #[test]
    fn minimum_degree_is_nearly_a_tree() {
        // avg_degree = 2 targets n edges: the spanning tree (n - 1) plus at
        // most one shortcut.
        let g = road_map(10, 2.0, 3);
        let n = g.num_vertices();
        assert!(g.num_edges() >= n - 1 && g.num_edges() <= n);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(road_map(12, 2.5, 9), road_map(12, 2.5, 9));
    }

    #[test]
    #[should_panic(expected = "average degree")]
    fn rejects_dense_target() {
        road_map(10, 5.0, 1);
    }
}
