//! Internet-topology generator — twin of `internet` (average degree 3.1,
//! maximum degree ~151, single component): router-level topologies are
//! sparse trees-with-shortcuts whose few exchange points have high degree.

use crate::weights::WeightGen;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};

/// Generates a sparse preferential-attachment **tree** plus a sprinkle of
/// extra degree-biased shortcut edges, reaching the target `avg_degree`
/// (must be in `[2, 4)` so that, like the original, filtering is skipped).
pub fn internet_topo(n: usize, avg_degree: f64, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    assert!(
        (2.0..4.0).contains(&avg_degree),
        "internet twin is sparse (< 4)"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut wg = WeightGen::new(seed ^ 0x1_7e7);
    let mut b = GraphBuilder::with_capacity(n, (n as f64 * avg_degree / 2.0) as usize + 1);

    // Preferential-attachment tree: the urn trick again, starting from a
    // single root edge.
    let mut urn: Vec<VertexId> = vec![0, 1];
    b.add_edge(0, 1, wg.next());
    for v in 2..n as VertexId {
        let t = urn[rng.gen_range(0..urn.len())];
        b.add_edge(v, t, wg.next());
        urn.push(v);
        urn.push(t);
    }
    // Shortcuts: degree-biased pairs until the average-degree target.
    let target_edges = (n as f64 * avg_degree / 2.0) as usize;
    let extra = target_edges.saturating_sub(n - 1);
    for _ in 0..extra {
        let u = urn[rng.gen_range(0..urn.len())];
        let v = urn[rng.gen_range(0..urn.len())];
        if u != v {
            b.add_edge(u, v, wg.next());
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn sparse_and_connected() {
        let g = internet_topo(3000, 3.1, 1);
        assert_eq!(connected_components(&g), 1);
        assert!(g.average_degree() < 4.0);
        g.validate().unwrap();
    }

    #[test]
    fn has_high_degree_exchange_points() {
        let g = internet_topo(5000, 3.1, 2);
        assert!(
            g.max_degree() > 20 * g.average_degree() as usize,
            "expected hubs, max degree {}",
            g.max_degree()
        );
    }

    #[test]
    fn nearly_a_tree_at_degree_two() {
        // avg_degree = 2 targets n edges: tree (n - 1) plus at most one
        // shortcut (which may collapse as a duplicate).
        let g = internet_topo(100, 2.0, 3);
        assert!(g.num_edges() >= 99 && g.num_edges() <= 100);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(internet_topo(200, 3.0, 4), internet_topo(200, 3.0, 4));
    }
}
