//! Internet-topology generator — twin of `internet` (average degree 3.1,
//! maximum degree ~151, single component): router-level topologies are
//! sparse trees-with-shortcuts whose few exchange points have high degree.

use crate::par;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::Rng;

/// Generates a sparse preferential-attachment **tree** plus a sprinkle of
/// extra degree-biased shortcut edges, reaching the target `avg_degree`
/// (must be in `[2, 4)` so that, like the original, filtering is skipped).
pub fn internet_topo(n: usize, avg_degree: f64, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    assert!(
        (2.0..4.0).contains(&avg_degree),
        "internet twin is sparse (< 4)"
    );
    let target_edges = (n as f64 * avg_degree / 2.0) as usize;

    // Preferential-attachment tree via the urn trick, starting from a single
    // root edge. The urn grows by two entries per vertex, so it has the
    // deterministic length 2(v − 1) when vertex v attaches — all urn indices
    // can be drawn in parallel chunks (vertex v's draw is stream position
    // v − 2); only the O(n) draw-free urn resolution is serial.
    let rs = par::run_chunks(n.saturating_sub(2), super::EMIT_CHUNK, |r| {
        let mut rng = rand::rngs::StdRng::seed_at(seed, r.start as u64);
        r.map(|j| {
            let v = j + 2;
            rng.gen_range(0..2 * (v - 1))
        })
        .collect::<Vec<usize>>()
    })
    .concat();
    let mut urn: Vec<VertexId> = Vec::with_capacity(2 * (n - 1));
    urn.push(0);
    urn.push(1);
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(target_edges + 1);
    pairs.push((0, 1));
    for (j, &r) in rs.iter().enumerate() {
        let v = (j + 2) as VertexId;
        let t = urn[r];
        // The urn holds only earlier vertices, so (t, v) is normalized.
        pairs.push((t, v));
        urn.push(v);
        urn.push(t);
    }

    // Shortcuts: degree-biased pairs until the average-degree target. The
    // urn is frozen now, so attempt j draws its two endpoints at stream
    // position (n − 2) + 2·j; self-loops drop before a weight is consumed.
    let extra = target_edges.saturating_sub(n - 1);
    let shortcuts = par::run_chunks(extra, super::EMIT_CHUNK / 2, |r| {
        let mut rng = rand::rngs::StdRng::seed_at(seed, (n as u64 - 2) + 2 * r.start as u64);
        let mut out = Vec::with_capacity(r.len());
        for _ in r {
            let u = urn[rng.gen_range(0..urn.len())];
            let v = urn[rng.gen_range(0..urn.len())];
            if u != v {
                out.push((u.min(v), u.max(v)));
            }
        }
        out
    })
    .concat();
    pairs.extend(shortcuts);

    let triples = super::weighted(seed ^ 0x1_7e7, 0, &pairs);
    GraphBuilder::from_normalized(n, triples).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn sparse_and_connected() {
        let g = internet_topo(3000, 3.1, 1);
        assert_eq!(connected_components(&g), 1);
        assert!(g.average_degree() < 4.0);
        g.validate().unwrap();
    }

    #[test]
    fn has_high_degree_exchange_points() {
        let g = internet_topo(5000, 3.1, 2);
        assert!(
            g.max_degree() > 20 * g.average_degree() as usize,
            "expected hubs, max degree {}",
            g.max_degree()
        );
    }

    #[test]
    fn nearly_a_tree_at_degree_two() {
        // avg_degree = 2 targets n edges: tree (n - 1) plus at most one
        // shortcut (which may collapse as a duplicate).
        let g = internet_topo(100, 2.0, 3);
        assert!(g.num_edges() >= 99 && g.num_edges() <= 100);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(internet_topo(200, 3.0, 4), internet_topo(200, 3.0, 4));
    }
}
