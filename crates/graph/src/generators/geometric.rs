//! Random geometric graph generator — extra workload: points in the unit
//! square connected within a radius, with Euclidean-derived weights. The
//! closest synthetic analogue to sensor networks and mesh-like inputs, and
//! the natural setting for the paper's power-grid motivation (§1).

use crate::par;
use crate::{CsrGraph, GraphBuilder, VertexId, Weight};
use rand::Rng;

/// Generates a random geometric graph: `n` points uniform in the unit
/// square, an edge between every pair within distance `radius`, weighted by
/// the scaled squared Euclidean distance (shorter line = cheaper).
///
/// Uses a uniform grid of cell size `radius` so generation is
/// O(n · expected-degree) instead of O(n²).
pub fn geometric(n: usize, radius: f64, seed: u64) -> CsrGraph {
    assert!(n >= 1);
    assert!(radius > 0.0 && radius <= 1.0);
    // Point coordinates take two draws each, so chunk c opens the stream at
    // 2 · c.start. Everything downstream is draw-free: the bucketing pass is
    // a cheap serial O(n), and the neighbor scan chunks over points with
    // weights derived from distances rather than a stream.
    let pts: Vec<(f64, f64)> = par::run_chunks(n, super::EMIT_CHUNK / 2, |r| {
        let mut rng = rand::rngs::StdRng::seed_at(seed, 2 * r.start as u64);
        r.map(|_| (rng.gen(), rng.gen())).collect::<Vec<_>>()
    })
    .concat();

    // Bucket points into radius-sized cells.
    let cells = ((1.0 / radius).floor() as usize).max(1);
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in pts.iter().enumerate() {
        grid[cell_of(y) * cells + cell_of(x)].push(i as u32);
    }

    let r2 = radius * radius;
    let triples: Vec<(VertexId, VertexId, Weight)> = par::run_chunks(n, 1 << 12, |ir| {
        let mut out = Vec::new();
        for i in ir {
            let (x, y) = pts[i];
            let (cx, cy) = (cell_of(x), cell_of(y));
            for dy in cy.saturating_sub(1)..=(cy + 1).min(cells - 1) {
                for dx in cx.saturating_sub(1)..=(cx + 1).min(cells - 1) {
                    for &j in &grid[dy * cells + dx] {
                        if j as usize <= i {
                            continue; // one direction; builder mirrors
                        }
                        let (px, py) = pts[j as usize];
                        let d2 = (x - px) * (x - px) + (y - py) * (y - py);
                        if d2 <= r2 {
                            // Scaled squared distance as the line cost; +1
                            // keeps weights positive, and adding the pair hash
                            // via the builder's id tie-break keeps MSTs unique.
                            let w = (d2 / r2 * 1_000_000.0) as Weight + 1;
                            out.push((i as VertexId, j, w));
                        }
                    }
                }
            }
        }
        out
    })
    .concat();
    GraphBuilder::from_normalized(n, triples).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn radius_controls_density() {
        let sparse = geometric(500, 0.03, 1);
        let dense = geometric(500, 0.12, 1);
        assert!(dense.num_edges() > 4 * sparse.num_edges());
        dense.validate().unwrap();
        sparse.validate().unwrap();
    }

    #[test]
    fn above_connectivity_threshold_is_connected() {
        // r ~ sqrt(ln n / (pi n)) is the threshold; 3x above it.
        let n = 800;
        let r = 3.0 * ((n as f64).ln() / (std::f64::consts::PI * n as f64)).sqrt();
        let g = geometric(n, r, 2);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn weights_reflect_distance() {
        let g = geometric(300, 0.2, 3);
        // All weights within the scaled range.
        for e in g.edges() {
            assert!(e.weight >= 1 && e.weight <= 1_000_001);
        }
    }

    #[test]
    fn single_point() {
        let g = geometric(1, 0.5, 4);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(geometric(200, 0.1, 7), geometric(200, 0.1, 7));
    }
}
