//! Community-structured generators — twins of `coPapersDBLP` (co-authorship
//! near-cliques, average degree 56.4), `citationCiteseer` / `cit-Patents`
//! (citation networks), and `in-2004` (web-crawl host clusters with a
//! moderate number of connected components).

use crate::weights::WeightGen;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};

/// Co-authorship twin (`coPapersDBLP`): vertices grouped into communities of
/// geometric size; each community is a clique (papers induce author
/// cliques), and communities are chained to keep one connected component.
///
/// `mean_community` around 25–60 reproduces the original's very high average
/// degree — the input where the paper's throughput peaks and where the
/// filter-seed variance is largest.
pub fn copapers(n: usize, mean_community: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2 && mean_community >= 2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut wg = WeightGen::new(seed ^ 0xC0FA);
    let mut b = GraphBuilder::with_capacity(n, n * mean_community / 2);
    let mut start = 0usize;
    let mut prev_member: Option<VertexId> = None;
    while start < n {
        // Geometric-ish community size in [2, 3 * mean].
        let size = (2 + rng.gen_range(0..(2 * mean_community - 1)))
            .min(n - start)
            .max(1);
        let end = start + size;
        for i in start..end {
            for j in (i + 1)..end {
                b.add_edge(i as VertexId, j as VertexId, wg.next());
            }
        }
        // Chain to the previous community through one shared-author edge.
        if let Some(p) = prev_member {
            b.add_edge(p, start as VertexId, wg.next());
        }
        prev_member = Some((end - 1) as VertexId);
        start = end;
    }
    b.build()
}

/// Citation-network twin (`citationCiteseer`, `cit-Patents`): each vertex
/// cites `cites` earlier vertices with a recency window, which yields the
/// originals' moderate degree skew. `components > 1` splits the range into
/// independent citation universes (cit-Patents has 3,627 components).
pub fn citation(n: usize, cites: usize, components: usize, seed: u64) -> CsrGraph {
    let components = components.max(1);
    assert!(
        n >= 2 * components,
        "need at least two vertices per component"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut wg = WeightGen::new(seed ^ 0xC17E);
    let mut b = GraphBuilder::with_capacity(n, n * cites);
    let base = n / components;
    let mut start = 0usize;
    for comp in 0..components {
        let len = if comp == components - 1 {
            n - start
        } else {
            base
        };
        for i in 1..len {
            let v = (start + i) as VertexId;
            // Recency bias: cite within a window growing with sqrt(i).
            let window = ((i as f64).sqrt() as usize * 8 + 4).min(i);
            let k = cites.min(i);
            for _ in 0..k {
                let back = rng.gen_range(1..=window);
                let t = (start + i - back) as VertexId;
                b.add_edge(v, t, wg.next());
            }
        }
        start += len;
    }
    b.build()
}

/// Web-crawl twin (`in-2004`): host-sized clusters where pages attach
/// preferentially within their host (site hub pages become high-degree),
/// a few inter-host links, and `components` separate crawls.
pub fn webcrawl(n: usize, edges_per_vertex: usize, components: usize, seed: u64) -> CsrGraph {
    let components = components.max(1);
    assert!(n >= components * (edges_per_vertex + 1));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut wg = WeightGen::new(seed ^ 0x3EB);
    let mut b = GraphBuilder::with_capacity(n, n * edges_per_vertex);
    let base = n / components;
    let mut start = 0usize;
    for comp in 0..components {
        let len = if comp == components - 1 {
            n - start
        } else {
            base
        };
        // Within a crawl: hosts of ~geometric size, preferential inside.
        let mut host_start = start;
        let mut prev_host_hub: Option<VertexId> = None;
        while host_start < start + len {
            let host_len = (rng.gen_range(2..200)).min(start + len - host_start);
            let hub = host_start as VertexId;
            let mut urn: Vec<VertexId> = vec![hub];
            for i in 1..host_len {
                let v = (host_start + i) as VertexId;
                let k = edges_per_vertex.min(i);
                for _ in 0..k {
                    let t = urn[rng.gen_range(0..urn.len())];
                    if t != v {
                        b.add_edge(v, t, wg.next());
                    }
                }
                urn.push(v);
                urn.push(hub); // hub bias: site navigation links
            }
            if let Some(p) = prev_host_hub {
                b.add_edge(p, hub, wg.next());
            }
            prev_host_hub = Some(hub);
            host_start += host_len;
        }
        start += len;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn copapers_high_average_degree() {
        let g = copapers(3000, 30, 1);
        assert!(g.average_degree() > 20.0, "avg {}", g.average_degree());
        assert_eq!(connected_components(&g), 1);
        g.validate().unwrap();
    }

    #[test]
    fn copapers_chained_single_component() {
        let g = copapers(500, 8, 2);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn citation_single_component_has_one_cc() {
        let g = citation(2000, 4, 1, 3);
        assert_eq!(connected_components(&g), 1);
        g.validate().unwrap();
    }

    #[test]
    fn citation_component_count() {
        let g = citation(3000, 4, 25, 4);
        assert_eq!(connected_components(&g), 25);
    }

    #[test]
    fn citation_degree_regime() {
        let g = citation(4000, 4, 1, 5);
        assert!(
            (g.average_degree() - 8.0).abs() < 2.0,
            "avg {}",
            g.average_degree()
        );
    }

    #[test]
    fn webcrawl_components_and_hubs() {
        let g = webcrawl(6000, 8, 5, 6);
        assert_eq!(connected_components(&g), 5);
        assert!(g.max_degree() > 10 * g.average_degree() as usize);
        g.validate().unwrap();
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(copapers(400, 10, 9), copapers(400, 10, 9));
        assert_eq!(citation(400, 3, 2, 9), citation(400, 3, 2, 9));
        assert_eq!(webcrawl(400, 3, 2, 9), webcrawl(400, 3, 2, 9));
    }
}
