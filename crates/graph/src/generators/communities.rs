//! Community-structured generators — twins of `coPapersDBLP` (co-authorship
//! near-cliques, average degree 56.4), `citationCiteseer` / `cit-Patents`
//! (citation networks), and `in-2004` (web-crawl host clusters with a
//! moderate number of connected components).

use crate::par;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Co-authorship twin (`coPapersDBLP`): vertices grouped into communities of
/// geometric size; each community is a clique (papers induce author
/// cliques), and communities are chained to keep one connected component.
///
/// `mean_community` around 25–60 reproduces the original's very high average
/// degree — the input where the paper's throughput peaks and where the
/// filter-seed variance is largest.
pub fn copapers(n: usize, mean_community: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2 && mean_community >= 2);
    // Community sizes are the only topology draws (one per community); a
    // cheap serial prescan fixes each community's bounds, after which the
    // clique and chain emissions — the O(n · mean) bulk — chunk per
    // community, one weight draw per emission.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut comms: Vec<(usize, usize, Option<VertexId>)> =
        Vec::with_capacity(n / mean_community + 1);
    let mut start = 0usize;
    let mut prev_member: Option<VertexId> = None;
    while start < n {
        // Geometric-ish community size in [2, 3 * mean].
        let size = (2 + rng.gen_range(0..(2 * mean_community - 1)))
            .min(n - start)
            .max(1);
        let end = start + size;
        comms.push((start, end, prev_member));
        prev_member = Some((end - 1) as VertexId);
        start = end;
    }
    let pairs = par::par_map(&comms, |_, &(start, end, prev)| {
        let size = end - start;
        let mut out: Vec<(VertexId, VertexId)> = Vec::with_capacity(size * size / 2 + 1);
        for i in start..end {
            for j in (i + 1)..end {
                out.push((i as VertexId, j as VertexId));
            }
        }
        // Chain to the previous community through one shared-author edge.
        if let Some(p) = prev {
            out.push((p, start as VertexId));
        }
        out
    });
    let triples = super::weighted(seed ^ 0xC0FA, 0, &pairs.concat());
    GraphBuilder::from_normalized(n, triples).build()
}

/// Citation-network twin (`citationCiteseer`, `cit-Patents`): each vertex
/// cites `cites` earlier vertices with a recency window, which yields the
/// originals' moderate degree skew. `components > 1` splits the range into
/// independent citation universes (cit-Patents has 3,627 components).
pub fn citation(n: usize, cites: usize, components: usize, seed: u64) -> CsrGraph {
    let components = components.max(1);
    assert!(
        n >= 2 * components,
        "need at least two vertices per component"
    );
    // Vertex i of a component makes min(cites, i) citations, each exactly
    // one draw and one emission, so both streams sit at the closed-form
    // prefix `capped_sum(cites, i − 1)` — vertex subranges chunk freely.
    let base = n / components;
    // (component start, vertex subrange within it, topology-stream base)
    let mut tasks: Vec<(usize, Range<usize>, u64)> = Vec::new();
    let mut start = 0usize;
    let mut draws = 0u64;
    for comp in 0..components {
        let len = if comp == components - 1 {
            n - start
        } else {
            base
        };
        for r in par::chunk_ranges(len - 1, super::EMIT_CHUNK / cites.max(1)) {
            let (lo, hi) = (r.start + 1, r.end + 1);
            tasks.push((start, lo..hi, draws + super::capped_sum(cites, lo - 1)));
        }
        draws += super::capped_sum(cites, len - 1);
        start += len;
    }
    let pairs = par::par_map(&tasks, |_, (cstart, vr, sbase)| {
        let mut rng = rand::rngs::StdRng::seed_at(seed, *sbase);
        let mut out: Vec<(VertexId, VertexId)> = Vec::with_capacity(vr.len() * cites);
        for i in vr.clone() {
            let v = (cstart + i) as VertexId;
            // Recency bias: cite within a window growing with sqrt(i).
            let window = ((i as f64).sqrt() as usize * 8 + 4).min(i);
            let k = cites.min(i);
            for _ in 0..k {
                let back = rng.gen_range(1..=window);
                out.push(((cstart + i - back) as VertexId, v));
            }
        }
        out
    });
    let triples = super::weighted(seed ^ 0xC17E, 0, &pairs.concat());
    GraphBuilder::from_normalized(n, triples).build()
}

/// Web-crawl twin (`in-2004`): host-sized clusters where pages attach
/// preferentially within their host (site hub pages become high-degree),
/// a few inter-host links, and `components` separate crawls.
pub fn webcrawl(n: usize, edges_per_vertex: usize, components: usize, seed: u64) -> CsrGraph {
    let components = components.max(1);
    assert!(n >= components * (edges_per_vertex + 1));
    // Host sizes drive the loop structure, so a serial prescan replays just
    // the size draws — hopping over each host's attachment draws in O(1)
    // via the closed-form `capped_sum` and `StdRng::advance` — to find every
    // component's stream base. The per-host urn walks, the real work, then
    // run per component in parallel.
    let base_len = n / components;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut comps: Vec<(usize, usize, u64)> = Vec::with_capacity(components);
    let mut start = 0usize;
    let mut pos = 0u64;
    for comp in 0..components {
        let len = if comp == components - 1 {
            n - start
        } else {
            base_len
        };
        comps.push((start, len, pos));
        let mut host_start = start;
        while host_start < start + len {
            let host_len = (rng.gen_range(2..200)).min(start + len - host_start);
            pos += 1;
            let attempts = super::capped_sum(edges_per_vertex, host_len - 1);
            rng.advance(attempts);
            pos += attempts;
            host_start += host_len;
        }
        start += len;
    }
    let comp_pairs = par::par_map(&comps, |_, &(start, len, rng_base)| {
        let mut rng = rand::rngs::StdRng::seed_at(seed, rng_base);
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(len * edges_per_vertex);
        // Within a crawl: hosts of ~geometric size, preferential inside.
        let mut host_start = start;
        let mut prev_host_hub: Option<VertexId> = None;
        while host_start < start + len {
            let host_len = (rng.gen_range(2..200)).min(start + len - host_start);
            let hub = host_start as VertexId;
            let mut urn: Vec<VertexId> = vec![hub];
            for i in 1..host_len {
                let v = (host_start + i) as VertexId;
                let k = edges_per_vertex.min(i);
                for _ in 0..k {
                    let t = urn[rng.gen_range(0..urn.len())];
                    if t != v {
                        // The urn holds the hub and earlier pages, all < v.
                        pairs.push((t, v));
                    }
                }
                urn.push(v);
                urn.push(hub); // hub bias: site navigation links
            }
            if let Some(p) = prev_host_hub {
                pairs.push((p, hub));
            }
            prev_host_hub = Some(hub);
            host_start += host_len;
        }
        pairs
    });
    let triples = super::weighted(seed ^ 0x3EB, 0, &comp_pairs.concat());
    GraphBuilder::from_normalized(n, triples).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn copapers_high_average_degree() {
        let g = copapers(3000, 30, 1);
        assert!(g.average_degree() > 20.0, "avg {}", g.average_degree());
        assert_eq!(connected_components(&g), 1);
        g.validate().unwrap();
    }

    #[test]
    fn copapers_chained_single_component() {
        let g = copapers(500, 8, 2);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn citation_single_component_has_one_cc() {
        let g = citation(2000, 4, 1, 3);
        assert_eq!(connected_components(&g), 1);
        g.validate().unwrap();
    }

    #[test]
    fn citation_component_count() {
        let g = citation(3000, 4, 25, 4);
        assert_eq!(connected_components(&g), 25);
    }

    #[test]
    fn citation_degree_regime() {
        let g = citation(4000, 4, 1, 5);
        assert!(
            (g.average_degree() - 8.0).abs() < 2.0,
            "avg {}",
            g.average_degree()
        );
    }

    #[test]
    fn webcrawl_components_and_hubs() {
        let g = webcrawl(6000, 8, 5, 6);
        assert_eq!(connected_components(&g), 5);
        assert!(g.max_degree() > 10 * g.average_degree() as usize);
        g.validate().unwrap();
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(copapers(400, 10, 9), copapers(400, 10, 9));
        assert_eq!(citation(400, 3, 2, 9), citation(400, 3, 2, 9));
        assert_eq!(webcrawl(400, 3, 2, 9), webcrawl(400, 3, 2, 9));
    }
}
