//! 2D grid generator — twin of `2d-2e20.sym` (type "grid", average degree
//! 4.0, maximum degree 4, single connected component).

use crate::par;
use crate::weights::WeightGen;
use crate::{CsrGraph, GraphBuilder, VertexId};

/// Generates a `side × side` 4-connected grid with uniform random weights.
///
/// Properties: `side²` vertices, `2·side·(side−1)` edges, average degree just
/// under 4 (so, like the original, **no filtering phase** is triggered),
/// maximum degree 4, one connected component.
///
/// ```
/// let g = ecl_graph::generators::grid2d(8, 42);
/// assert_eq!(g.num_vertices(), 64);
/// assert_eq!(g.num_edges(), 2 * 8 * 7);
/// assert_eq!(g.max_degree(), 4);
/// ```
pub fn grid2d(side: usize, seed: u64) -> CsrGraph {
    assert!(side >= 1, "grid needs at least one vertex per side");
    let n = side * side;
    let at = |r: usize, c: usize| (r * side + c) as VertexId;
    // Every full row consumes 2·side − 1 weight draws (side − 1 rightward,
    // side downward); only the last row differs and no chunk starts after
    // it, so a row chunk opens the stream at r · (2·side − 1).
    let rows_per_chunk = (super::EMIT_CHUNK / (2 * side)).max(1);
    let triples = par::run_chunks(side, rows_per_chunk, |rows| {
        let mut wg = WeightGen::at(seed, (rows.start * (2 * side - 1)) as u64);
        let mut out = Vec::with_capacity(rows.len() * 2 * side);
        for r in rows {
            for c in 0..side {
                if c + 1 < side {
                    out.push((at(r, c), at(r, c + 1), wg.next()));
                }
                if r + 1 < side {
                    out.push((at(r, c), at(r + 1, c), wg.next()));
                }
            }
        }
        out
    })
    .concat();
    GraphBuilder::from_normalized(n, triples).build()
}

/// Sharded twin of [`grid2d`]: emits shard `k` of `of` without touching the
/// rest of the grid. The union over `k in 0..of` is the exact emission
/// multiset `grid2d` feeds its builder.
///
/// The grid generator is already chunked by row ranges with closed-form
/// weight offsets (`r · (2·side − 1)`), so sharding is free: shard `k`
/// simply takes every row chunk with index ≡ `k` (mod `of`).
pub fn grid2d_shard(
    side: usize,
    seed: u64,
    k: usize,
    of: usize,
) -> Vec<(VertexId, VertexId, crate::Weight)> {
    assert!(side >= 1, "grid needs at least one vertex per side");
    assert!(of >= 1, "need at least one shard");
    assert!(k < of, "shard index {k} out of range for {of} shards");
    let at = |r: usize, c: usize| (r * side + c) as VertexId;
    let rows_per_chunk = (super::EMIT_CHUNK / (2 * side)).max(1);
    let chunks = par::chunk_ranges(side, rows_per_chunk);
    let mine: Vec<usize> = (k..chunks.len()).step_by(of).collect();
    par::par_map(&mine, |_, &c| {
        let rows = chunks[c].clone();
        let mut wg = WeightGen::at(seed, (rows.start * (2 * side - 1)) as u64);
        let mut out = Vec::with_capacity(rows.len() * 2 * side);
        for r in rows {
            for c in 0..side {
                if c + 1 < side {
                    out.push((at(r, c), at(r, c + 1), wg.next()));
                }
                if r + 1 < side {
                    out.push((at(r, c), at(r + 1, c), wg.next()));
                }
            }
        }
        out
    })
    .concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn counts_match_formula() {
        let g = grid2d(10, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 2 * 10 * 9);
        g.validate().unwrap();
    }

    #[test]
    fn degrees_bounded_by_four() {
        let g = grid2d(8, 2);
        assert_eq!(g.max_degree(), 4);
        assert!(g.average_degree() < 4.0);
    }

    #[test]
    fn single_component() {
        let g = grid2d(16, 3);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn single_vertex_grid() {
        let g = grid2d(1, 0);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(grid2d(6, 9), grid2d(6, 9));
    }
}
