//! Synthetic graph generators.
//!
//! The paper evaluates on 17 downloaded graphs (Table 2). Those datasets are
//! not available offline, so each generator here produces a *structural twin*
//! of one input class: same degree regime (the filtering heuristic keys on
//! average degree ≥ 4), same skew (scale-free vs bounded-degree), same
//! connected-component structure (MST vs MSF inputs), and a CPU-feasible
//! size. The twin-to-original mapping lives in [`crate::suite()`].
//!
//! All generators are deterministic in their seed.

pub mod communities;
pub mod geometric;
pub mod grid;
pub mod internet;
pub mod planar;
pub mod preferential;
pub mod random;
pub mod rmat;
pub mod road;
pub mod smallworld;

pub use communities::{citation, copapers, webcrawl};
pub use geometric::geometric;
pub use grid::grid2d;
pub use internet::internet_topo;
pub use planar::delaunay_like;
pub use preferential::preferential_attachment;
pub use random::uniform_random;
pub use rmat::{kronecker, rmat};
pub use road::road_map;
pub use smallworld::small_world;
