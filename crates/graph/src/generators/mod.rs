//! Synthetic graph generators.
//!
//! The paper evaluates on 17 downloaded graphs (Table 2). Those datasets are
//! not available offline, so each generator here produces a *structural twin*
//! of one input class: same degree regime (the filtering heuristic keys on
//! average degree ≥ 4), same skew (scale-free vs bounded-degree), same
//! connected-component structure (MST vs MSF inputs), and a CPU-feasible
//! size. The twin-to-original mapping lives in [`crate::suite()`].
//!
//! All generators are deterministic in their seed — and, since the chunked
//! rewrite, deterministic in the thread budget too. Each generator splits
//! its work into data-size-keyed chunks whose RNG streams open mid-way via
//! `StdRng::seed_at` / [`WeightGen::at`] at *closed-form* offsets (one
//! counter jump, no replay), so the emitted edge multiset is byte-identical
//! to the historical serial emission at any thread count. Two facts carry
//! the scheme:
//!
//! * the builder canonicalizes by sorting `(u, v, w)` triples, so only the
//!   *multiset* of emissions matters, never their order;
//! * every generator consumes exactly one weight draw per emitted edge (the
//!   sole exception, `small_world`, burns a draw on dropped self-loops and
//!   accounts for it explicitly), so the weight stream can be chunk-attached
//!   after topology by emission index.
//!
//! Where a topology stream is value-dependent (urn processes, shuffles), the
//! serial part is confined to the cheapest possible scan — component stream
//! bases, an O(n) urn resolution — and everything else still chunks. The
//! golden hashes in `tests/golden_hashes.rs` pin the bytes.

use crate::par;
use crate::weights::WeightGen;
use crate::{VertexId, Weight};

pub mod communities;
pub mod geometric;
pub mod grid;
pub mod internet;
pub mod planar;
pub mod preferential;
pub mod random;
pub mod rmat;
pub mod road;
pub mod smallworld;

pub use communities::{citation, copapers, webcrawl};
pub use geometric::geometric;
pub use grid::{grid2d, grid2d_shard};
pub use internet::internet_topo;
pub use planar::delaunay_like;
pub use preferential::preferential_attachment;
pub use random::{uniform_random, UniformRandomShards};
pub use rmat::{kronecker, rmat};
pub use road::road_map;
pub use smallworld::small_world;

/// Emissions per parallel chunk for the helpers below.
pub(crate) const EMIT_CHUNK: usize = 1 << 16;

/// Attaches `wseed`'s weight stream to `pairs`: pair `k` receives draw
/// `skip + k`, exactly as if a serial loop had called `wg.next()` once per
/// emission. Chunk `c` opens the stream at `skip + c.start` in O(1).
pub(crate) fn weighted(
    wseed: u64,
    skip: u64,
    pairs: &[(VertexId, VertexId)],
) -> Vec<(VertexId, VertexId, Weight)> {
    par::run_chunks(pairs.len(), EMIT_CHUNK, |r| {
        let mut wg = WeightGen::at(wseed, skip + r.start as u64);
        pairs[r]
            .iter()
            .map(|&(u, v)| (u, v, wg.next()))
            .collect::<Vec<_>>()
    })
    .concat()
}

/// `Σ_{j=1..upto} min(cap, j)` — the closed-form draw count of loops that
/// make `min(cap, i)` draws for vertex `i`, used by the community
/// generators to jump their streams to a vertex or host boundary.
pub(crate) fn capped_sum(cap: usize, upto: usize) -> u64 {
    let (cap, upto) = (cap as u64, upto as u64);
    if upto <= cap {
        upto * (upto + 1) / 2
    } else {
        cap * (cap + 1) / 2 + (upto - cap) * cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_matches_serial_stream() {
        let pairs: Vec<(VertexId, VertexId)> = (0..1000).map(|i| (i, i + 1)).collect();
        let chunked = weighted(42, 7, &pairs);
        let mut wg = WeightGen::at(42, 7);
        for (k, &(u, v, w)) in chunked.iter().enumerate() {
            assert_eq!((u, v), pairs[k]);
            assert_eq!(w, wg.next());
        }
    }

    #[test]
    fn capped_sum_matches_naive() {
        for cap in [1usize, 3, 8] {
            for upto in 0..50 {
                let naive: u64 = (1..=upto).map(|j| j.min(cap) as u64).sum();
                assert_eq!(capped_sum(cap, upto), naive, "cap {cap} upto {upto}");
            }
        }
    }
}
