//! Uniform random graph generator — twin of `r4-2e23.sym` (type "random",
//! average degree 8, tight maximum degree, single connected component).

use crate::par;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};

/// Generates an Erdős–Rényi-style graph with `n` vertices and approximately
/// `n · avg_degree / 2` undirected edges, made connected by threading a
/// random Hamiltonian-path backbone through a shuffled vertex order (the
/// original `r4-2e23.sym` is a single component).
///
/// Degrees concentrate near the average (binomial tail), matching the
/// original's small maximum degree (26 at average 8).
pub fn uniform_random(n: usize, avg_degree: f64, seed: u64) -> CsrGraph {
    assert!(n >= 2, "need at least two vertices");
    assert!(
        avg_degree >= 2.0,
        "connected backbone already uses degree 2"
    );
    let target_edges = ((n as f64) * avg_degree / 2.0) as usize;

    // Connectivity backbone: random permutation path (n − 1 edges). The
    // Fisher–Yates shuffle is inherently serial and consumes the stream's
    // first n − 1 draws; everything after it chunks.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let backbone: Vec<(VertexId, VertexId)> = order
        .windows(2)
        .map(|w| (w[0].min(w[1]), w[0].max(w[1])))
        .collect();

    // Remaining edges uniformly at random; duplicates collapse in the
    // builder, so slightly overshoot to land near the target. Attempt j
    // draws its endpoints at stream position (n − 1) + 2·j, and self-loops
    // are dropped before a weight is consumed.
    let remaining = target_edges.saturating_sub(n - 1);
    let overshoot = remaining + remaining / 64;
    let extra = par::run_chunks(overshoot, super::EMIT_CHUNK / 2, |r| {
        let mut rng = rand::rngs::StdRng::seed_at(seed, (n - 1 + 2 * r.start) as u64);
        let mut out = Vec::with_capacity(r.len());
        for _ in r {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                out.push((u.min(v), u.max(v)));
            }
        }
        out
    })
    .concat();

    let wseed = seed ^ 0xDEAD_BEEF;
    let mut triples = super::weighted(wseed, 0, &backbone);
    triples.extend(super::weighted(wseed, (n - 1) as u64, &extra));
    GraphBuilder::from_normalized(n, triples).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn edge_count_near_target() {
        let g = uniform_random(2000, 8.0, 5);
        let target = 2000 * 4;
        let got = g.num_edges();
        assert!(
            (got as f64) > target as f64 * 0.95 && (got as f64) < target as f64 * 1.1,
            "edge count {got} far from target {target}"
        );
        g.validate().unwrap();
    }

    #[test]
    fn connected() {
        let g = uniform_random(500, 8.0, 7);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn degree_concentrates() {
        let g = uniform_random(5000, 8.0, 11);
        // Binomial max degree stays within a small factor of the mean.
        assert!(
            g.max_degree() < 40,
            "max degree {} too skewed",
            g.max_degree()
        );
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(uniform_random(300, 6.0, 3), uniform_random(300, 6.0, 3));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(uniform_random(300, 6.0, 3), uniform_random(300, 6.0, 4));
    }
}
