//! Uniform random graph generator — twin of `r4-2e23.sym` (type "random",
//! average degree 8, tight maximum degree, single connected component).

use crate::par;
use crate::{CsrGraph, GraphBuilder, VertexId, Weight};
use rand::{Rng, SeedableRng};

/// Generates an Erdős–Rényi-style graph with `n` vertices and approximately
/// `n · avg_degree / 2` undirected edges, made connected by threading a
/// random Hamiltonian-path backbone through a shuffled vertex order (the
/// original `r4-2e23.sym` is a single component).
///
/// Degrees concentrate near the average (binomial tail), matching the
/// original's small maximum degree (26 at average 8).
pub fn uniform_random(n: usize, avg_degree: f64, seed: u64) -> CsrGraph {
    assert!(n >= 2, "need at least two vertices");
    assert!(
        avg_degree >= 2.0,
        "connected backbone already uses degree 2"
    );
    let target_edges = ((n as f64) * avg_degree / 2.0) as usize;

    // Connectivity backbone: random permutation path (n − 1 edges). The
    // Fisher–Yates shuffle is inherently serial and consumes the stream's
    // first n − 1 draws; everything after it chunks.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let backbone: Vec<(VertexId, VertexId)> = order
        .windows(2)
        .map(|w| (w[0].min(w[1]), w[0].max(w[1])))
        .collect();

    // Remaining edges uniformly at random; duplicates collapse in the
    // builder, so slightly overshoot to land near the target. Attempt j
    // draws its endpoints at stream position (n − 1) + 2·j, and self-loops
    // are dropped before a weight is consumed.
    let remaining = target_edges.saturating_sub(n - 1);
    let overshoot = remaining + remaining / 64;
    let extra = par::run_chunks(overshoot, super::EMIT_CHUNK / 2, |r| {
        let mut rng = rand::rngs::StdRng::seed_at(seed, (n - 1 + 2 * r.start) as u64);
        let mut out = Vec::with_capacity(r.len());
        for _ in r {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u != v {
                out.push((u.min(v), u.max(v)));
            }
        }
        out
    })
    .concat();

    let wseed = seed ^ 0xDEAD_BEEF;
    let mut triples = super::weighted(wseed, 0, &backbone);
    triples.extend(super::weighted(wseed, (n - 1) as u64, &extra));
    GraphBuilder::from_normalized(n, triples).build()
}

/// Sharded twin of [`uniform_random`]: the identical emission multiset, cut
/// into `K` shards whose union rebuilds the exact monolithic graph.
///
/// Construction runs one cheap pair-only pass over the attempt stream to
/// learn each chunk's kept-pair count (self-loops consume no weight draw, so
/// a chunk's weight-stream offset is the number of pairs *kept* before it —
/// a value no closed form predicts). After that, [`generate_shard`]
/// materializes only its own chunks: O(total/K) triples per call, never the
/// whole edge list.
///
/// The cached shuffle order (`4·n` bytes) and per-chunk offsets are the
/// source's entire resident footprint; DESIGN.md §19 counts them against the
/// out-of-core RSS budget.
///
/// [`generate_shard`]: UniformRandomShards::generate_shard
pub struct UniformRandomShards {
    n: usize,
    seed: u64,
    /// The monolith's Fisher–Yates backbone order.
    order: Vec<VertexId>,
    /// Canonical extra-attempt chunking (same `chunk_ranges` call as
    /// [`uniform_random`], so stream offsets line up token for token).
    chunks: Vec<std::ops::Range<usize>>,
    /// `kept_before[c]`: non-self-loop pairs kept by every chunk before `c`,
    /// i.e. chunk `c`'s weight-stream offset past the backbone draws.
    kept_before: Vec<u64>,
}

impl UniformRandomShards {
    /// Plans the shard decomposition of `uniform_random(n, avg_degree, seed)`.
    pub fn new(n: usize, avg_degree: f64, seed: u64) -> Self {
        assert!(n >= 2, "need at least two vertices");
        assert!(
            avg_degree >= 2.0,
            "connected backbone already uses degree 2"
        );
        let target_edges = ((n as f64) * avg_degree / 2.0) as usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }

        let remaining = target_edges.saturating_sub(n - 1);
        let overshoot = remaining + remaining / 64;
        let chunks = par::chunk_ranges(overshoot, super::EMIT_CHUNK / 2);
        let kept: Vec<u64> = par::par_map(&chunks, |_, r| {
            let mut rng = rand::rngs::StdRng::seed_at(seed, (n - 1 + 2 * r.start) as u64);
            let mut kept = 0u64;
            for _ in r.clone() {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                kept += u64::from(u != v);
            }
            kept
        });
        let mut kept_before = Vec::with_capacity(kept.len());
        let mut acc = 0u64;
        for k in &kept {
            kept_before.push(acc);
            acc += k;
        }
        Self {
            n,
            seed,
            order,
            chunks,
            kept_before,
        }
    }

    /// Number of vertices of the (never materialized) monolithic graph.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Upper bound on the total emission count across all shards.
    pub fn approx_edges(&self) -> usize {
        self.n - 1 + self.chunks.last().map_or(0, |r| r.end)
    }

    /// Emits shard `k` of `of`: a disjoint slice of the monolithic emission
    /// multiset. The union over `k in 0..of` is byte-identical to what
    /// [`uniform_random`] feeds its builder, for any `of ≥ 1`.
    ///
    /// Each shard takes a balanced contiguous slice of the backbone (weight
    /// draw for backbone pair `i` is simply `i`) plus every extra-attempt
    /// chunk with index ≡ `k` (mod `of`), whose weight stream opens at the
    /// precomputed kept-pair offset.
    pub fn generate_shard(&self, k: usize, of: usize) -> Vec<(VertexId, VertexId, Weight)> {
        assert!(of >= 1, "need at least one shard");
        assert!(k < of, "shard index {k} out of range for {of} shards");
        let n = self.n;
        let wseed = self.seed ^ 0xDEAD_BEEF;

        let (lo, hi) = (k * (n - 1) / of, (k + 1) * (n - 1) / of);
        let backbone: Vec<(VertexId, VertexId)> = self.order[lo..=hi.max(lo)]
            .windows(2)
            .map(|w| (w[0].min(w[1]), w[0].max(w[1])))
            .collect();
        let mut triples = super::weighted(wseed, lo as u64, &backbone);

        let mine: Vec<usize> = (k..self.chunks.len()).step_by(of).collect();
        let extra = par::par_map(&mine, |_, &c| {
            let r = self.chunks[c].clone();
            let mut rng = rand::rngs::StdRng::seed_at(self.seed, (n - 1 + 2 * r.start) as u64);
            let mut pairs = Vec::with_capacity(r.len());
            for _ in r {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                if u != v {
                    pairs.push((u.min(v), u.max(v)));
                }
            }
            super::weighted(wseed, (n - 1) as u64 + self.kept_before[c], &pairs)
        });
        triples.extend(extra.into_iter().flatten());
        triples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn edge_count_near_target() {
        let g = uniform_random(2000, 8.0, 5);
        let target = 2000 * 4;
        let got = g.num_edges();
        assert!(
            (got as f64) > target as f64 * 0.95 && (got as f64) < target as f64 * 1.1,
            "edge count {got} far from target {target}"
        );
        g.validate().unwrap();
    }

    #[test]
    fn connected() {
        let g = uniform_random(500, 8.0, 7);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn degree_concentrates() {
        let g = uniform_random(5000, 8.0, 11);
        // Binomial max degree stays within a small factor of the mean.
        assert!(
            g.max_degree() < 40,
            "max degree {} too skewed",
            g.max_degree()
        );
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(uniform_random(300, 6.0, 3), uniform_random(300, 6.0, 3));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(uniform_random(300, 6.0, 3), uniform_random(300, 6.0, 4));
    }
}
