//! Uniform random graph generator — twin of `r4-2e23.sym` (type "random",
//! average degree 8, tight maximum degree, single connected component).

use crate::weights::WeightGen;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};

/// Generates an Erdős–Rényi-style graph with `n` vertices and approximately
/// `n · avg_degree / 2` undirected edges, made connected by threading a
/// random Hamiltonian-path backbone through a shuffled vertex order (the
/// original `r4-2e23.sym` is a single component).
///
/// Degrees concentrate near the average (binomial tail), matching the
/// original's small maximum degree (26 at average 8).
pub fn uniform_random(n: usize, avg_degree: f64, seed: u64) -> CsrGraph {
    assert!(n >= 2, "need at least two vertices");
    assert!(
        avg_degree >= 2.0,
        "connected backbone already uses degree 2"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut wg = WeightGen::new(seed ^ 0xDEAD_BEEF);
    let target_edges = ((n as f64) * avg_degree / 2.0) as usize;
    let mut b = GraphBuilder::with_capacity(n, target_edges + n);

    // Connectivity backbone: random permutation path (n - 1 edges).
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for w in order.windows(2) {
        b.add_edge(w[0], w[1], wg.next());
    }

    // Remaining edges uniformly at random. Duplicates collapse in the
    // builder, so slightly overshoot to land near the target.
    let remaining = target_edges.saturating_sub(n - 1);
    let overshoot = remaining + remaining / 64;
    for _ in 0..overshoot {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            b.add_edge(u, v, wg.next());
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn edge_count_near_target() {
        let g = uniform_random(2000, 8.0, 5);
        let target = 2000 * 4;
        let got = g.num_edges();
        assert!(
            (got as f64) > target as f64 * 0.95 && (got as f64) < target as f64 * 1.1,
            "edge count {got} far from target {target}"
        );
        g.validate().unwrap();
    }

    #[test]
    fn connected() {
        let g = uniform_random(500, 8.0, 7);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn degree_concentrates() {
        let g = uniform_random(5000, 8.0, 11);
        // Binomial max degree stays within a small factor of the mean.
        assert!(
            g.max_degree() < 40,
            "max degree {} too skewed",
            g.max_degree()
        );
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(uniform_random(300, 6.0, 3), uniform_random(300, 6.0, 3));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(uniform_random(300, 6.0, 3), uniform_random(300, 6.0, 4));
    }
}
