//! RMAT / Kronecker generators — twins of `rmat16.sym`, `rmat22.sym`
//! (recursive-matrix graphs with hundreds of thousands of connected
//! components and power-law degrees) and `kron_g500-logn21` (Graph500
//! Kronecker: extreme skew, very high average degree, most vertices
//! isolated).

use crate::par;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::Rng;

/// Probabilities of the four RMAT quadrants; must sum to ~1.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Top-left quadrant probability (self-similarity / skew driver).
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
}

impl RmatParams {
    /// Classic RMAT parameters used by the GTgraph generator that produced
    /// the paper's `rmat*.sym` inputs.
    pub const RMAT: Self = Self {
        a: 0.45,
        b: 0.15,
        c: 0.15,
        d: 0.25,
    };

    /// Graph500 Kronecker parameters (much heavier skew).
    pub const KRONECKER: Self = Self {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };
}

/// Generates an RMAT graph with `2^scale` vertices and approximately
/// `edge_factor · 2^scale` undirected edges (before dedup; the returned
/// graph's count is slightly lower, as with the real generator).
///
/// No connectivity fix-up is applied: like the original inputs, the result
/// has many small connected components plus isolated vertices, making it an
/// **MSF** input.
pub fn rmat_with_params(scale: u32, edge_factor: usize, p: RmatParams, seed: u64) -> CsrGraph {
    assert!((1..32).contains(&scale), "scale must be in 1..32");
    let sum = p.a + p.b + p.c + p.d;
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "quadrant probabilities must sum to 1"
    );
    let n = 1usize << scale;
    let m = edge_factor * n;
    // Every attempt walks `scale` quadrant levels, one draw per level,
    // whether or not it survives the self-loop check — so attempt i opens
    // the topology stream at i · scale, and chunks of attempts are
    // independent. Weights go to surviving attempts only, one per emission.
    let attempts_per_chunk = (super::EMIT_CHUNK / scale as usize).max(1);
    let pairs = par::run_chunks(m, attempts_per_chunk, |attempts| {
        let mut rng = rand::rngs::StdRng::seed_at(seed, attempts.start as u64 * u64::from(scale));
        let mut out: Vec<(VertexId, VertexId)> = Vec::with_capacity(attempts.len());
        for _ in attempts {
            let (mut lo_u, mut lo_v) = (0usize, 0usize);
            let mut half = n >> 1;
            while half > 0 {
                // Add per-level noise like GTgraph to avoid exact self-similarity.
                let r: f64 = rng.gen();
                let (du, dv) = if r < p.a {
                    (0, 0)
                } else if r < p.a + p.b {
                    (0, half)
                } else if r < p.a + p.b + p.c {
                    (half, 0)
                } else {
                    (half, half)
                };
                lo_u += du;
                lo_v += dv;
                half >>= 1;
            }
            if lo_u != lo_v {
                let (u, v) = (lo_u as VertexId, lo_v as VertexId);
                out.push((u.min(v), u.max(v)));
            }
        }
        out
    })
    .concat();
    let triples = super::weighted(seed ^ 0x5EED, 0, &pairs);
    GraphBuilder::from_normalized(n, triples).build()
}

/// RMAT graph with the classic parameter set (twin of `rmat16/22.sym`).
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    rmat_with_params(scale, edge_factor, RmatParams::RMAT, seed)
}

/// Graph500 Kronecker graph (twin of `kron_g500-logn21`): extreme degree
/// skew and a huge number of connected components (mostly isolated
/// vertices).
pub fn kronecker(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    rmat_with_params(scale, edge_factor, RmatParams::KRONECKER, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn vertex_count_is_power_of_two() {
        let g = rmat(10, 8, 1);
        assert_eq!(g.num_vertices(), 1024);
        g.validate().unwrap();
    }

    #[test]
    fn skew_isolates_some_vertices() {
        // The recursive-matrix skew leaves some high-id vertices unreached,
        // so even the raw generator yields an MSF input at moderate scale.
        let g = rmat(12, 8, 2);
        assert!(
            connected_components(&g) > 5,
            "RMAT should have isolated pockets, got {} CCs",
            connected_components(&g)
        );
    }

    #[test]
    fn kronecker_skewed_degrees() {
        let k = kronecker(12, 16, 3);
        let avg = k.average_degree();
        let max = k.max_degree() as f64;
        assert!(
            max > 10.0 * avg,
            "kron should be extremely skewed: avg {avg}, max {max}"
        );
    }

    #[test]
    fn kronecker_more_components_than_rmat() {
        let r = rmat(12, 8, 4);
        let k = kronecker(12, 8, 4);
        assert!(connected_components(&k) > connected_components(&r));
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(rmat(8, 8, 5), rmat(8, 8, 5));
        assert_ne!(rmat(8, 8, 5), rmat(8, 8, 6));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        rmat_with_params(
            4,
            2,
            RmatParams {
                a: 0.9,
                b: 0.9,
                c: 0.0,
                d: 0.0,
            },
            1,
        );
    }
}
