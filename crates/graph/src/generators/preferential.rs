//! Preferential-attachment generator — twin of the scale-free inputs
//! `amazon0601` (co-purchases), `soc-LiveJournal1` (community) and
//! `as-skitter` (Internet topology): power-law degree distribution with a
//! small number of very high-degree hubs, where vertex-centric codes lose
//! load balance and ECL-MST's hybrid parallelization shines.

use crate::par;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::Rng;

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices chosen proportionally to degree
/// (implemented with the standard repeated-endpoint urn).
///
/// `extra_components` splits the vertex range into that many independent
/// attachment processes, yielding an MSF input (e.g., `amazon0601` has 7
/// components).
pub fn preferential_attachment(
    n: usize,
    edges_per_vertex: usize,
    extra_components: usize,
    seed: u64,
) -> CsrGraph {
    assert!(edges_per_vertex >= 1);
    let components = extra_components.max(1);
    assert!(
        n >= components * (edges_per_vertex + 1),
        "each component needs at least edges_per_vertex + 1 vertices"
    );

    // Partition vertices into `components` contiguous ranges; the first gets
    // the remainder so it dominates (real inputs have one giant component).
    // Every attachment attempt consumes exactly one topology draw (the
    // self-loop check happens after the draw), so each component's stream
    // base is the closed-form Σ (len − k) · edges_per_vertex and components
    // generate in parallel; the urn walk inside a component stays serial.
    let base = n / components;
    let k = edges_per_vertex + 1;
    let mut comps: Vec<(usize, usize, u64)> = Vec::with_capacity(components);
    let mut start = 0usize;
    let mut draws = 0u64;
    for comp in 0..components {
        let len = if comp == components - 1 {
            n - start
        } else {
            base.min(n - start)
        };
        comps.push((start, len, draws));
        draws += ((len - k) * edges_per_vertex) as u64;
        start += len;
    }
    let comp_pairs = par::par_map(&comps, |_, &(start, len, rng_base)| {
        let mut rng = rand::rngs::StdRng::seed_at(seed, rng_base);
        // Urn of endpoints; every arc endpoint appears once, so sampling
        // uniformly from the urn is degree-proportional sampling.
        let mut urn: Vec<VertexId> = Vec::with_capacity(2 * len * edges_per_vertex);
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(len * edges_per_vertex);
        // Seed clique over the first edges_per_vertex + 1 vertices.
        for i in 0..k {
            for j in (i + 1)..k {
                let (u, v) = ((start + i) as VertexId, (start + j) as VertexId);
                pairs.push((u, v));
                urn.push(u);
                urn.push(v);
            }
        }
        for i in k..len {
            let v = (start + i) as VertexId;
            for _ in 0..edges_per_vertex {
                let t = urn[rng.gen_range(0..urn.len())];
                if t != v {
                    // The urn holds only v and earlier vertices, so (t, v)
                    // is already normalized.
                    pairs.push((t, v));
                    urn.push(v);
                    urn.push(t);
                }
            }
        }
        pairs
    });
    // One weight per emitted edge, consecutive across components.
    let triples = super::weighted(seed ^ 0xBA, 0, &comp_pairs.concat());
    GraphBuilder::from_normalized(n, triples).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn single_component_by_default() {
        let g = preferential_attachment(2000, 6, 1, 1);
        assert_eq!(connected_components(&g), 1);
        g.validate().unwrap();
    }

    #[test]
    fn component_count_matches() {
        let g = preferential_attachment(2100, 4, 7, 2);
        assert_eq!(connected_components(&g), 7);
    }

    #[test]
    fn scale_free_hubs() {
        let g = preferential_attachment(5000, 8, 1, 3);
        let avg = g.average_degree();
        let max = g.max_degree() as f64;
        assert!(max > 8.0 * avg, "expected hubs: avg {avg}, max {max}");
    }

    #[test]
    fn average_degree_near_2m() {
        let g = preferential_attachment(4000, 6, 1, 4);
        let avg = g.average_degree();
        assert!(
            (avg - 12.0).abs() < 2.0,
            "avg degree {avg} should be near 2·m = 12"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            preferential_attachment(500, 4, 1, 7),
            preferential_attachment(500, 4, 1, 7)
        );
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn rejects_too_small_components() {
        preferential_attachment(10, 4, 5, 1);
    }
}
