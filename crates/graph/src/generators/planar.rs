//! Planar triangulation generator — twin of `delaunay_n24` (Delaunay
//! triangulation: average degree 6, maximum degree 26, single component).

use crate::weights::WeightGen;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};

/// Generates a triangulated `side × side` lattice: all grid edges plus one
/// randomly oriented diagonal per cell. This matches a Delaunay
/// triangulation's key structure — planar, average degree ≈ 6, bounded
/// maximum degree, single connected component — at a fraction of the
/// generation cost of true Delaunay.
pub fn delaunay_like(side: usize, seed: u64) -> CsrGraph {
    assert!(side >= 2);
    let n = side * side;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut wg = WeightGen::new(seed ^ 0xDE1A);
    let at = |r: usize, c: usize| (r * side + c) as VertexId;
    let mut b = GraphBuilder::with_capacity(n, 3 * n);
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                b.add_edge(at(r, c), at(r, c + 1), wg.next());
            }
            if r + 1 < side {
                b.add_edge(at(r, c), at(r + 1, c), wg.next());
            }
            if r + 1 < side && c + 1 < side {
                // One diagonal per cell, random orientation.
                if rng.gen::<bool>() {
                    b.add_edge(at(r, c), at(r + 1, c + 1), wg.next());
                } else {
                    b.add_edge(at(r, c + 1), at(r + 1, c), wg.next());
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn average_degree_near_six() {
        let g = delaunay_like(40, 1);
        assert!(
            (g.average_degree() - 6.0).abs() < 0.5,
            "avg {}",
            g.average_degree()
        );
        g.validate().unwrap();
    }

    #[test]
    fn bounded_max_degree() {
        let g = delaunay_like(30, 2);
        assert!(g.max_degree() <= 8);
    }

    #[test]
    fn connected() {
        let g = delaunay_like(25, 3);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn edge_count_formula() {
        // grid edges + one diagonal per cell
        let side = 12;
        let g = delaunay_like(side, 4);
        let expected = 2 * side * (side - 1) + (side - 1) * (side - 1);
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(delaunay_like(9, 5), delaunay_like(9, 5));
    }
}
