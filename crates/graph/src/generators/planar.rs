//! Planar triangulation generator — twin of `delaunay_n24` (Delaunay
//! triangulation: average degree 6, maximum degree 26, single component).

use crate::par;
use crate::weights::WeightGen;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::Rng;

/// Generates a triangulated `side × side` lattice: all grid edges plus one
/// randomly oriented diagonal per cell. This matches a Delaunay
/// triangulation's key structure — planar, average degree ≈ 6, bounded
/// maximum degree, single connected component — at a fraction of the
/// generation cost of true Delaunay.
pub fn delaunay_like(side: usize, seed: u64) -> CsrGraph {
    assert!(side >= 2);
    let n = side * side;
    let at = |r: usize, c: usize| (r * side + c) as VertexId;
    // Rows before the last consume side − 1 orientation bits and 3·side − 2
    // weight draws each; the last row draws side − 1 weights and no bits.
    // No chunk starts after the last row, so both streams open at
    // closed-form per-row offsets.
    let rows_per_chunk = (super::EMIT_CHUNK / (3 * side)).max(1);
    let triples = par::run_chunks(side, rows_per_chunk, |rows| {
        let mut rng = rand::rngs::StdRng::seed_at(seed, (rows.start * (side - 1)) as u64);
        let mut wg = WeightGen::at(seed ^ 0xDE1A, (rows.start * (3 * side - 2)) as u64);
        let mut out = Vec::with_capacity(rows.len() * 3 * side);
        for r in rows {
            for c in 0..side {
                if c + 1 < side {
                    out.push((at(r, c), at(r, c + 1), wg.next()));
                }
                if r + 1 < side {
                    out.push((at(r, c), at(r + 1, c), wg.next()));
                }
                if r + 1 < side && c + 1 < side {
                    // One diagonal per cell, random orientation.
                    if rng.gen::<bool>() {
                        out.push((at(r, c), at(r + 1, c + 1), wg.next()));
                    } else {
                        out.push((at(r, c + 1), at(r + 1, c), wg.next()));
                    }
                }
            }
        }
        out
    })
    .concat();
    GraphBuilder::from_normalized(n, triples).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn average_degree_near_six() {
        let g = delaunay_like(40, 1);
        assert!(
            (g.average_degree() - 6.0).abs() < 0.5,
            "avg {}",
            g.average_degree()
        );
        g.validate().unwrap();
    }

    #[test]
    fn bounded_max_degree() {
        let g = delaunay_like(30, 2);
        assert!(g.max_degree() <= 8);
    }

    #[test]
    fn connected() {
        let g = delaunay_like(25, 3);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn edge_count_formula() {
        // grid edges + one diagonal per cell
        let side = 12;
        let g = delaunay_like(side, 4);
        let expected = 2 * side * (side - 1) + (side - 1) * (side - 1);
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(delaunay_like(9, 5), delaunay_like(9, 5));
    }
}
