//! Watts–Strogatz small-world generator — not one of the paper's 17 inputs,
//! but a standard extra workload for the ablation binaries: constant degree
//! like a grid, yet low diameter like a scale-free graph, which separates
//! the effects of Borůvka round count from degree skew.

use crate::par;
use crate::weights::WeightGen;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::{Rng, SeedableRng};

/// Generates a Watts–Strogatz ring: `n` vertices each connected to their
/// `k` nearest ring neighbors on each side, with every edge's far endpoint
/// rewired to a uniform random vertex with probability `beta`.
///
/// `beta = 0` gives a pure ring lattice (huge diameter), `beta = 1` an
/// almost-random graph (tiny diameter); the small-world regime is around
/// `beta ≈ 0.1`.
pub fn small_world(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(n >= 2 * k + 2, "ring needs n > 2k + 1");
    assert!(k >= 1);
    assert!((0.0..=1.0).contains(&beta));
    // The rewiring decision consumes one draw and a rewire one more, so
    // topology stream positions are value-dependent: that scan stays serial.
    // A pair with equal endpoints records a rewired self-loop — dropped, but
    // its weight draw was still consumed (the historical serial path
    // evaluated `wg.next()` before the builder rejected the loop), so the
    // weight index is the *iteration* index, not the emission index.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let total = n * k;
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(total);
    for v in 0..n {
        for off in 1..=k {
            let mut dst = ((v + off) % n) as VertexId;
            if rng.gen::<f64>() < beta {
                // Rewire: any vertex except v (self-loops dropped anyway,
                // duplicates collapse in the builder).
                dst = rng.gen_range(0..n as u32);
            }
            let u = v as VertexId;
            pairs.push((u.min(dst), u.max(dst)));
        }
    }
    let wseed = seed ^ 0x5311;
    let triples = par::run_chunks(total, super::EMIT_CHUNK, |r| {
        let mut wg = WeightGen::at(wseed, r.start as u64);
        pairs[r]
            .iter()
            .filter_map(|&(u, v)| {
                let w = wg.next();
                (u != v).then_some((u, v, w))
            })
            .collect::<Vec<_>>()
    })
    .concat();
    GraphBuilder::from_normalized(n, triples).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn ring_lattice_at_beta_zero() {
        let g = small_world(100, 2, 0.0, 1);
        assert_eq!(g.num_edges(), 200);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(connected_components(&g), 1);
        g.validate().unwrap();
    }

    #[test]
    fn rewiring_keeps_edge_budget_close() {
        let g = small_world(500, 3, 0.2, 2);
        // Rewiring can collide (dedup) but stays near n*k.
        assert!(
            g.num_edges() > 1400 && g.num_edges() <= 1500,
            "{}",
            g.num_edges()
        );
    }

    #[test]
    fn small_world_regime_connected() {
        let g = small_world(1000, 4, 0.1, 3);
        assert_eq!(connected_components(&g), 1);
        assert!((g.average_degree() - 8.0).abs() < 0.5);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(small_world(200, 2, 0.3, 9), small_world(200, 2, 0.3, 9));
        assert_ne!(small_world(200, 2, 0.3, 9), small_world(200, 2, 0.3, 10));
    }

    #[test]
    #[should_panic(expected = "ring needs")]
    fn rejects_tiny_ring() {
        small_world(4, 2, 0.0, 1);
    }
}
