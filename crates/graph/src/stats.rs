//! Graph statistics — everything needed to regenerate Table 2 of the paper
//! (edge count, vertex count, connected components, average and maximum
//! degree).

use crate::CsrGraph;

/// Summary statistics of a graph, mirroring the columns of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    /// Number of directed arcs, i.e. the paper's "Edges" column (the paper
    /// counts CSR arcs: each undirected edge twice).
    pub arcs: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Number of vertices.
    pub vertices: usize,
    /// Number of connected components.
    pub connected_components: usize,
    /// Average degree (`arcs / vertices`).
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
}

impl GraphStats {
    /// Computes all statistics for `g`.
    pub fn compute(g: &CsrGraph) -> Self {
        Self {
            arcs: g.num_arcs(),
            edges: g.num_edges(),
            vertices: g.num_vertices(),
            connected_components: connected_components(g),
            avg_degree: g.average_degree(),
            max_degree: g.max_degree(),
        }
    }

    /// True when the graph is a single connected component, i.e. an "MST
    /// input" in the paper's terminology (vs an "MSF input").
    pub fn is_mst_input(&self) -> bool {
        self.connected_components == 1
    }
}

/// Counts connected components with a sequential union-find pass over the
/// edge list (path halving + union by index).
pub fn connected_components(g: &CsrGraph) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for e in g.edges() {
        let (ru, rv) = (find(&mut parent, e.src), find(&mut parent, e.dst));
        if ru != rv {
            let (lo, hi) = (ru.min(rv), ru.max(rv));
            parent[lo as usize] = hi;
        }
    }
    (0..n as u32).filter(|&v| find(&mut parent, v) == v).count()
}

/// Labels each vertex with its component representative (useful for
/// verifying MSF structure per component).
pub fn component_labels(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for e in g.edges() {
        let (ru, rv) = (find(&mut parent, e.src), find(&mut parent, e.dst));
        if ru != rv {
            let (lo, hi) = (ru.min(rv), ru.max(rv));
            parent[lo as usize] = hi;
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn empty_graph_zero_components() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(connected_components(&g), 0);
    }

    #[test]
    fn isolated_vertices_each_a_component() {
        let g = GraphBuilder::new(7).build();
        assert_eq!(connected_components(&g), 7);
    }

    #[test]
    fn path_is_one_component() {
        let mut b = GraphBuilder::new(5);
        for v in 0..4 {
            b.add_edge(v, v + 1, 1);
        }
        assert_eq!(connected_components(&b.build()), 1);
    }

    #[test]
    fn two_triangles_two_components() {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v, 1);
        }
        let g = b.build();
        assert_eq!(connected_components(&g), 2);
        let stats = GraphStats::compute(&g);
        assert!(!stats.is_mst_input());
        assert_eq!(stats.edges, 6);
        assert_eq!(stats.max_degree, 2);
    }

    #[test]
    fn labels_partition_vertices() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let labels = component_labels(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[5]);
    }

    #[test]
    fn stats_match_direct_queries() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(1, 3, 1);
        let g = b.build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.arcs, 6);
        assert_eq!(s.max_degree, 3);
        assert!((s.avg_degree - 1.5).abs() < 1e-12);
        assert!(s.is_mst_input());
    }
}
