//! Edge-weight assignment.
//!
//! The paper inserts random weights into unweighted inputs so an MST exists
//! ("For unweighted graphs, we inserted random weights"). All our synthetic
//! generators do the same through [`WeightGen`]; a deterministic hash-based
//! variant keeps weights reproducible independent of generation order.

use crate::{VertexId, Weight};
use rand::{Rng, SeedableRng};

/// Maximum weight produced by the default generators. Kept well below
/// `u32::MAX` so the packed 64-bit reservation word (`weight:edge_id`) never
/// collides with the `u64::MAX` "empty" sentinel used by `atomicMin`.
pub const MAX_WEIGHT: Weight = 100_000_000;

/// Source of edge weights.
#[derive(Debug, Clone)]
pub struct WeightGen {
    rng: rand::rngs::StdRng,
    max: Weight,
}

impl WeightGen {
    /// Uniform weights in `1..=MAX_WEIGHT` from the given seed.
    pub fn new(seed: u64) -> Self {
        Self::with_max(seed, MAX_WEIGHT)
    }

    /// Uniform weights in `1..=max`.
    pub fn with_max(seed: u64, max: Weight) -> Self {
        assert!(max >= 1);
        Self {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            max,
        }
    }

    /// The generator positioned `skip` draws into `seed`'s stream:
    /// equivalent to `new(seed)` followed by `skip` discarded draws, in
    /// O(1). Each [`next`](Self::next) consumes exactly one underlying draw,
    /// so `skip` is simply "how many weights were handed out before this
    /// point" — the anchor the chunked generators use to start mid-stream.
    pub fn at(seed: u64, skip: u64) -> Self {
        Self {
            rng: rand::rngs::StdRng::seed_at(seed, skip),
            max: MAX_WEIGHT,
        }
    }

    /// Next random weight.
    // Deliberately named like the generator it is; an Iterator impl would
    // suggest an unbounded stream is its main interface, which it is not.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> Weight {
        self.rng.gen_range(1..=self.max)
    }
}

/// Deterministic weight for an endpoint pair, independent of insertion
/// order (an order-insensitive mix of the normalized pair and a seed).
///
/// Used where the same logical edge must get the same weight even when
/// produced twice (e.g., symmetrized generators).
pub fn hash_weight(u: VertexId, v: VertexId, seed: u64) -> Weight {
    let (a, b) = (u.min(v) as u64, u.max(v) as u64);
    let mut x =
        a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ seed;
    // splitmix64 finalizer
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % MAX_WEIGHT as u64) as Weight + 1
}

/// Scalar oracle for [`hash_weights_into`].
pub fn hash_weights_into_scalar(pairs: &[(VertexId, VertexId)], seed: u64, out: &mut Vec<Weight>) {
    out.clear();
    out.reserve_exact(pairs.len());
    for &(u, v) in pairs {
        out.push(hash_weight(u, v, seed));
    }
}

/// Batch [`hash_weight`]: fills `out` with the weight of every endpoint
/// pair, processing the input in [`crate::simd::CHUNK`]-sized blocks so the
/// pair slice and the output window stay cache-resident and the (pure
/// integer, branch-free) mix pipelines across iterations. Bit-identical to
/// the scalar oracle; the `force-scalar` feature dispatches to it directly.
#[cfg(not(feature = "force-scalar"))]
pub fn hash_weights_into(pairs: &[(VertexId, VertexId)], seed: u64, out: &mut Vec<Weight>) {
    out.clear();
    out.reserve_exact(pairs.len());
    for block in pairs.chunks(crate::simd::CHUNK) {
        out.extend(block.iter().map(|&(u, v)| hash_weight(u, v, seed)));
    }
}

/// Batch [`hash_weight`] (scalar dispatch under `force-scalar`).
#[cfg(feature = "force-scalar")]
#[inline]
pub fn hash_weights_into(pairs: &[(VertexId, VertexId)], seed: u64, out: &mut Vec<Weight>) {
    hash_weights_into_scalar(pairs, seed, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_in_range() {
        let mut g = WeightGen::new(1);
        for _ in 0..1000 {
            let w = g.next();
            assert!((1..=MAX_WEIGHT).contains(&w));
        }
    }

    #[test]
    fn with_max_respects_bound() {
        let mut g = WeightGen::with_max(7, 3);
        for _ in 0..100 {
            assert!((1..=3).contains(&g.next()));
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let a: Vec<_> = {
            let mut g = WeightGen::new(42);
            (0..64).map(|_| g.next()).collect()
        };
        let b: Vec<_> = {
            let mut g = WeightGen::new(42);
            (0..64).map(|_| g.next()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_sequence() {
        let mut a = WeightGen::new(1);
        let mut b = WeightGen::new(2);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert!(same < 8);
    }

    #[test]
    fn hash_weight_symmetric() {
        for (u, v) in [(0, 1), (5, 9), (100, 3)] {
            assert_eq!(hash_weight(u, v, 11), hash_weight(v, u, 11));
        }
    }

    #[test]
    fn hash_weight_seed_sensitive() {
        assert_ne!(hash_weight(4, 9, 1), hash_weight(4, 9, 2));
    }

    #[test]
    fn hash_weight_positive_and_bounded() {
        for i in 0..500u32 {
            let w = hash_weight(i, i + 1, 3);
            assert!((1..=MAX_WEIGHT).contains(&w));
        }
    }

    #[test]
    fn batch_matches_scalar_across_chunk_boundary() {
        let pairs: Vec<(u32, u32)> = (0..(crate::simd::CHUNK as u32 * 2 + 3))
            .map(|i| (i, i.wrapping_mul(7) ^ 1))
            .collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        hash_weights_into(&pairs, 11, &mut a);
        hash_weights_into_scalar(&pairs, 11, &mut b);
        assert_eq!(a, b);
        assert_eq!(a[0], hash_weight(pairs[0].0, pairs[0].1, 11));
        // Empty input stays empty.
        hash_weights_into(&[], 11, &mut a);
        assert!(a.is_empty());
    }
}
