//! Chunked SWAR kernels for the hot weight scans.
//!
//! Stable Rust (and this workspace's `forbid(unsafe_code)`) rules out both
//! `core::simd` and `std::arch` intrinsics, so the vectorized paths here use
//! SWAR — *SIMD within a register*: two 32-bit weight lanes packed into one
//! `u64` and compared branch-free with carry-isolated arithmetic. The scans
//! additionally process their input in [`CHUNK`]-sized blocks so one block of
//! weights plus its output stays L1-resident, and the inner loops are written
//! over `chunks_exact` pairs so the compiler can unroll and autovectorize
//! them on top of the SWAR math.
//!
//! **Parity contract**: every kernel keeps its scalar oracle (`*_scalar`)
//! compiled in all configurations, and the dispatching public function is
//! required to be *bit-identical* to the oracle on every input — not just on
//! well-formed graphs but on adversarial corners (`u32::MAX` weights, empty
//! slices, odd lengths, all-tied values). The `force-scalar` cargo feature
//! reroutes the public functions to the oracles wholesale, which CI uses to
//! prove no caller depends on anything but the contract. Property tests at
//! the bottom of this file pin the equivalence.

use crate::Weight;

/// Elements per cache block: 4096 `u32`s = 16 KiB of input, small enough
/// that a block plus a same-sized `u64` output window fits in a 48 KiB L1d.
pub const CHUNK: usize = 4096;

/// Per-lane MSB mask for two 32-bit lanes in a `u64`.
const LANE_MSB: u64 = 0x8000_0000_8000_0000;

/// Packs two `u32` lanes into one SWAR word (lane 0 low, lane 1 high).
#[inline]
fn lanes(lo: u32, hi: u32) -> u64 {
    lo as u64 | (hi as u64) << 32
}

/// Per-lane unsigned `x < y` over two packed 32-bit lanes. The result has
/// the MSB of each lane set exactly where the comparison holds.
///
/// Derivation: `r = (x | MSB) - (y & !MSB)` performs both lane subtractions
/// without cross-lane borrow (each lane's minuend has its MSB set and its
/// subtrahend has it clear, so every lane difference is nonnegative), and
/// the MSB of `r`'s lane is clear exactly when the low 31 bits of `x` are
/// below those of `y`. The lane MSBs of `x` and `y` themselves are then
/// folded in by ordinary bitwise logic.
#[inline]
fn lanes_lt(x: u64, y: u64) -> u64 {
    let r = (x | LANE_MSB).wrapping_sub(y & !LANE_MSB);
    ((!x & y) | (!(x ^ y) & !r)) & LANE_MSB
}

/// Scalar oracle for [`count_lt`].
pub fn count_lt_scalar(ws: &[Weight], t: Weight) -> usize {
    ws.iter().filter(|&&w| w < t).count()
}

/// SWAR implementation of [`count_lt`]: two lanes per compare, popcount of
/// the lane mask, blocked in [`CHUNK`]s.
pub fn count_lt_swar(ws: &[Weight], t: Weight) -> usize {
    let tt = lanes(t, t);
    let mut total = 0u64;
    for block in ws.chunks(CHUNK) {
        let mut pairs = block.chunks_exact(2);
        for p in pairs.by_ref() {
            total += lanes_lt(lanes(p[0], p[1]), tt).count_ones() as u64;
        }
        for &w in pairs.remainder() {
            total += (w < t) as u64;
        }
    }
    total as usize
}

/// Number of weights strictly below `t` (the phase-1 filter predicate).
#[cfg(not(feature = "force-scalar"))]
#[inline]
pub fn count_lt(ws: &[Weight], t: Weight) -> usize {
    count_lt_swar(ws, t)
}

/// Number of weights strictly below `t` (the phase-1 filter predicate).
#[cfg(feature = "force-scalar")]
#[inline]
pub fn count_lt(ws: &[Weight], t: Weight) -> usize {
    count_lt_scalar(ws, t)
}

/// Scalar oracle for [`pack_into`].
pub fn pack_into_scalar(ws: &[Weight], ids: &[u32], out: &mut Vec<u64>) {
    assert_eq!(ws.len(), ids.len());
    out.clear();
    out.reserve_exact(ws.len());
    for (&w, &id) in ws.iter().zip(ids) {
        out.push((w as u64) << 32 | id as u64);
    }
}

/// Chunked implementation of [`pack_into`]: the weight/id slices advance in
/// lockstep [`CHUNK`]s, and each block is an exact-bounds zip the compiler
/// turns into wide moves (no per-element bounds checks, no `Edge` structs).
pub fn pack_into_chunked(ws: &[Weight], ids: &[u32], out: &mut Vec<u64>) {
    assert_eq!(ws.len(), ids.len());
    out.clear();
    out.reserve_exact(ws.len());
    for (wb, ib) in ws.chunks(CHUNK).zip(ids.chunks(CHUNK)) {
        out.extend(
            wb.iter()
                .zip(ib)
                .map(|(&w, &id)| (w as u64) << 32 | id as u64),
        );
    }
}

/// Fills `out` with the packed reservation words `(weight << 32) | id` for
/// a weight/id slice pair — the ECL-MST 64-bit `atomicMin` payload.
#[cfg(not(feature = "force-scalar"))]
#[inline]
pub fn pack_into(ws: &[Weight], ids: &[u32], out: &mut Vec<u64>) {
    pack_into_chunked(ws, ids, out);
}

/// Fills `out` with the packed reservation words `(weight << 32) | id` for
/// a weight/id slice pair — the ECL-MST 64-bit `atomicMin` payload.
#[cfg(feature = "force-scalar")]
#[inline]
pub fn pack_into(ws: &[Weight], ids: &[u32], out: &mut Vec<u64>) {
    pack_into_scalar(ws, ids, out);
}

/// Scalar oracle for [`has_empty_pack`].
pub fn has_empty_pack_scalar(ws: &[Weight], ids: &[u32]) -> bool {
    ws.iter()
        .zip(ids)
        .any(|(&w, &id)| w == u32::MAX && id == u32::MAX)
}

/// SWAR implementation of [`has_empty_pack`]: an arc packs to the `EMPTY`
/// sentinel iff `w & id == u32::MAX`, i.e. iff a lane of `!(w & id)` is
/// zero — detected two lanes at a time with the classic SWAR zero-lane
/// probe `(v - 1·lanes) & !v & MSB·lanes` (borrow across lanes can only
/// flag a false extra lane when a lower lane really was zero, which leaves
/// the *any*-lane answer exact).
pub fn has_empty_pack_swar(ws: &[Weight], ids: &[u32]) -> bool {
    const LANE_LSB: u64 = 0x0000_0001_0000_0001;
    debug_assert_eq!(ws.len(), ids.len());
    for (wb, ib) in ws.chunks(CHUNK).zip(ids.chunks(CHUNK)) {
        let mut wp = wb.chunks_exact(2);
        let mut ip = ib.chunks_exact(2);
        for (w, i) in wp.by_ref().zip(ip.by_ref()) {
            let v = !lanes(w[0] & i[0], w[1] & i[1]);
            if v.wrapping_sub(LANE_LSB) & !v & LANE_MSB != 0 {
                return true;
            }
        }
        for (&w, &i) in wp.remainder().iter().zip(ip.remainder()) {
            if w & i == u32::MAX {
                return true;
            }
        }
    }
    false
}

/// True when any arc would pack to the reservation-word `EMPTY` sentinel
/// (`weight == u32::MAX && id == u32::MAX`) — the upload-boundary backstop.
#[cfg(not(feature = "force-scalar"))]
#[inline]
pub fn has_empty_pack(ws: &[Weight], ids: &[u32]) -> bool {
    has_empty_pack_swar(ws, ids)
}

/// True when any arc would pack to the reservation-word `EMPTY` sentinel
/// (`weight == u32::MAX && id == u32::MAX`) — the upload-boundary backstop.
#[cfg(feature = "force-scalar")]
#[inline]
pub fn has_empty_pack(ws: &[Weight], ids: &[u32]) -> bool {
    has_empty_pack_scalar(ws, ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lanes_lt_truth_table_corners() {
        let cases = [
            (0u32, 0u32, false),
            (0, 1, true),
            (1, 0, false),
            (5, 7, true),
            (7, 5, false),
            (u32::MAX, u32::MAX, false),
            (u32::MAX - 1, u32::MAX, true),
            (u32::MAX, 0, false),
            (0, u32::MAX, true),
            (0x8000_0000, 0x7FFF_FFFF, false),
            (0x7FFF_FFFF, 0x8000_0000, true),
            (0x8000_0000, 0x8000_0001, true),
        ];
        for &(x0, y0, e0) in &cases {
            for &(x1, y1, e1) in &cases {
                let m = lanes_lt(lanes(x0, x1), lanes(y0, y1));
                assert_eq!(m & 0x8000_0000 != 0, e0, "low lane {x0} < {y0}");
                assert_eq!(m >> 63 != 0, e1, "high lane {x1} < {y1}");
                assert_eq!(m & !LANE_MSB, 0, "only lane MSBs may be set");
            }
        }
    }

    #[test]
    fn count_lt_adversarial_corners() {
        // Empty, all-tied, zero threshold, MAX weights, odd lengths.
        let corners: [(&[u32], u32); 8] = [
            (&[], 5),
            (&[42; 7], 42),
            (&[42; 7], 43),
            (&[0, 1, 2], 0),
            (&[u32::MAX, u32::MAX, 0], u32::MAX),
            (&[u32::MAX - 1], u32::MAX),
            (&[1], 2),
            (&[0x8000_0000, 0x7FFF_FFFF, 0x8000_0001], 0x8000_0000),
        ];
        for (ws, t) in corners {
            assert_eq!(
                count_lt_swar(ws, t),
                count_lt_scalar(ws, t),
                "ws={ws:?} t={t}"
            );
            assert_eq!(count_lt(ws, t), count_lt_scalar(ws, t));
        }
    }

    #[test]
    fn has_empty_pack_corners() {
        let max = u32::MAX;
        // (ws, ids, expected)
        let cases: [(&[u32], &[u32], bool); 7] = [
            (&[], &[], false),
            (&[max], &[max], true),
            (&[max], &[0], false),
            (&[0], &[max], false),
            (&[1, max, 3], &[1, max, 3], true),
            (&[1, 2, max], &[1, 2, max], true),
            (&[max, max, max], &[max - 1, 7, 0], false),
        ];
        for (ws, ids, expected) in cases {
            assert_eq!(has_empty_pack_swar(ws, ids), expected, "{ws:?}/{ids:?}");
            assert_eq!(has_empty_pack_scalar(ws, ids), expected);
            assert_eq!(has_empty_pack(ws, ids), expected);
        }
    }

    #[test]
    fn pack_into_matches_scalar_on_boundaries() {
        let ws = [0u32, 1, u32::MAX, 7, u32::MAX - 1];
        let ids = [u32::MAX, 0, 3, 9, 1];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        pack_into_chunked(&ws, &ids, &mut a);
        pack_into_scalar(&ws, &ids, &mut b);
        assert_eq!(a, b);
        assert_eq!(a[0], u32::MAX as u64);
        assert_eq!(a[1], 1u64 << 32);
    }

    proptest! {
        #[test]
        fn count_lt_parity(ws in proptest::collection::vec(any::<u32>(), 0..6000),
                           t in any::<u32>()) {
            prop_assert_eq!(count_lt_swar(&ws, t), count_lt_scalar(&ws, t));
        }

        #[test]
        fn count_lt_parity_tied(w in any::<u32>(), len in 0usize..5000, t in any::<u32>()) {
            // All-tied inputs: the worst case for lane-comparison mistakes.
            let ws = vec![w; len];
            prop_assert_eq!(count_lt_swar(&ws, t), count_lt_scalar(&ws, t));
        }

        #[test]
        fn pack_into_parity(pairs in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..6000)) {
            let ws: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            let ids: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            pack_into_chunked(&ws, &ids, &mut a);
            pack_into_scalar(&ws, &ids, &mut b);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn has_empty_pack_parity(pairs in proptest::collection::vec(
            // Bias lanes toward u32::MAX so real sentinels actually occur.
            (any::<u32>(), any::<u32>(), any::<bool>(), any::<bool>()),
            0..5000,
        )) {
            let ws: Vec<u32> = pairs.iter().map(|p| if p.2 { u32::MAX } else { p.0 }).collect();
            let ids: Vec<u32> = pairs.iter().map(|p| if p.3 { u32::MAX } else { p.1 }).collect();
            prop_assert_eq!(has_empty_pack_swar(&ws, &ids), has_empty_pack_scalar(&ws, &ids));
        }
    }
}
