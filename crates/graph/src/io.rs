//! Graph serialization.
//!
//! Two formats:
//! * **ECL binary CSR** — mirrors the "binary 32-bit CSR format" the paper's
//!   artifact requires for all inputs: little-endian header (`magic`, vertex
//!   count, arc count) followed by the `nindex`, `nlist`, `eweight` and
//!   edge-id arrays.
//! * **text edge list** — a DIMACS-inspired human-readable format
//!   (`p <n> <m>` header, one `e <u> <v> <w>` line per undirected edge).

use crate::csr::CsrGraph;
use crate::GraphBuilder;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic number identifying the binary format ("ECLG" in ASCII).
pub const MAGIC: u32 = 0x4543_4C47;
/// Current binary format version.
pub const VERSION: u32 = 1;

/// Errors produced by the binary graph format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryError {
    /// A count does not fit the 32-bit header fields — writing it would
    /// silently truncate and corrupt the graph.
    CountOverflow {
        /// Which count overflowed (`"vertex"` or `"arc"`).
        what: &'static str,
        /// The offending value.
        value: usize,
    },
    /// Malformed framing or graph structure on the read path.
    Format(String),
}

impl std::fmt::Display for BinaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinaryError::CountOverflow { what, value } => write!(
                f,
                "{what} count {value} exceeds the 32-bit binary CSR format"
            ),
            BinaryError::Format(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for BinaryError {}

impl From<String> for BinaryError {
    fn from(msg: String) -> Self {
        BinaryError::Format(msg)
    }
}

/// Validates that the vertex and arc counts fit the 32-bit header fields.
///
/// Split out from [`to_binary`] so the overflow path is testable without
/// materializing a ≥ 2^32-arc graph.
fn check_counts(vertices: usize, arcs: usize) -> Result<(u32, u32), BinaryError> {
    let n = u32::try_from(vertices).map_err(|_| BinaryError::CountOverflow {
        what: "vertex",
        value: vertices,
    })?;
    let a = u32::try_from(arcs).map_err(|_| BinaryError::CountOverflow {
        what: "arc",
        value: arcs,
    })?;
    Ok((n, a))
}

fn put_u32_le(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Reads the next little-endian `u32`, advancing the slice. The caller has
/// already validated the length.
fn get_u32_le(data: &mut &[u8]) -> u32 {
    let (word, rest) = data.split_at(4);
    *data = rest;
    u32::from_le_bytes(word.try_into().expect("4-byte split"))
}

/// Serializes a graph into the ECL binary CSR format.
///
/// Returns [`BinaryError::CountOverflow`] when a count does not fit the
/// 32-bit header — the format cannot represent such graphs, and writing a
/// truncated header would deserialize into a different (corrupt) graph.
pub fn to_binary(g: &CsrGraph) -> Result<Vec<u8>, BinaryError> {
    let (n, arcs) = check_counts(g.num_vertices(), g.num_arcs())?;
    let mut buf = Vec::with_capacity(16 + 4 * (g.row_starts().len() + 3 * g.num_arcs()));
    put_u32_le(&mut buf, MAGIC);
    put_u32_le(&mut buf, VERSION);
    put_u32_le(&mut buf, n);
    put_u32_le(&mut buf, arcs);
    for &x in g.row_starts() {
        put_u32_le(&mut buf, x);
    }
    for &x in g.adjacency() {
        put_u32_le(&mut buf, x);
    }
    for &x in g.arc_weights() {
        put_u32_le(&mut buf, x);
    }
    for &x in g.arc_edge_ids() {
        put_u32_le(&mut buf, x);
    }
    Ok(buf)
}

/// Deserializes a graph from the ECL binary CSR format, validating both the
/// framing and the graph invariants.
///
/// The header is distrusted: counts that disagree with the payload length,
/// odd arc counts (impossible for an undirected graph), and arrays that
/// violate any CSR invariant are all rejected.
pub fn from_binary(mut data: &[u8]) -> Result<CsrGraph, BinaryError> {
    if data.len() < 16 {
        return Err(BinaryError::Format("truncated header".into()));
    }
    let magic = get_u32_le(&mut data);
    if magic != MAGIC {
        return Err(BinaryError::Format(format!(
            "bad magic {magic:#x}, expected {MAGIC:#x}"
        )));
    }
    let version = get_u32_le(&mut data);
    if version != VERSION {
        return Err(BinaryError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let n = get_u32_le(&mut data) as u64;
    let arcs = get_u32_le(&mut data) as u64;
    if !arcs.is_multiple_of(2) {
        return Err(BinaryError::Format(format!(
            "header arc count {arcs} is odd (undirected graphs store mirror arc pairs)"
        )));
    }
    // u64 arithmetic: the worst-case expected length (~64 GiB) overflows
    // usize on 32-bit hosts, and a header must never be able to trigger
    // that overflow into a spurious length match.
    let need = 4u64 * ((n + 1) + 3 * arcs);
    if data.len() as u64 != need {
        return Err(BinaryError::Format(format!(
            "payload length {} disagrees with header counts (n={n}, arcs={arcs}): expected {need}",
            data.len()
        )));
    }
    let (n, arcs) = (n as usize, arcs as usize);
    let mut read_vec =
        |len: usize| -> Vec<u32> { (0..len).map(|_| get_u32_le(&mut data)).collect() };
    let row_starts = read_vec(n + 1);
    let adjacency = read_vec(arcs);
    let arc_weights = read_vec(arcs);
    let arc_edge_ids = read_vec(arcs);
    CsrGraph::from_parts(row_starts, adjacency, arc_weights, arc_edge_ids)
        .map_err(BinaryError::from)
}

/// Writes the binary format to a file.
pub fn write_binary(g: &CsrGraph, path: &Path) -> io::Result<()> {
    let bytes = to_binary(g).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    File::create(path)?.write_all(&bytes)
}

/// Reads the binary format from a file.
pub fn read_binary(path: &Path) -> io::Result<CsrGraph> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    from_binary(&data).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Serializes a graph as a text edge list.
pub fn to_text(g: &CsrGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!("p {} {}\n", g.num_vertices(), g.num_edges()));
    for e in g.edges() {
        out.push_str(&format!("e {} {} {}\n", e.src, e.dst, e.weight));
    }
    out
}

/// Parses the text edge-list format. Lines starting with `c` are comments.
/// Self-loops and duplicates are cleaned exactly like any other input.
pub fn from_text(text: &str) -> Result<CsrGraph, String> {
    let mut builder: Option<GraphBuilder> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("line {}: bad vertex count", lineno + 1))?;
                let _m: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("line {}: bad edge count", lineno + 1))?;
                if builder.is_some() {
                    return Err(format!("line {}: duplicate problem line", lineno + 1));
                }
                builder = Some(GraphBuilder::new(n));
            }
            Some("e") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| format!("line {}: edge before problem line", lineno + 1))?;
                let mut next_u32 = || -> Result<u32, String> {
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| format!("line {}: malformed edge", lineno + 1))
                };
                let u = next_u32()?;
                let v = next_u32()?;
                let w = next_u32()?;
                if (u as usize) >= b.num_vertices() || (v as usize) >= b.num_vertices() {
                    return Err(format!("line {}: endpoint out of range", lineno + 1));
                }
                b.add_edge(u, v, w);
            }
            Some(tok) => return Err(format!("line {}: unknown record '{tok}'", lineno + 1)),
            None => {}
        }
    }
    builder
        .map(GraphBuilder::build)
        .ok_or_else(|| "missing problem line".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::grid2d;

    #[test]
    fn binary_roundtrip() {
        let g = grid2d(9, 4);
        let bytes = to_binary(&g).unwrap();
        let h = from_binary(&bytes).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let g = grid2d(3, 1);
        let mut bytes = to_binary(&g).unwrap();
        bytes[0] ^= 0xFF;
        assert!(from_binary(&bytes)
            .unwrap_err()
            .to_string()
            .contains("magic"));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = grid2d(3, 1);
        let bytes = to_binary(&g).unwrap();
        assert!(from_binary(&bytes[..bytes.len() - 4]).is_err());
        assert!(from_binary(&bytes[..8]).is_err());
    }

    #[test]
    fn binary_rejects_corrupted_payload() {
        let g = grid2d(3, 1);
        let mut bytes = to_binary(&g).unwrap();
        // Corrupt an adjacency entry to an out-of-range vertex.
        let header = 16 + 4 * g.row_starts().len();
        bytes[header..header + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(from_binary(&bytes).is_err());
    }

    #[test]
    fn counts_beyond_u32_are_typed_errors() {
        // A graph with ≥ 2^32 arcs cannot be materialized in a test, so the
        // overflow guard is exercised directly: pre-fix, these counts were
        // silently truncated by `as u32`.
        let over = (u32::MAX as usize) + 1;
        assert_eq!(
            check_counts(over, 0),
            Err(BinaryError::CountOverflow {
                what: "vertex",
                value: over
            })
        );
        assert_eq!(
            check_counts(3, over),
            Err(BinaryError::CountOverflow {
                what: "arc",
                value: over
            })
        );
        assert_eq!(check_counts(3, 4), Ok((3, 4)));
        let err = BinaryError::CountOverflow {
            what: "arc",
            value: over,
        };
        assert!(err.to_string().contains("32-bit"), "{err}");
    }

    #[test]
    fn binary_rejects_odd_header_arc_count() {
        // Framing-level check: an odd arc count is caught before any array
        // is parsed, with an arc-pair-specific error.
        let mut bytes = Vec::new();
        put_u32_le(&mut bytes, MAGIC);
        put_u32_le(&mut bytes, VERSION);
        put_u32_le(&mut bytes, 0); // n = 0
        put_u32_le(&mut bytes, 1); // arcs = 1 (odd)
        bytes.extend_from_slice(&[0u8; 16]); // length-consistent payload
        let err = from_binary(&bytes).unwrap_err().to_string();
        assert!(err.contains("odd"), "{err}");
    }

    #[test]
    fn binary_rejects_header_payload_disagreement() {
        let g = grid2d(4, 2);
        let mut bytes = to_binary(&g).unwrap();
        // Inflate the header arc count (keeping it even); the payload no
        // longer matches.
        let arcs = g.num_arcs() as u32 + 2;
        bytes[12..16].copy_from_slice(&arcs.to_le_bytes());
        let err = from_binary(&bytes).unwrap_err().to_string();
        assert!(err.contains("disagrees"), "{err}");
    }

    #[test]
    fn text_roundtrip() {
        let g = grid2d(5, 2);
        let text = to_text(&g);
        let h = from_text(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn text_parses_comments_and_blanks() {
        let text = "c a comment\n\np 3 2\ne 0 1 10\nc mid comment\ne 1 2 20\n";
        let g = from_text(text).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_rejects_edge_before_header() {
        assert!(from_text("e 0 1 5\n").is_err());
    }

    #[test]
    fn text_rejects_out_of_range() {
        assert!(from_text("p 2 1\ne 0 5 1\n").is_err());
    }

    #[test]
    fn text_rejects_unknown_record() {
        assert!(from_text("p 2 1\nx 0 1 1\n").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ecl_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.eclg");
        let g = grid2d(7, 3);
        write_binary(&g, &path).unwrap();
        let h = read_binary(&path).unwrap();
        assert_eq!(g, h);
        std::fs::remove_file(&path).ok();
    }
}
