//! Edge-list ingestion and CSR construction.
//!
//! Implements the paper's input cleaning (§4): "we modified the graphs to
//! eliminate self-loops and multiple edges between the same two vertices. We
//! added any missing back edges to make the graphs undirected."

use crate::csr::CsrGraph;
use crate::par;
use crate::{VertexId, Weight};
use rayon::prelude::*;

/// Accumulates undirected weighted edges and produces a clean [`CsrGraph`].
///
/// * self-loops are dropped,
/// * parallel edges are collapsed keeping the **lightest** weight (any MST of
///   the multigraph uses only lightest parallels, so this preserves MSTs),
/// * each surviving undirected edge gets a fresh id and two mirror arcs.
///
/// ```
/// use ecl_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1, 10);
/// b.add_edge(1, 0, 3); // parallel: lighter weight wins
/// b.add_edge(2, 2, 1); // self-loop: dropped
/// b.add_edge(2, 3, 7);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.neighbors(0).next().unwrap().weight, 3);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    /// Normalized as (min endpoint, max endpoint, weight).
    edges: Vec<(VertexId, VertexId, Weight)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    ///
    /// # Panics
    /// If `num_vertices` exceeds `u32::MAX` (the 32-bit CSR limit).
    pub fn new(num_vertices: usize) -> Self {
        assert!(
            num_vertices <= u32::MAX as usize,
            "binary 32-bit CSR format supports at most 2^32 - 1 vertices"
        );
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates a builder expecting roughly `edge_hint` edges.
    pub fn with_capacity(num_vertices: usize, edge_hint: usize) -> Self {
        let mut b = Self::new(num_vertices);
        b.edges.reserve(edge_hint);
        b
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Adds an undirected edge. Self-loops are silently dropped; duplicates
    /// are resolved at [`build`](Self::build) time.
    ///
    /// # Panics
    /// If either endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u},{v}) out of range for {} vertices",
            self.num_vertices
        );
        if u == v {
            return;
        }
        self.edges.push((u.min(v), u.max(v), w));
    }

    /// Adds every edge from an iterator of `(u, v, w)` triples.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId, Weight)>>(&mut self, it: I) {
        for (u, v, w) in it {
            self.add_edge(u, v, w);
        }
    }

    /// Number of raw (pre-dedup) edges added so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Builds directly from an already-normalized edge list, skipping the
    /// per-edge `add_edge` bookkeeping. Triples must satisfy the `add_edge`
    /// postcondition: `u < v`, both in range. The chunked generators emit in
    /// exactly that form.
    pub(crate) fn from_normalized(
        num_vertices: usize,
        edges: Vec<(VertexId, VertexId, Weight)>,
    ) -> Self {
        let mut b = Self::new(num_vertices);
        debug_assert!(edges
            .iter()
            .all(|&(u, v, _)| u < v && (v as usize) < num_vertices));
        b.edges = edges;
        b
    }

    /// Deduplicates, symmetrizes and converts to CSR.
    ///
    /// Dispatches to the chunk-parallel path (see DESIGN.md "Deterministic
    /// parallel construction"): a global arc sort replaces the legacy
    /// counting sort + per-row fixup, and every stage is cut into
    /// data-size-keyed chunks executed under [`crate::par`]. The output is
    /// bit-identical to [`build_serial`](Self::build_serial) — the parity
    /// test in `tests/build_parity.rs` checks that on every suite topology
    /// — so on a one-thread pool the cheaper serial path runs instead.
    pub fn build(self) -> CsrGraph {
        // On a one-thread pool the chunked stages would run inline anyway,
        // and the serial path's counting sort beats a comparison sort there
        // — the outputs are bit-identical (parity-tested), so this is
        // purely a cost choice.
        // Both paths are parity-tested bit-identical, so the thread budget
        // picks an implementation, never a result.
        let t0 = ecl_metrics::active().then(|| {
            // ecl-lint: allow(wall-clock-in-sim) host-side build-wall metric, gated on an active session; never feeds simulated numbers
            std::time::Instant::now()
        });
        // ecl-lint: allow(thread-count-dependence) dispatch only (see above)
        let g = if crate::par::max_threads() <= 1 {
            self.build_serial()
        } else {
            self.build_chunked()
        };
        ecl_metrics::counter!(GRAPH_BUILDS);
        ecl_metrics::histogram!(GRAPH_BUILD_ARCS, g.num_arcs() as f64);
        if let Some(t0) = t0 {
            ecl_metrics::histogram!(GRAPH_BUILD_SECONDS, t0.elapsed().as_secs_f64());
        }
        g
    }

    /// The chunk-parallel CSR assembly behind [`build`](Self::build),
    /// callable directly so the parity tests exercise it regardless of the
    /// thread budget.
    pub fn build_chunked(mut self) -> CsrGraph {
        let n = self.num_vertices;

        // Sort normalized triples so duplicates are adjacent with the
        // lightest first, then keep the first of each (u, v) run. The
        // parallel sort of plain integer triples is deterministic: Ord-equal
        // triples are bit-equal.
        self.edges.par_sort_unstable();
        self.edges.dedup_by_key(|&mut (u, v, _)| (u, v));

        let m = self.edges.len();
        assert!(
            2 * m <= u32::MAX as usize,
            "arc count exceeds 32-bit CSR limit"
        );
        let edges = self.edges;

        // The deduped list, sorted by (u, v), is already the forward arc
        // half: row u's arcs to higher-numbered vertices, destinations
        // ascending, edge id = list index. The reverse half needs its own
        // sort by (v, u); carrying (weight, id) makes each record
        // self-contained. Chunked fill + one parallel sort.
        let mut rev: Vec<(VertexId, VertexId, Weight, u32)> = vec![(0, 0, 0, 0); m];
        {
            let cuts: Vec<usize> = par::chunk_ranges(m, 1 << 17)
                .iter()
                .skip(1)
                .map(|r| r.start)
                .collect();
            ecl_metrics::counter!(GRAPH_BUILD_CHUNKS, (cuts.len() + 1) as u64);
            let edges = &edges;
            par::par_split_mut(&mut rev, &cuts, |piece_idx, piece| {
                let base = if piece_idx == 0 {
                    0
                } else {
                    cuts[piece_idx - 1]
                };
                for (off, slot) in piece.iter_mut().enumerate() {
                    let (u, v, w) = edges[base + off];
                    *slot = (v, u, w, (base + off) as u32);
                }
            });
        }
        rev.par_sort_unstable();

        // Row offsets. `fwd[k]` counts edges with u < k and `rvs[k]` edges
        // with v < k, both read off the sorted orders by parallel partition
        // search; their sum is the exclusive prefix sum of the arc degrees,
        // i.e. the CSR row starts.
        let fwd = par::sorted_key_offsets(n, m, |i| edges[i].0);
        let rvs = par::sorted_key_offsets(n, m, |i| rev[i].0);
        let row_starts: Vec<u32> = par::run_chunks(n + 1, 1 << 16, |r| {
            r.map(|k| fwd[k] + rvs[k]).collect::<Vec<u32>>()
        })
        .into_iter()
        .flatten()
        .collect();

        // Merge the two sorted halves of each row directly into the final
        // arrays. Destinations within a row are unique after dedup, so the
        // two-pointer merge on destination alone reproduces the legacy
        // (dst, weight, id) row sort. Vertex chunks own disjoint arc ranges.
        let mut adjacency = vec![0 as VertexId; 2 * m];
        let mut arc_weights = vec![0 as Weight; 2 * m];
        let mut arc_edge_ids = vec![0u32; 2 * m];
        {
            let vertex_chunks = par::chunk_ranges(n, 1 << 15);
            ecl_metrics::counter!(GRAPH_BUILD_CHUNKS, vertex_chunks.len() as u64);
            struct MergeTask<'a> {
                vertices: std::ops::Range<usize>,
                adj: &'a mut [VertexId],
                wts: &'a mut [Weight],
                ids: &'a mut [u32],
            }
            let mut tasks: Vec<MergeTask<'_>> = Vec::with_capacity(vertex_chunks.len());
            let (mut adj_rest, mut wts_rest, mut ids_rest) = (
                adjacency.as_mut_slice(),
                arc_weights.as_mut_slice(),
                arc_edge_ids.as_mut_slice(),
            );
            let mut consumed = 0usize;
            // lint-metering: serial-ok (O(#chunks) slice partitioning, not O(m))
            for r in vertex_chunks {
                let hi = row_starts[r.end] as usize;
                let take = hi - consumed;
                let (a, ar) = adj_rest.split_at_mut(take);
                let (w, wr) = wts_rest.split_at_mut(take);
                let (i, ir) = ids_rest.split_at_mut(take);
                (adj_rest, wts_rest, ids_rest) = (ar, wr, ir);
                tasks.push(MergeTask {
                    vertices: r,
                    adj: a,
                    wts: w,
                    ids: i,
                });
                consumed = hi;
            }
            let (edges, rev, fwd, rvs, row_starts) = (&edges, &rev, &fwd, &rvs, &row_starts);
            par::par_tasks(tasks, |task| {
                let chunk_base = row_starts[task.vertices.start] as usize;
                for s in task.vertices.clone() {
                    let mut out = row_starts[s] as usize - chunk_base;
                    let (mut f, f_end) = (fwd[s] as usize, fwd[s + 1] as usize);
                    let (mut r, r_end) = (rvs[s] as usize, rvs[s + 1] as usize);
                    while f < f_end || r < r_end {
                        let take_fwd = r >= r_end || (f < f_end && edges[f].1 < rev[r].1);
                        let (dst, w, id) = if take_fwd {
                            let (_, v, w) = edges[f];
                            let id = f as u32;
                            f += 1;
                            (v, w, id)
                        } else {
                            let (_, u, w, id) = rev[r];
                            r += 1;
                            (u, w, id)
                        };
                        task.adj[out] = dst;
                        task.wts[out] = w;
                        task.ids[out] = id;
                        out += 1;
                    }
                }
            });
        }

        CsrGraph::from_parts_unchecked(row_starts, adjacency, arc_weights, arc_edge_ids)
    }

    /// The pre-parallel reference implementation: serial sort, counting sort
    /// of arcs by source, per-row fixup sort. Kept verbatim as the oracle
    /// for the `build`/`build_serial` parity test; not used on any hot path
    /// (`cargo xtask lint-metering` flags serial sorts or `for`-loop hot
    /// paths that creep back into `build`).
    pub fn build_serial(mut self) -> CsrGraph {
        let n = self.num_vertices;

        // Sort normalized triples so duplicates are adjacent with the
        // lightest first, then keep the first of each (u, v) run.
        self.edges.sort_unstable();
        self.edges.dedup_by_key(|&mut (u, v, _)| (u, v));

        let m = self.edges.len();
        assert!(
            2 * m <= u32::MAX as usize,
            "arc count exceeds 32-bit CSR limit"
        );

        // Counting sort of arcs by source vertex.
        let mut degree = vec![0u32; n + 1];
        for &(u, v, _) in &self.edges {
            degree[u as usize + 1] += 1;
            degree[v as usize + 1] += 1;
        }
        let mut row_starts = degree;
        for i in 1..row_starts.len() {
            row_starts[i] += row_starts[i - 1];
        }

        let mut cursor = row_starts.clone();
        let mut adjacency = vec![0 as VertexId; 2 * m];
        let mut arc_weights = vec![0 as Weight; 2 * m];
        let mut arc_edge_ids = vec![0u32; 2 * m];
        for (id, &(u, v, w)) in self.edges.iter().enumerate() {
            for (s, d) in [(u, v), (v, u)] {
                let slot = cursor[s as usize] as usize;
                cursor[s as usize] += 1;
                adjacency[slot] = d;
                arc_weights[slot] = w;
                arc_edge_ids[slot] = id as u32;
            }
        }

        // Because the input triples were sorted by (u, v), the arcs emitted
        // for each source u are already in ascending destination order for
        // the u < v half; the v > u half interleaves, so sort each row for a
        // canonical adjacency order (cheap: rows are short on our inputs).
        let g_rows = row_starts.clone();
        for v in 0..n {
            let lo = g_rows[v] as usize;
            let hi = g_rows[v + 1] as usize;
            let mut row: Vec<(VertexId, Weight, u32)> = (lo..hi)
                .map(|a| (adjacency[a], arc_weights[a], arc_edge_ids[a]))
                .collect();
            row.sort_unstable();
            for (off, (d, w, id)) in row.into_iter().enumerate() {
                adjacency[lo + off] = d;
                arc_weights[lo + off] = w;
                arc_edge_ids[lo + off] = id;
            }
        }

        CsrGraph::from_parts_unchecked(row_starts, adjacency, arc_weights, arc_edge_ids)
    }
}

/// Returns a copy of `g` with `extra` isolated vertices appended.
///
/// The paper's RMAT/Kronecker inputs are padded to a power-of-two vertex
/// count by their generator; the unreached vertices account for most of
/// their huge connected-component counts. This helper reproduces that
/// padding for the synthetic twins.
pub fn append_isolated(g: &CsrGraph, extra: usize) -> CsrGraph {
    let mut row_starts = g.row_starts().to_vec();
    let last = *row_starts.last().expect("row_starts never empty");
    row_starts.extend(std::iter::repeat_n(last, extra));
    CsrGraph::from_parts_unchecked(
        row_starts,
        g.adjacency().to_vec(),
        g.arc_weights().to_vec(),
        g.arc_edge_ids().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_lightest() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 9);
        b.add_edge(1, 0, 2);
        b.add_edge(0, 1, 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0).next().unwrap().weight, 2);
        g.validate().unwrap();
    }

    #[test]
    fn dedup_keeps_lightest_on_every_build_path() {
        // Pins the io_dimacs module-doc promise ("collapse parallels
        // keeping the lightest"): the tie handling lives in the shared
        // sort+dedup, but each build path runs its own copy of it, so pin
        // lightest-wins — not first-wins or last-wins — on all three, with
        // the lightest duplicate arriving first, last, and mid-run, in
        // both arc directions.
        let edges: &[(VertexId, VertexId, Weight)] = &[
            (0, 1, 4), // lightest first
            (1, 0, 9),
            (1, 2, 8),
            (2, 1, 3), // lightest last
            (0, 2, 7),
            (2, 0, 5), // lightest mid-run
            (0, 2, 6),
        ];
        let make = || {
            let mut b = GraphBuilder::new(3);
            b.extend_edges(edges.iter().copied());
            b
        };
        let (g, gs, gc) = (
            make().build(),
            make().build_serial(),
            make().build_chunked(),
        );
        assert_eq!(g, gs, "build must agree with build_serial");
        assert_eq!(g, gc, "build must agree with build_chunked");
        let weight_of = |u: VertexId, v: VertexId| {
            g.neighbors(u)
                .find(|e| e.dst == v)
                .expect("edge present")
                .weight
        };
        assert_eq!(weight_of(0, 1), 4);
        assert_eq!(weight_of(1, 2), 3);
        assert_eq!(weight_of(0, 2), 5);
        assert_eq!(g.num_edges(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 1, 4);
        b.add_edge(0, 2, 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn adjacency_rows_sorted() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(2, 4, 1);
        b.add_edge(2, 0, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(2, 1, 1);
        let g = b.build();
        let row: Vec<_> = g.neighbors(2).map(|e| e.dst).collect();
        assert_eq!(row, vec![0, 1, 3, 4]);
        g.validate().unwrap();
    }

    #[test]
    fn edge_ids_dense_and_shared() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 2);
        b.add_edge(2, 3, 3);
        let g = b.build();
        let mut ids: Vec<_> = g.edges().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_endpoint() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 1);
    }

    #[test]
    fn extend_edges_matches_add_edge() {
        let mut a = GraphBuilder::new(4);
        a.extend_edges([(0, 1, 5), (1, 2, 6)]);
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 5);
        b.add_edge(1, 2, 6);
        assert_eq!(a.build(), b.build());
    }

    #[test]
    fn append_isolated_adds_components() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let g = b.build();
        let padded = append_isolated(&g, 5);
        assert_eq!(padded.num_vertices(), 8);
        assert_eq!(padded.num_edges(), 2);
        assert_eq!(padded.degree(5), 0);
        padded.validate().unwrap();
        assert_eq!(crate::stats::connected_components(&padded), 6);
    }

    #[test]
    fn append_isolated_zero_is_identity() {
        let g = {
            let mut b = GraphBuilder::new(2);
            b.add_edge(0, 1, 3);
            b.build()
        };
        assert_eq!(append_isolated(&g, 0), g);
    }

    #[test]
    fn build_large_star_is_valid() {
        let n = 1000;
        let mut b = GraphBuilder::new(n);
        for v in 1..n as VertexId {
            b.add_edge(0, v, v);
        }
        let g = b.build();
        assert_eq!(g.degree(0), n - 1);
        assert_eq!(g.max_degree(), n - 1);
        g.validate().unwrap();
    }
}
