//! Edge-list ingestion and CSR construction.
//!
//! Implements the paper's input cleaning (§4): "we modified the graphs to
//! eliminate self-loops and multiple edges between the same two vertices. We
//! added any missing back edges to make the graphs undirected."

use crate::csr::CsrGraph;
use crate::{VertexId, Weight};

/// Accumulates undirected weighted edges and produces a clean [`CsrGraph`].
///
/// * self-loops are dropped,
/// * parallel edges are collapsed keeping the **lightest** weight (any MST of
///   the multigraph uses only lightest parallels, so this preserves MSTs),
/// * each surviving undirected edge gets a fresh id and two mirror arcs.
///
/// ```
/// use ecl_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1, 10);
/// b.add_edge(1, 0, 3); // parallel: lighter weight wins
/// b.add_edge(2, 2, 1); // self-loop: dropped
/// b.add_edge(2, 3, 7);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.neighbors(0).next().unwrap().weight, 3);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    /// Normalized as (min endpoint, max endpoint, weight).
    edges: Vec<(VertexId, VertexId, Weight)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    ///
    /// # Panics
    /// If `num_vertices` exceeds `u32::MAX` (the 32-bit CSR limit).
    pub fn new(num_vertices: usize) -> Self {
        assert!(
            num_vertices <= u32::MAX as usize,
            "binary 32-bit CSR format supports at most 2^32 - 1 vertices"
        );
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates a builder expecting roughly `edge_hint` edges.
    pub fn with_capacity(num_vertices: usize, edge_hint: usize) -> Self {
        let mut b = Self::new(num_vertices);
        b.edges.reserve(edge_hint);
        b
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Adds an undirected edge. Self-loops are silently dropped; duplicates
    /// are resolved at [`build`](Self::build) time.
    ///
    /// # Panics
    /// If either endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u},{v}) out of range for {} vertices",
            self.num_vertices
        );
        if u == v {
            return;
        }
        self.edges.push((u.min(v), u.max(v), w));
    }

    /// Adds every edge from an iterator of `(u, v, w)` triples.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId, Weight)>>(&mut self, it: I) {
        for (u, v, w) in it {
            self.add_edge(u, v, w);
        }
    }

    /// Number of raw (pre-dedup) edges added so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Deduplicates, symmetrizes and converts to CSR.
    pub fn build(mut self) -> CsrGraph {
        let n = self.num_vertices;

        // Sort normalized triples so duplicates are adjacent with the
        // lightest first, then keep the first of each (u, v) run.
        self.edges.sort_unstable();
        self.edges.dedup_by_key(|&mut (u, v, _)| (u, v));

        let m = self.edges.len();
        assert!(
            2 * m <= u32::MAX as usize,
            "arc count exceeds 32-bit CSR limit"
        );

        // Counting sort of arcs by source vertex.
        let mut degree = vec![0u32; n + 1];
        for &(u, v, _) in &self.edges {
            degree[u as usize + 1] += 1;
            degree[v as usize + 1] += 1;
        }
        let mut row_starts = degree;
        for i in 1..row_starts.len() {
            row_starts[i] += row_starts[i - 1];
        }

        let mut cursor = row_starts.clone();
        let mut adjacency = vec![0 as VertexId; 2 * m];
        let mut arc_weights = vec![0 as Weight; 2 * m];
        let mut arc_edge_ids = vec![0u32; 2 * m];
        for (id, &(u, v, w)) in self.edges.iter().enumerate() {
            for (s, d) in [(u, v), (v, u)] {
                let slot = cursor[s as usize] as usize;
                cursor[s as usize] += 1;
                adjacency[slot] = d;
                arc_weights[slot] = w;
                arc_edge_ids[slot] = id as u32;
            }
        }

        // Because the input triples were sorted by (u, v), the arcs emitted
        // for each source u are already in ascending destination order for
        // the u < v half; the v > u half interleaves, so sort each row for a
        // canonical adjacency order (cheap: rows are short on our inputs).
        let g_rows = row_starts.clone();
        for v in 0..n {
            let lo = g_rows[v] as usize;
            let hi = g_rows[v + 1] as usize;
            let mut row: Vec<(VertexId, Weight, u32)> = (lo..hi)
                .map(|a| (adjacency[a], arc_weights[a], arc_edge_ids[a]))
                .collect();
            row.sort_unstable();
            for (off, (d, w, id)) in row.into_iter().enumerate() {
                adjacency[lo + off] = d;
                arc_weights[lo + off] = w;
                arc_edge_ids[lo + off] = id;
            }
        }

        CsrGraph::from_parts_unchecked(row_starts, adjacency, arc_weights, arc_edge_ids)
    }
}

/// Returns a copy of `g` with `extra` isolated vertices appended.
///
/// The paper's RMAT/Kronecker inputs are padded to a power-of-two vertex
/// count by their generator; the unreached vertices account for most of
/// their huge connected-component counts. This helper reproduces that
/// padding for the synthetic twins.
pub fn append_isolated(g: &CsrGraph, extra: usize) -> CsrGraph {
    let mut row_starts = g.row_starts().to_vec();
    let last = *row_starts.last().expect("row_starts never empty");
    row_starts.extend(std::iter::repeat_n(last, extra));
    CsrGraph::from_parts_unchecked(
        row_starts,
        g.adjacency().to_vec(),
        g.arc_weights().to_vec(),
        g.arc_edge_ids().to_vec(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_lightest() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 9);
        b.add_edge(1, 0, 2);
        b.add_edge(0, 1, 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0).next().unwrap().weight, 2);
        g.validate().unwrap();
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 1, 4);
        b.add_edge(0, 2, 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn adjacency_rows_sorted() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(2, 4, 1);
        b.add_edge(2, 0, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(2, 1, 1);
        let g = b.build();
        let row: Vec<_> = g.neighbors(2).map(|e| e.dst).collect();
        assert_eq!(row, vec![0, 1, 3, 4]);
        g.validate().unwrap();
    }

    #[test]
    fn edge_ids_dense_and_shared() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 2);
        b.add_edge(2, 3, 3);
        let g = b.build();
        let mut ids: Vec<_> = g.edges().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_endpoint() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2, 1);
    }

    #[test]
    fn extend_edges_matches_add_edge() {
        let mut a = GraphBuilder::new(4);
        a.extend_edges([(0, 1, 5), (1, 2, 6)]);
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 5);
        b.add_edge(1, 2, 6);
        assert_eq!(a.build(), b.build());
    }

    #[test]
    fn append_isolated_adds_components() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        let g = b.build();
        let padded = append_isolated(&g, 5);
        assert_eq!(padded.num_vertices(), 8);
        assert_eq!(padded.num_edges(), 2);
        assert_eq!(padded.degree(5), 0);
        padded.validate().unwrap();
        assert_eq!(crate::stats::connected_components(&padded), 6);
    }

    #[test]
    fn append_isolated_zero_is_identity() {
        let g = {
            let mut b = GraphBuilder::new(2);
            b.add_edge(0, 1, 3);
            b.build()
        };
        assert_eq!(append_isolated(&g, 0), g);
    }

    #[test]
    fn build_large_star_is_valid() {
        let n = 1000;
        let mut b = GraphBuilder::new(n);
        for v in 1..n as VertexId {
            b.add_edge(0, v, v);
        }
        let g = b.build();
        assert_eq!(g.degree(0), n - 1);
        assert_eq!(g.max_degree(), n - 1);
        g.validate().unwrap();
    }
}
